//! Backend scaling sweep: forward readout, probability readout, and a
//! batched tape adjoint pass over 4–14 qubits on every simulator backend
//! (dense, fused, soa). EXPERIMENTS.md records the measured sweep; the
//! SoA backend's packed split-plane kernels are expected to pull ahead of
//! the fused AoS kernels as the register outgrows cache lines (≥ 10
//! qubits).

use criterion::{criterion_group, criterion_main, Criterion};
use sqvae_quantum::backend::{Backend, DenseBackend, FusedDenseBackend, SoaDenseBackend};
use sqvae_quantum::embed::{angle_embedding_gates, RotationAxis};
use sqvae_quantum::grad::adjoint;
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::Circuit;

const QUBITS: [usize; 6] = [4, 6, 8, 10, 12, 14];
const LAYERS: usize = 3;
const BATCH: usize = 4;

/// The paper's encoder shape at width `n`: angle embedding plus
/// strongly-entangling layers, so the sweep exercises late-bound inputs,
/// fusible single-qubit runs, and the CNOT ring at every size.
fn circuit(n: usize) -> (Circuit, Vec<f64>, Vec<Vec<f64>>) {
    let mut c = Circuit::new(n).expect("valid register");
    c.extend(angle_embedding_gates(n, RotationAxis::Y, 0))
        .unwrap();
    c.extend(strongly_entangling_layers(n, LAYERS, 0, EntangleRange::Ring).unwrap())
        .unwrap();
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.1 + 0.01 * i as f64).collect();
    let rows: Vec<Vec<f64>> = (0..BATCH)
        .map(|r| {
            (0..n)
                .map(|i| 0.2 * (r + 1) as f64 - 0.07 * i as f64)
                .collect()
        })
        .collect();
    (c, params, rows)
}

fn bench_forward_on<B: Backend>(group: &mut criterion::BenchmarkGroup<'_>, n: usize) {
    let (c, params, rows) = circuit(n);
    let tape = c.compile(&params).unwrap();
    group.bench_function(format!("{}/{n}q", B::NAME), |b| {
        b.iter(|| tape.expectations_z_on::<B>(&rows[0], None).unwrap())
    });
}

fn bench_probabilities_on<B: Backend>(group: &mut criterion::BenchmarkGroup<'_>, n: usize) {
    let (c, params, rows) = circuit(n);
    let tape = c.compile(&params).unwrap();
    let mut out = Vec::new();
    group.bench_function(format!("{}/{n}q", B::NAME), |b| {
        b.iter(|| {
            tape.probabilities_into_on::<B>(&rows[0], None, &mut out)
                .unwrap();
            out.last().copied()
        })
    });
}

fn bench_adjoint_on<B: Backend>(group: &mut criterion::BenchmarkGroup<'_>, n: usize) {
    let (c, params, rows) = circuit(n);
    let tape = c.compile(&params).unwrap();
    let upstream = vec![1.0f64; n];
    group.bench_function(format!("{}/{n}q", B::NAME), |b| {
        b.iter(|| {
            rows.iter()
                .map(|row| {
                    adjoint::backward_expectations_z_tape::<B>(&tape, row, None, &upstream)
                        .unwrap()
                        .params[0]
                })
                .sum::<f64>()
        })
    });
}

fn bench_scaling_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_forward");
    group.sample_size(10);
    for n in QUBITS {
        bench_forward_on::<DenseBackend>(&mut group, n);
        bench_forward_on::<FusedDenseBackend>(&mut group, n);
        bench_forward_on::<SoaDenseBackend>(&mut group, n);
    }
    group.finish();
}

fn bench_scaling_probabilities(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_probabilities");
    group.sample_size(10);
    for n in QUBITS {
        bench_probabilities_on::<DenseBackend>(&mut group, n);
        bench_probabilities_on::<FusedDenseBackend>(&mut group, n);
        bench_probabilities_on::<SoaDenseBackend>(&mut group, n);
    }
    group.finish();
}

fn bench_scaling_adjoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_adjoint_batch4");
    group.sample_size(10);
    for n in QUBITS {
        bench_adjoint_on::<DenseBackend>(&mut group, n);
        bench_adjoint_on::<FusedDenseBackend>(&mut group, n);
        bench_adjoint_on::<SoaDenseBackend>(&mut group, n);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling_forward,
    bench_scaling_probabilities,
    bench_scaling_adjoint
);
criterion_main!(benches);
