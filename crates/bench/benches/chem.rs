//! Cheminformatics-substrate benchmarks: matrix codec, sanitization, and
//! the Table II property scorers.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_chem::properties::DrugProperties;
use sqvae_chem::{sanitize, smiles, MoleculeMatrix};
use sqvae_datasets::molgen::{grow_molecule, GrowthConfig};

fn bench_chem(c: &mut Criterion) {
    let cfg = GrowthConfig::pdbbind_like();
    let mut rng = StdRng::seed_from_u64(7);
    let mols: Vec<_> = (0..32).map(|_| grow_molecule(&cfg, &mut rng)).collect();

    c.bench_function("matrix_encode_decode_32", |b| {
        b.iter(|| {
            for m in &mols {
                let mm = MoleculeMatrix::encode(m, 32).unwrap();
                let _ = mm.decode();
            }
        })
    });

    c.bench_function("drug_properties_32", |b| {
        b.iter(|| {
            for m in &mols {
                let _ = DrugProperties::compute(m);
            }
        })
    });

    c.bench_function("sanitize_noisy_matrix", |b| {
        let noisy: Vec<MoleculeMatrix> = mols
            .iter()
            .map(|m| {
                let mut mm = MoleculeMatrix::encode(m, 32).unwrap();
                for i in 0..32 {
                    let v = mm.get(i, i);
                    mm.set(i, i, v + 0.4);
                }
                mm
            })
            .collect();
        b.iter(|| {
            for mm in &noisy {
                let decoded = mm.decode();
                if !decoded.is_empty() {
                    let _ = sanitize::sanitize(&decoded);
                }
            }
        })
    });

    c.bench_function("smiles_round_trip", |b| {
        b.iter(|| {
            for m in &mols {
                let s = smiles::write(m).unwrap();
                let _ = smiles::parse(&s).unwrap();
            }
        })
    });
}

criterion_group!(benches, bench_chem);
criterion_main!(benches);
