//! Adjoint vs parameter-shift gradient cost — the ablation justifying the
//! adjoint engine as the training path (parameter-shift re-executes the
//! circuit twice per parameter; adjoint is one backward sweep) — plus
//! sequential vs row-sharded batched adjoint passes (the quantum layers'
//! backward hot path after PR 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqvae_nn::parallel::{self, Threads};
use sqvae_quantum::grad::{adjoint, paramshift};
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::Circuit;

fn circuit(n_qubits: usize, layers: usize) -> (Circuit, Vec<f64>, Vec<f64>) {
    let mut c = Circuit::new(n_qubits).expect("valid register");
    c.extend(strongly_entangling_layers(n_qubits, layers, 0, EntangleRange::Ring).unwrap())
        .unwrap();
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.1 + 0.01 * i as f64).collect();
    let upstream = vec![1.0; n_qubits];
    (c, params, upstream)
}

fn bench_adjoint_vs_paramshift(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_engines");
    for layers in [1usize, 3, 5] {
        let (circ, params, upstream) = circuit(6, layers);
        group.bench_with_input(BenchmarkId::new("adjoint", layers), &layers, |b, _| {
            b.iter(|| {
                adjoint::backward_expectations_z(&circ, &params, &[], None, &upstream).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("paramshift", layers), &layers, |b, _| {
            b.iter(|| paramshift::vjp_expectations_z(&circ, &params, &[], None, &upstream).unwrap())
        });
    }
    group.finish();
}

/// A batch of 32 independent adjoint passes, sequential vs sharded across
/// threads — the per-batch backward cost of a quantum layer.
fn bench_batched_adjoint(c: &mut Criterion) {
    let (circ, params, upstream) = circuit(6, 3);
    let rows = 32usize;
    let mut group = c.benchmark_group("batched_adjoint");
    for (name, threads) in [("seq", Threads::Off), ("auto", Threads::Auto)] {
        group.bench_function(format!("{name}_x{rows}"), |b| {
            b.iter(|| {
                parallel::map_rows(rows, threads, |_r| {
                    adjoint::backward_expectations_z(&circ, &params, &[], None, &upstream).unwrap()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adjoint_vs_paramshift, bench_batched_adjoint);
criterion_main!(benches);
