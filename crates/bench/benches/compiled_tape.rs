//! Batch-compiled tape executor vs the PR 4 eager fused path (PR 6
//! tentpole). Within a mini-batch all rows share one parameter vector, so
//! the tape compiles the circuit once — fusing commuting single-qubit
//! gates, flattening CNOT runs, and pre-inverting the adjoint sweep — and
//! every row replays the flat program. The groups below measure the batched
//! adjoint (the training hot path; the ≥1.3× acceptance target), the
//! batched forward, and the one-off compile cost that buys both.

use criterion::{criterion_group, criterion_main, Criterion};
use sqvae_quantum::grad::adjoint;
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::{Backend, Circuit, FusedDenseBackend};

fn circuit(n_qubits: usize, layers: usize) -> (Circuit, Vec<f64>, Vec<f64>) {
    let mut c = Circuit::new(n_qubits).expect("valid register");
    c.extend(strongly_entangling_layers(n_qubits, layers, 0, EntangleRange::Ring).unwrap())
        .unwrap();
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.1 + 0.01 * i as f64).collect();
    let upstream = vec![1.0; n_qubits];
    (c, params, upstream)
}

/// Eager gate-by-gate forward on the fused backend — the PR 4 baseline the
/// tape replaces (`Circuit::run_on` itself now compiles, so the baseline
/// drives `apply_ops` directly).
fn eager_forward(circ: &Circuit, params: &[f64]) -> Vec<f64> {
    let mut state = FusedDenseBackend::zero_state(circ.n_qubits()).unwrap();
    state.apply_ops(circ.ops(), params, &[]).unwrap();
    (0..circ.n_qubits())
        .map(|w| state.expectation_z(w).unwrap())
        .collect()
}

/// Batch of 32 adjoint passes on 6 qubits × 3 layers — the quantum layers'
/// backward hot path. `eager_x32` re-walks the gate list per row (PR 4);
/// `tape_x32` compiles once then replays, compile cost included.
fn bench_batched_adjoint(c: &mut Criterion) {
    let (circ, params, upstream) = circuit(6, 3);
    let rows = 32usize;
    let mut group = c.benchmark_group("compiled_tape");
    group.bench_function(format!("adjoint_eager_x{rows}"), |b| {
        b.iter(|| {
            (0..rows)
                .map(|_| {
                    adjoint::backward_expectations_z_on::<FusedDenseBackend>(
                        &circ,
                        &params,
                        &[],
                        None,
                        &upstream,
                    )
                    .unwrap()
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function(format!("adjoint_tape_x{rows}"), |b| {
        b.iter(|| {
            let tape = circ.compile(&params).unwrap();
            (0..rows)
                .map(|_| {
                    adjoint::backward_expectations_z_tape::<FusedDenseBackend>(
                        &tape,
                        &[],
                        None,
                        &upstream,
                    )
                    .unwrap()
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// The same split on the batched forward pass.
fn bench_batched_forward(c: &mut Criterion) {
    let (circ, params, _) = circuit(6, 3);
    let rows = 32usize;
    let mut group = c.benchmark_group("compiled_tape");
    group.bench_function(format!("forward_eager_x{rows}"), |b| {
        b.iter(|| {
            (0..rows)
                .map(|_| eager_forward(&circ, &params))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function(format!("forward_tape_x{rows}"), |b| {
        b.iter(|| {
            let tape = circ.compile(&params).unwrap();
            (0..rows)
                .map(|_| {
                    tape.expectations_z_on::<FusedDenseBackend>(&[], None)
                        .unwrap()
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// The one-off lowering cost a batch pays before its first row.
fn bench_compile(c: &mut Criterion) {
    let (circ, params, _) = circuit(6, 3);
    let mut group = c.benchmark_group("compiled_tape");
    group.bench_function("compile_6q3l", |b| {
        b.iter(|| circ.compile(&params).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batched_adjoint,
    bench_batched_forward,
    bench_compile
);
criterion_main!(benches);
