//! Serving throughput across worker-pool sizes: one mixed request burst
//! (reconstruct + seeded sample) pushed through an `InferenceServer` with
//! 1, 2, and 4 workers.
//!
//! `SQVAE_THREADS` is forced off so the pool is the only parallelism lever
//! being measured — otherwise a restored model's own batch-row sharding
//! would compete with the pool for the same cores and blur the scaling
//! signal. On a multi-core box the 4-worker pool should clear ≥ 2.5× the
//! 1-worker requests/sec; on a single-vCPU box the pool sizes tie (the
//! numbers then mostly demonstrate that dispatch overhead is small).
//! Results are bit-identical at every size, so this knob is pure
//! wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::models;
use sqvae::nn::{Matrix, Threads};
use sqvae::serve::{publish_model, InferenceServer, Op, Request, RetryPolicy, ServerConfig};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const BURST: usize = 48;

fn checkpoint_path() -> String {
    let dir = std::env::temp_dir().join("sqvae-serving-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench-model.ckpt").to_string_lossy().into_owned();
    let mut model = models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(7));
    publish_model(&mut model, 7, &path).unwrap();
    path
}

/// One measured unit: submit a paused mixed burst (so every queue holds its
/// full shard), resume, and wait for every result.
fn serve_burst(server: &InferenceServer, path: &str) -> usize {
    server.pause();
    let ids: Vec<u64> = (0..BURST as u64)
        .map(|i| {
            let op = if i % 2 == 0 {
                Op::Sample {
                    n: 1 + (i as usize % 3),
                    seed: i,
                }
            } else {
                Op::Reconstruct(Matrix::from_fn(2, 16, |r, c| {
                    ((i as usize * 32 + r * 16 + c) as f64).sin()
                }))
            };
            server.submit(Request::new(path.to_string(), op)).unwrap()
        })
        .collect();
    server.resume();
    ids.into_iter()
        .map(|id| server.wait(id).unwrap().rows())
        .sum()
}

fn bench_serving_throughput(c: &mut Criterion) {
    // Pin the intra-model row sharding off: the pool is the only
    // parallelism under test. (Restored models read SQVAE_THREADS when
    // they rebuild their exec policy.)
    std::env::set_var("SQVAE_THREADS", "off");
    let path = checkpoint_path();
    let mut group = c.benchmark_group("serving_throughput");
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        let server = InferenceServer::start(ServerConfig {
            workers: Threads::Fixed(workers),
            retry: RetryPolicy::none(),
            ..ServerConfig::default()
        });
        // Warm every worker's registry outside the measured region.
        serve_burst(&server, &path);
        group.bench_function(format!("mixed/{workers}w"), |b| {
            b.iter(|| serve_burst(&server, &path))
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serving_throughput);
criterion_main!(benches);
