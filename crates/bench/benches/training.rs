//! Train-step throughput per model family (one forward+backward+step over a
//! small batch) — the cost model behind the experiment harness's quick/full
//! scales — plus sequential-vs-parallel batching at batch size 32 (the
//! PR 2 row-sharding path; `Threads::Auto` should win wall-clock on any
//! multi-core runner while staying bit-identical).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_core::{models, Autoencoder, Threads, TrainConfig, Trainer};
use sqvae_datasets::Dataset;

fn toy_dataset(n: usize, width: usize) -> Dataset {
    Dataset::from_samples(
        (0..n)
            .map(|i| (0..width).map(|j| ((i + j) % 5) as f64).collect())
            .collect(),
    )
    .expect("non-empty")
}

fn one_epoch(model: &mut Autoencoder, data: &Dataset, batch_size: usize, threads: Threads) {
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size,
        threads,
        ..TrainConfig::default()
    });
    trainer.train(model, data, None).expect("training succeeds");
}

fn bench_training_steps(c: &mut Criterion) {
    let small = toy_dataset(16, 64);
    let large = toy_dataset(8, 1024);

    c.bench_function("epoch_classical_ae_64d", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = models::classical_ae(64, 6, &mut rng);
        b.iter(|| one_epoch(&mut model, &small, 8, Threads::Off))
    });

    c.bench_function("epoch_h_bq_ae_64d", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = models::h_bq_ae(64, 3, &mut rng);
        b.iter(|| one_epoch(&mut model, &small, 8, Threads::Off))
    });

    c.bench_function("epoch_sq_ae_1024d_p8", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = models::sq_ae(1024, 8, 2, &mut rng);
        b.iter(|| one_epoch(&mut model, &large, 8, Threads::Off))
    });

    c.bench_function("epoch_sq_vae_1024d_p16", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = models::sq_vae(1024, 16, 2, &mut rng);
        b.iter(|| one_epoch(&mut model, &large, 8, Threads::Off))
    });
}

/// Sequential vs row-sharded epochs at batch size 32: the direct measurement
/// behind the "parallel batching" ROADMAP item.
fn bench_parallel_batching(c: &mut Criterion) {
    let data32 = toy_dataset(32, 64);
    let large32 = toy_dataset(32, 1024);
    let mut group = c.benchmark_group("parallel_batching");

    for (name, threads) in [("seq", Threads::Off), ("auto", Threads::Auto)] {
        group.bench_function(format!("h_bq_ae_64d_b32_{name}"), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            let mut model = models::h_bq_ae(64, 3, &mut rng);
            b.iter(|| one_epoch(&mut model, &data32, 32, threads))
        });
        group.bench_function(format!("sq_ae_1024d_p8_b32_{name}"), |b| {
            let mut rng = StdRng::seed_from_u64(0);
            let mut model = models::sq_ae(1024, 8, 2, &mut rng);
            b.iter(|| one_epoch(&mut model, &large32, 32, threads))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training_steps, bench_parallel_batching
}
criterion_main!(benches);
