//! Micro-benchmarks of the statevector simulator: circuit execution cost vs
//! qubit count and vs layer depth (the budget behind every experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqvae_quantum::embed::amplitude_embedding;
use sqvae_quantum::grad::adjoint;
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::{Backend, Circuit, FusedDenseBackend, StateVector};

fn circuit(n_qubits: usize, layers: usize) -> (Circuit, Vec<f64>) {
    let mut c = Circuit::new(n_qubits).expect("valid register");
    c.extend(strongly_entangling_layers(n_qubits, layers, 0, EntangleRange::Ring).unwrap())
        .unwrap();
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.1 + 0.01 * i as f64).collect();
    (c, params)
}

fn bench_execution_vs_qubits(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_execution_vs_qubits");
    for n in [4usize, 6, 8, 10] {
        let (circ, params) = circuit(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| circ.run_expectations_z(&params, &[], None).unwrap())
        });
    }
    group.finish();
}

fn bench_execution_vs_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_execution_vs_depth");
    for layers in [1usize, 3, 5, 9] {
        let (circ, params) = circuit(7, layers); // the SQ-AE p=8 patch size
        group.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, _| {
            b.iter(|| circ.run_expectations_z(&params, &[], None).unwrap())
        });
    }
    group.finish();
}

fn bench_amplitude_embedding(c: &mut Criterion) {
    let features: Vec<f64> = (0..1024).map(|i| (i % 7) as f64 + 0.5).collect();
    c.bench_function("amplitude_embedding_1024", |b| {
        b.iter(|| amplitude_embedding(&features, 10).unwrap())
    });
}

fn bench_probabilities(c: &mut Criterion) {
    let (circ, params) = circuit(10, 3);
    c.bench_function("probabilities_10q", |b| {
        b.iter(|| circ.run_probabilities(&params, &[], None).unwrap())
    });
}

/// Dense vs fused backend on the paper's baseline template (6 qubits,
/// 3 strongly-entangling layers): forward readout and one adjoint pass.
/// EXPERIMENTS.md records the measured numbers.
fn bench_simulator_backends(c: &mut Criterion) {
    let (circ, params) = circuit(6, 3);
    let upstream = vec![1.0f64; 6];
    let mut group = c.benchmark_group("simulator_backends");
    group.bench_function("forward_dense_6q3l", |b| {
        b.iter(|| {
            let s: StateVector = circ.run_on(&params, &[], None).unwrap();
            circ.expectations_z_all(&s).unwrap()
        })
    });
    group.bench_function("forward_fused_6q3l", |b| {
        b.iter(|| {
            let s: FusedDenseBackend = circ.run_on(&params, &[], None).unwrap();
            circ.expectations_z_all(&s).unwrap()
        })
    });
    group.bench_function("adjoint_dense_6q3l", |b| {
        b.iter(|| {
            adjoint::backward_expectations_z_on::<StateVector>(&circ, &params, &[], None, &upstream)
                .unwrap()
        })
    });
    group.bench_function("adjoint_fused_6q3l", |b| {
        b.iter(|| {
            adjoint::backward_expectations_z_on::<FusedDenseBackend>(
                &circ,
                &params,
                &[],
                None,
                &upstream,
            )
            .unwrap()
        })
    });
    // The 10-qubit probability readout of the baseline decoder, where the
    // larger register makes fused passes count the most.
    let (circ10, params10) = circuit(10, 3);
    group.bench_function("probabilities_dense_10q3l", |b| {
        b.iter(|| {
            let s: StateVector = circ10.run_on(&params10, &[], None).unwrap();
            Backend::probabilities(&s)
        })
    });
    group.bench_function("probabilities_fused_10q3l", |b| {
        b.iter(|| {
            let s: FusedDenseBackend = circ10.run_on(&params10, &[], None).unwrap();
            s.probabilities()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_execution_vs_qubits,
    bench_execution_vs_depth,
    bench_amplitude_embedding,
    bench_probabilities,
    bench_simulator_backends
);
criterion_main!(benches);
