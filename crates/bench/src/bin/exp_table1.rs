//! Table I — comparison of trainable parameter counts.
//!
//! Paper values: VAE(AE) 5694(5610) classical; F-BQ 108 quantum + 84(0)
//! classical; H-BQ 108 quantum + 4286(4202) classical. Quantum counts and
//! the hybrid classical counts reproduce exactly; the pure-classical MLP
//! totals differ slightly because the paper does not specify its exact
//! layer shapes (see EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{print_table_with_csv, section, ExpArgs};
use sqvae_core::models;

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let mut rng = StdRng::seed_from_u64(args.seed);

    section("Table I: trainable parameter counts (64-dim input, 6 qubits, L=3)");
    let mut rows = Vec::new();
    let mut push = |mut m: sqvae_core::Autoencoder| {
        let pc = m.parameter_count();
        rows.push(vec![
            m.name.clone(),
            pc.quantum.to_string(),
            pc.classical.to_string(),
            pc.total().to_string(),
        ]);
    };
    push(models::classical_vae(64, 6, &mut rng));
    push(models::classical_ae(64, 6, &mut rng));
    push(models::f_bq_vae(64, models::BASELINE_LAYERS, &mut rng));
    push(models::f_bq_ae(64, models::BASELINE_LAYERS, &mut rng));
    push(models::h_bq_vae(64, models::BASELINE_LAYERS, &mut rng));
    push(models::h_bq_ae(64, models::BASELINE_LAYERS, &mut rng));
    print_table_with_csv(
        "table1_parameter_counts",
        &["model", "quantum", "classical", "total"],
        &rows,
    );

    println!();
    println!("  paper: VAE 0/5694, AE 0/5610, F-BQ-VAE 108/84, F-BQ-AE 108/0,");
    println!("         H-BQ-VAE 108/4286, H-BQ-AE 108/4202");
}
