//! Bench regression gate: compares a criterion-shim benchmark transcript
//! against the committed `BENCH_BASELINE.json` and fails (exit code 1) on
//! regressions beyond a generous tolerance.
//!
//! ```text
//! cargo bench -p sqvae-bench --bench scaling | tee bench.txt
//! cargo bench -p sqvae-bench --bench serving_throughput | tee serve.txt
//! cargo run -p sqvae-bench --bin bench_check -- bench.txt serve.txt
//! cargo run -p sqvae-bench --bin bench_check -- --write bench.txt   # refresh baseline
//! ```
//!
//! Several transcript files may be passed at once (they are concatenated),
//! and the tolerance can come from `--tolerance <x>` or the
//! `SQVAE_BENCH_TOL` environment variable (flag wins).
//!
//! The shim prints one line per benchmark:
//!
//! ```text
//! scaling_forward/soa/12q    mean    247.19 µs best    231.17 µs (10 samples)
//! ```
//!
//! The gate keys on the **best** sample — the least noisy statistic a short
//! run produces — and the default tolerance is 3× (CI machines are shared
//! and noisy; the gate exists to catch order-of-magnitude pessimizations
//! like an accidental per-row allocation, not 10% jitter). Benchmarks
//! missing from the baseline are reported and skipped, so adding a bench
//! does not break the gate; refresh the baseline to start tracking it.
//! The baseline is a flat `{"id": best_nanoseconds}` JSON object, parsed
//! and written by hand (the workspace builds offline; no serde).

use std::collections::BTreeMap;
use std::process::ExitCode;

const BASELINE_FILE: &str = "BENCH_BASELINE.json";
const DEFAULT_TOLERANCE: f64 = 3.0;

/// Parses one shim transcript line into `(id, best nanoseconds)`.
/// Returns `None` for non-benchmark lines (compilation noise, headers).
fn parse_line(line: &str) -> Option<(String, f64)> {
    let mut tail = line;
    let id = tail.split_whitespace().next()?.to_string();
    let best_at = tail.find(" best ")?;
    tail = &tail[best_at + " best ".len()..];
    let mut words = tail.split_whitespace();
    let value: f64 = words.next()?.parse().ok()?;
    let nanos = match words.next()? {
        "ns" => value,
        "µs" | "us" => value * 1e3,
        "ms" => value * 1e6,
        "s" => value * 1e9,
        _ => return None,
    };
    // Only lines that also carry a mean are real measurements.
    line.contains(" mean ").then_some((id, nanos))
}

fn parse_transcript(text: &str) -> BTreeMap<String, f64> {
    text.lines().filter_map(parse_line).collect()
}

/// Parses the flat `{"id": nanos, ...}` baseline. Accepts exactly the shape
/// [`write_baseline`] produces; anything else is a hard error so a corrupted
/// baseline cannot silently pass the gate.
fn parse_baseline(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or("baseline is not a JSON object")?;
    let mut out = BTreeMap::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("bad baseline entry: {entry}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("bad baseline key: {key}"))?;
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("bad baseline value for {key}: {value}"))?;
        out.insert(key.to_string(), value);
    }
    Ok(out)
}

fn write_baseline(measured: &BTreeMap<String, f64>) -> String {
    let entries: Vec<String> = measured
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v:.1}"))
        .collect();
    format!("{{\n{}\n}}\n", entries.join(",\n"))
}

fn human(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.0} ns")
    } else if nanos < 1e6 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.2} s", nanos / 1e9)
    }
}

/// Compares measurements against the baseline; returns the regression report
/// (empty = gate passes).
fn check(
    baseline: &BTreeMap<String, f64>,
    measured: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (id, &base) in baseline {
        match measured.get(id) {
            Some(&now) if now > base * tolerance => failures.push(format!(
                "REGRESSION {id}: {} -> {} ({:.2}x, tolerance {tolerance}x)",
                human(base),
                human(now),
                now / base
            )),
            Some(_) => {}
            None => println!("note: {id} in baseline but not measured (skipped)"),
        }
    }
    for id in measured.keys() {
        if !baseline.contains_key(id) {
            println!("note: {id} not in baseline (new benchmark; refresh with --write)");
        }
    }
    failures
}

/// Tolerance from the environment (`SQVAE_BENCH_TOL`), when set and
/// parseable to a sane (≥ 1×) factor.
fn tolerance_from_env() -> Option<f64> {
    let raw = std::env::var("SQVAE_BENCH_TOL").ok()?;
    match raw.trim().parse::<f64>() {
        Ok(t) if t >= 1.0 => Some(t),
        _ => {
            eprintln!("warning: ignoring SQVAE_BENCH_TOL={raw:?} (want a factor >= 1)");
            None
        }
    }
}

fn main() -> ExitCode {
    let mut write = false;
    let mut tolerance = tolerance_from_env().unwrap_or(DEFAULT_TOLERANCE);
    let mut inputs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--write" => write = true,
            "--tolerance" => {
                if let Some(t) = args.next().and_then(|t| t.parse().ok()) {
                    tolerance = t;
                }
            }
            path => inputs.push(path.to_string()),
        }
    }

    let mut text = String::new();
    if inputs.is_empty() {
        use std::io::Read;
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("error: cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        for path in &inputs {
            match std::fs::read_to_string(path) {
                Ok(t) => {
                    text.push_str(&t);
                    text.push('\n');
                }
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let measured = parse_transcript(&text);
    if measured.is_empty() {
        eprintln!("error: no benchmark lines found in input");
        return ExitCode::FAILURE;
    }

    if write {
        if let Err(e) = std::fs::write(BASELINE_FILE, write_baseline(&measured)) {
            eprintln!("error: cannot write {BASELINE_FILE}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} entries to {BASELINE_FILE}", measured.len());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(BASELINE_FILE) {
        Ok(t) => match parse_baseline(&t) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {BASELINE_FILE}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: cannot read {BASELINE_FILE}: {e} (run with --write first)");
            return ExitCode::FAILURE;
        }
    };

    let failures = check(&baseline, &measured, tolerance);
    if failures.is_empty() {
        println!(
            "bench gate: {} benchmarks within {tolerance}x of baseline",
            measured.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("{f}");
        }
        eprintln!("bench gate: {} regression(s)", failures.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str =
        "scaling_forward/soa/12q                      mean    247.19 µs best    231.17 µs (10 samples)";

    #[test]
    fn parses_shim_lines_in_every_unit() {
        let (id, ns) = parse_line(LINE).unwrap();
        assert_eq!(id, "scaling_forward/soa/12q");
        assert!((ns - 231_170.0).abs() < 1.0);
        let ns_line = "x mean 900 ns best 850 ns (5 samples)";
        assert_eq!(parse_line(ns_line).unwrap().1, 850.0);
        let s_line = "y mean 2.10 s best 2.00 s (5 samples)";
        assert_eq!(parse_line(s_line).unwrap().1, 2e9);
        assert!(parse_line("   Compiling sqvae-bench v0.1.0").is_none());
        assert!(parse_line("x (no measurement: closure never called iter)").is_none());
    }

    #[test]
    fn baseline_round_trips() {
        let measured: BTreeMap<String, f64> =
            [("a/4q".to_string(), 123.4), ("b/6q".to_string(), 5.6e6)]
                .into_iter()
                .collect();
        let parsed = parse_baseline(&write_baseline(&measured)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!((parsed["a/4q"] - 123.4).abs() < 0.1);
        assert!((parsed["b/6q"] - 5.6e6).abs() < 0.1);
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{\"k\": nope}").is_err());
    }

    #[test]
    fn tolerance_env_parses_and_rejects_nonsense() {
        // Single-threaded with respect to this variable: no other test in
        // this binary touches SQVAE_BENCH_TOL.
        std::env::set_var("SQVAE_BENCH_TOL", "5.5");
        assert_eq!(tolerance_from_env(), Some(5.5));
        std::env::set_var("SQVAE_BENCH_TOL", "0.5"); // < 1x would gate on noise
        assert_eq!(tolerance_from_env(), None);
        std::env::set_var("SQVAE_BENCH_TOL", "loose");
        assert_eq!(tolerance_from_env(), None);
        std::env::remove_var("SQVAE_BENCH_TOL");
        assert_eq!(tolerance_from_env(), None);
    }

    #[test]
    fn gate_flags_only_regressions_beyond_tolerance() {
        let baseline: BTreeMap<String, f64> = [
            ("fast".to_string(), 100.0),
            ("slow".to_string(), 100.0),
            ("gone".to_string(), 100.0),
        ]
        .into_iter()
        .collect();
        let measured: BTreeMap<String, f64> = [
            ("fast".to_string(), 250.0), // 2.5x: within the 3x tolerance
            ("slow".to_string(), 400.0), // 4x: regression
            ("new".to_string(), 1.0),    // not tracked yet
        ]
        .into_iter()
        .collect();
        let failures = check(&baseline, &measured, 3.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("slow"));
    }
}
