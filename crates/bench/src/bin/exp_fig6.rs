//! Fig. 6 — quantum layer-depth sensitivity.
//!
//! Sweeps the SQ-AE's strongly-entangling layer count L from 1 to 9 and
//! reports train/test MSE after 5 and 10 epochs. The paper finds a sweet
//! spot around L = 5: too shallow lacks expressive power, too deep breeds
//! spurious local minima (You & Wu 2021).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{print_table_with_csv, section, ExpArgs};
use sqvae_core::{models, TrainConfig, Trainer};
use sqvae_datasets::pdbbind::{generate, PdbbindConfig};

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let epochs = 10; // the paper probes epochs 5 and 10 at both scales
    let probe = 5;
    let n = args.pick(128, 2492);
    let patches = 8; // LSD 56, the Table II sweet spot

    let data = generate(&PdbbindConfig {
        n_samples: n,
        seed: args.seed,
    });
    let (train, test) = data.shuffle_split(0.85, args.seed);

    section(format!(
        "Fig. 6: SQ-AE (p={patches}) layer-depth sweep, train/test MSE @ epochs {probe} and {epochs}"
    )
    .as_str());

    let mut rows = Vec::new();
    for layers in 1..=9usize {
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut model = models::sq_ae(1024, patches, layers, &mut rng);
        let hist = Trainer::new(TrainConfig {
            epochs,
            // The paper tunes depth at a homogeneous LR of 0.001 (§IV-B).
            quantum_lr: 0.001,
            classical_lr: 0.001,
            seed: args.seed,
            threads: args.threads,
            backend: args.backend,
            ..TrainConfig::default()
        })
        .train(&mut model, &train, Some(&test))
        .expect("training succeeds");
        let early = hist.at_epoch(probe - 1).expect("probe within epochs");
        let late = hist.records.last().expect("non-empty history");
        rows.push(vec![
            layers.to_string(),
            format!("{:.4}", early.train_mse),
            format!("{:.4}", early.test_mse.expect("test set supplied")),
            format!("{:.4}", late.train_mse),
            format!("{:.4}", late.test_mse.expect("test set supplied")),
        ]);
    }
    print_table_with_csv(
        "fig6_depth_sweep",
        &[
            "layers",
            &format!("train@{probe}"),
            &format!("test@{probe}"),
            &format!("train@{epochs}"),
            &format!("test@{epochs}"),
        ],
        &rows,
    );
    println!("  expected shape: loss minimized at mid depth (paper: L = 5)");
}
