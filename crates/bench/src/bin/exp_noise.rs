//! Extension experiment (beyond the paper, DESIGN.md §7): NISQ realism.
//!
//! The paper trains on a noiseless simulator and reads out exact
//! expectations. Real near-term hardware adds (1) finite measurement shots
//! and (2) gate noise. This experiment quantifies both on the paper's
//! baseline encoder circuit (6 qubits, L = 3):
//!
//! * shot-noise: |⟨Z₀⟩ estimate − exact| vs number of shots,
//! * depolarizing damping: ⟨Z⟩ magnitude vs per-gate noise probability,
//! * gradient signal: the parameter-shift gradient magnitude vs the
//!   shot-noise floor, showing how many shots a NISQ device would need to
//!   see the training signal at all.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{print_table_with_csv, section, ExpArgs};
use sqvae_quantum::grad::paramshift;
use sqvae_quantum::noise::{noisy_expectations_z, NoiseModel};
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::Circuit;

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let trajectories = args.pick(300, 2000);

    let mut c = Circuit::new(6).expect("valid register");
    c.extend(strongly_entangling_layers(6, 3, 0, EntangleRange::Ring).expect("fits"))
        .expect("fits");
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.07 * i as f64 - 1.5).collect();
    let exact = c
        .run_expectations_z(&params, &[], None)
        .expect("execution succeeds");

    section("Extension: shot-noise on the baseline encoder readout (⟨Z₀⟩)");
    let state = c.run(&params, &[], None).expect("execution succeeds");
    let mut rows = Vec::new();
    for &shots in &[64usize, 256, 1024, 4096, 16384] {
        // Average the estimator error over independent repetitions.
        let mut err = 0.0;
        let reps = 20;
        for r in 0..reps {
            let mut rng = StdRng::seed_from_u64(args.seed + r);
            let est = state
                .estimate_expectation_z(0, shots, &mut rng)
                .expect("wire in range");
            err += (est - exact[0]).abs();
        }
        rows.push(vec![
            shots.to_string(),
            format!("{:.4}", err / reps as f64),
            format!("{:.4}", 1.0 / (shots as f64).sqrt()),
        ]);
    }
    print_table_with_csv(
        "noise_shot_error",
        &["shots", "mean |error|", "1/sqrt(shots)"],
        &rows,
    );
    println!("  expected: error tracks the 1/sqrt(shots) statistical floor");

    section("Extension: depolarizing damping of the encoder outputs");
    let clean_mag: f64 = exact.iter().map(|z| z.abs()).sum::<f64>() / exact.len() as f64;
    let mut rows = Vec::new();
    for &p in &[0.0f64, 0.001, 0.005, 0.02, 0.05] {
        let mut rng = StdRng::seed_from_u64(args.seed);
        let z = noisy_expectations_z(
            &c,
            &params,
            &[],
            None,
            NoiseModel::depolarizing(p),
            trajectories,
            &mut rng,
        )
        .expect("trajectories succeed");
        let mag: f64 = z.iter().map(|v| v.abs()).sum::<f64>() / z.len() as f64;
        rows.push(vec![
            format!("{p}"),
            format!("{mag:.4}"),
            format!("{:.2}", mag / clean_mag),
        ]);
    }
    print_table_with_csv(
        "noise_depolarizing_damping",
        &["p(depol)", "mean |⟨Z⟩|", "fraction of clean"],
        &rows,
    );
    println!("  expected: signal decays monotonically with gate noise");

    section("Extension: training-signal magnitude vs shot floor");
    let (jac, _) = paramshift::jacobian_expectations_z(&c, &params, &[], None)
        .expect("parameter shift succeeds");
    let grad_mag: f64 = jac
        .iter()
        .flat_map(|row| row.iter().map(|g| g.abs()))
        .fold(0.0, f64::max);
    let mut rows = Vec::new();
    for &shots in &[256usize, 1024, 4096, 16384] {
        let floor = 1.0 / (shots as f64).sqrt();
        rows.push(vec![
            shots.to_string(),
            format!("{grad_mag:.4}"),
            format!("{floor:.4}"),
            if grad_mag > 2.0 * floor {
                "yes"
            } else {
                "marginal/no"
            }
            .to_string(),
        ]);
    }
    print_table_with_csv(
        "noise_gradient_floor",
        &["shots", "max |dZ/dθ|", "noise floor", "signal visible?"],
        &rows,
    );
    println!("  (two-point shift estimators need the gradient above ~2x the floor)");
}
