//! Fig. 7 — heterogeneous learning-rate grid.
//!
//! Trains the SQ-AE under every combination of quantum × classical learning
//! rate in {0.001, 0.003, 0.01, 0.03, 0.1} and reports final train MSE.
//! The paper's optimum is quantum 0.03 / classical 0.01 — off the diagonal,
//! which is the whole argument for heterogeneous rates (§III-C).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{print_table_with_csv, section, ExpArgs};
use sqvae_core::{models, TrainConfig, Trainer};
use sqvae_datasets::pdbbind::{generate, PdbbindConfig};

const RATES: [f64; 5] = [0.001, 0.003, 0.01, 0.03, 0.1];

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let epochs = args.pick(3, 10);
    let n = args.pick(64, 2492);
    let layers = args.pick(2, 5);
    let patches = 8;

    let data = generate(&PdbbindConfig {
        n_samples: n,
        seed: args.seed,
    });
    let (train, _) = data.shuffle_split(0.85, args.seed);

    section(
        format!(
            "Fig. 7: SQ-AE (p={patches}, L={layers}) train MSE over quantum x classical LR grid"
        )
        .as_str(),
    );

    let mut rows = Vec::new();
    let mut best = (f64::INFINITY, 0.0, 0.0);
    for &clr in &RATES {
        let mut row = vec![format!("c={clr}")];
        for &qlr in &RATES {
            let mut rng = StdRng::seed_from_u64(args.seed);
            let mut model = models::sq_ae(1024, patches, layers, &mut rng);
            let hist = Trainer::new(TrainConfig {
                epochs,
                quantum_lr: qlr,
                classical_lr: clr,
                seed: args.seed,
                threads: args.threads,
                backend: args.backend,
                ..TrainConfig::default()
            })
            .train(&mut model, &train, None)
            .expect("training succeeds");
            let mse = hist.final_train_mse().expect("non-empty history");
            if mse < best.0 {
                best = (mse, qlr, clr);
            }
            row.push(format!("{mse:.4}"));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("cls \\ qnt".to_string())
        .chain(RATES.iter().map(|r| format!("q={r}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table_with_csv("fig7_learning_rate_grid", &header_refs, &rows);
    println!(
        "  best: train MSE {:.4} at quantum lr {} / classical lr {} (paper: 0.03 / 0.01)",
        best.0, best.1, best.2
    );
}
