//! Fig. 5 — why the baseline quantum autoencoder does not scale.
//!
//! * Panel (a): reconstruction MSE per epoch of F-BQ-AE (10D), H-BQ-AE
//!   (10D), and the classical AE (10D) on 32×32 PDBbind-like ligands — the
//!   fully quantum variant barely learns, the hybrid sits between.
//! * Panel (b): test MSE at the final epoch vs latent space dimension
//!   {10, 16, 32, 64, 128} for classical AEs and VAEs — AEs improve with
//!   LSD, VAEs stay almost flat.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{print_series, print_table, section, ExpArgs};
use sqvae_core::{models, TrainConfig, Trainer};
use sqvae_datasets::pdbbind::{generate, PdbbindConfig};

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let epochs = args.pick(6, 20);
    let n = args.pick(120, 2492);

    let data = generate(&PdbbindConfig {
        n_samples: n,
        seed: args.seed,
    });
    let (train, test) = data.shuffle_split(0.85, args.seed);

    if args.wants_panel("a") {
        section("Fig. 5(a): baselines on PDBbind ligands (train MSE per epoch, LSD 10)");
        let config = || TrainConfig {
            epochs,
            quantum_lr: 0.01,
            classical_lr: 0.01,
            seed: args.seed,
            threads: args.threads,
            backend: args.backend,
            ..TrainConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(args.seed);

        // Fully quantum on normalized data (probabilities cannot reach the
        // original code scale — exactly the paper's point).
        let mut fbq = models::f_bq_ae(1024, models::BASELINE_LAYERS, &mut rng);
        let hist = Trainer::new(config())
            .train(&mut fbq, &train, None)
            .expect("training succeeds");
        print_series("F-BQ-AE 10D", &hist.train_mse_series());

        let mut hbq = models::h_bq_ae(1024, models::BASELINE_LAYERS, &mut rng);
        let hist = Trainer::new(config())
            .train(&mut hbq, &train, None)
            .expect("training succeeds");
        print_series("H-BQ-AE 10D", &hist.train_mse_series());

        let mut ae = models::classical_ae(1024, 10, &mut rng);
        let hist = Trainer::new(config())
            .train(&mut ae, &train, None)
            .expect("training succeeds");
        print_series("AE 10D", &hist.train_mse_series());
        println!("  expected shape: F-BQ-AE stuck high, H-BQ-AE between, AE lowest");
    }

    if args.wants_panel("b") {
        section("Fig. 5(b): final test MSE vs latent space dimension (classical AE/VAE)");
        let mut rows = Vec::new();
        for &lsd in &[10usize, 16, 32, 64, 128] {
            let mut rng = StdRng::seed_from_u64(args.seed);
            let mut ae = models::classical_ae(1024, lsd, &mut rng);
            let ae_hist = Trainer::new(TrainConfig {
                epochs,
                seed: args.seed,
                threads: args.threads,
                backend: args.backend,
                ..TrainConfig::default()
            })
            .train(&mut ae, &train, Some(&test))
            .expect("training succeeds");
            let mut vae = models::classical_vae(1024, lsd, &mut rng);
            let vae_hist = Trainer::new(TrainConfig {
                epochs,
                seed: args.seed,
                threads: args.threads,
                backend: args.backend,
                ..TrainConfig::default()
            })
            .train(&mut vae, &train, Some(&test))
            .expect("training succeeds");
            rows.push(vec![
                lsd.to_string(),
                format!(
                    "{:.4}",
                    ae_hist.final_test_mse().expect("test set supplied")
                ),
                format!(
                    "{:.4}",
                    vae_hist.final_test_mse().expect("test set supplied")
                ),
            ]);
        }
        print_table(&["LSD", "AE-test-MSE", "VAE-test-MSE"], &rows);
        println!("  expected shape: AE improves with larger LSD, VAE nearly flat");
    }
}
