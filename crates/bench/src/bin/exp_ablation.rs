//! Ablations of the paper's three architectural choices (DESIGN.md §7):
//!
//! 1. **Heterogeneous vs homogeneous learning rates** — SQ-AE trained with
//!    (q=0.03, c=0.01) against the same rate for both groups.
//! 2. **Patched vs baseline circuit** — SQ-AE (LSD 56) against H-BQ-AE
//!    (LSD 10) on the same ligands: the input-output mapping constraint in
//!    action.
//! 3. **Gradient engines** — numerical agreement of adjoint,
//!    parameter-shift, and finite differences on an SQ-AE patch circuit
//!    (why the adjoint path is trusted for training).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{print_series, print_table, section, ExpArgs};
use sqvae_core::{models, TrainConfig, Trainer};
use sqvae_datasets::pdbbind::{generate, PdbbindConfig};
use sqvae_quantum::embed::{angle_embedding_gates, RotationAxis};
use sqvae_quantum::grad::{adjoint, finite_diff, paramshift};
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::Circuit;

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let epochs = args.pick(6, 20);
    let n = args.pick(96, 2492);
    let layers = args.pick(2, models::SCALABLE_LAYERS);

    let data = generate(&PdbbindConfig {
        n_samples: n,
        seed: args.seed,
    });
    let (train, _) = data.shuffle_split(0.85, args.seed);

    if args.wants_panel("lr") {
        section("Ablation 1: heterogeneous vs homogeneous learning rates (SQ-AE p=8)");
        for (label, qlr, clr) in [
            ("hetero q=0.03/c=0.01", 0.03, 0.01),
            ("homog  q=c=0.01", 0.01, 0.01),
            ("homog  q=c=0.03", 0.03, 0.03),
        ] {
            let mut rng = StdRng::seed_from_u64(args.seed);
            let mut model = models::sq_ae(1024, 8, layers, &mut rng);
            let hist = Trainer::new(TrainConfig {
                epochs,
                quantum_lr: qlr,
                classical_lr: clr,
                seed: args.seed,
                threads: args.threads,
                backend: args.backend,
                ..TrainConfig::default()
            })
            .train(&mut model, &train, None)
            .expect("training succeeds");
            print_series(label, &hist.train_mse_series());
        }
    }

    if args.wants_panel("patch") {
        section("Ablation 2: patched (SQ-AE, LSD 56) vs baseline (H-BQ-AE, LSD 10)");
        let mut rows = Vec::new();
        for (label, build) in [
            (
                "H-BQ-AE LSD 10",
                Box::new(|rng: &mut StdRng| models::h_bq_ae(1024, 3, rng))
                    as Box<dyn Fn(&mut StdRng) -> sqvae_core::Autoencoder>,
            ),
            (
                "SQ-AE   LSD 56",
                Box::new(move |rng: &mut StdRng| models::sq_ae(1024, 8, layers, rng)),
            ),
        ] {
            let mut rng = StdRng::seed_from_u64(args.seed);
            let mut model = build(&mut rng);
            let pc = model.parameter_count();
            let hist = Trainer::new(TrainConfig {
                epochs,
                seed: args.seed,
                threads: args.threads,
                backend: args.backend,
                ..TrainConfig::default()
            })
            .train(&mut model, &train, None)
            .expect("training succeeds");
            rows.push(vec![
                label.to_string(),
                pc.quantum.to_string(),
                format!("{:.4}", hist.records[0].train_mse),
                format!("{:.4}", hist.final_train_mse().expect("non-empty")),
            ]);
        }
        print_table(&["model", "q-params", "epoch-0 MSE", "final MSE"], &rows);
        println!("  expected: the patched model's 5.6x larger latent space wins");
    }

    if args.wants_panel("grad") {
        section("Ablation 3: gradient-engine agreement on an SQ patch circuit");
        let n_qubits = 7; // the p=8 patch size
        let mut c = Circuit::new(n_qubits).expect("valid register");
        c.extend(angle_embedding_gates(n_qubits, RotationAxis::Y, 0))
            .expect("embedding fits");
        c.extend(
            strongly_entangling_layers(n_qubits, 3, 0, EntangleRange::Ring).expect("template fits"),
        )
        .expect("template fits");
        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.03 * i as f64 - 0.9).collect();
        let inputs: Vec<f64> = (0..n_qubits).map(|i| 0.2 * i as f64).collect();
        let upstream: Vec<f64> = (0..n_qubits).map(|i| 1.0 - 0.1 * i as f64).collect();

        let adj = adjoint::backward_expectations_z(&c, &params, &inputs, None, &upstream)
            .expect("adjoint succeeds");
        let ps = paramshift::vjp_expectations_z(&c, &params, &inputs, None, &upstream)
            .expect("parameter shift succeeds");
        let fd = finite_diff::jacobian_params(&c, &params, &inputs, None, 1e-6, |s| {
            (0..n_qubits)
                .map(|w| s.expectation_z(w).expect("wire in range"))
                .collect()
        })
        .expect("finite differences succeed");
        let fd_vjp: Vec<f64> = fd
            .iter()
            .map(|row| row.iter().zip(&upstream).map(|(j, u)| j * u).sum())
            .collect();

        let max_diff = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max)
        };
        let rows = vec![
            vec![
                "adjoint vs param-shift".to_string(),
                format!("{:.2e}", max_diff(&adj.params, &ps.params)),
            ],
            vec![
                "adjoint vs finite-diff".to_string(),
                format!("{:.2e}", max_diff(&adj.params, &fd_vjp)),
            ],
        ];
        print_table(&["engine pair", "max |Δgrad|"], &rows);
        println!(
            "  ({} trainable parameters; agreement at machine/step precision)",
            params.len()
        );
    }
}
