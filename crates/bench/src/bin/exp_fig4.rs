//! Fig. 4 — baseline quantum autoencoders vs classical VAEs on 8×8 data.
//!
//! * Panel (a): train MSE per epoch on *original-scale* Digits and QM9 —
//!   the paper sees no quantum advantage here (probability outputs cannot
//!   reach original scales; the hybrid FC has to do the work).
//! * Panel (b): the same on *L1-normalized* inputs — the regime where
//!   BQ-VAE learns faster than the classical VAE.
//! * Panel (c,d): digit reconstructions/samples and a QM9 molecule
//!   reconstruction from original vs normalized inputs, as ASCII art and
//!   SMILES.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{ascii_image, ascii_side_by_side, batch_matrix, print_series, section, ExpArgs};
use sqvae_chem::{smiles, MoleculeMatrix};
use sqvae_core::{models, Autoencoder, TrainConfig, Trainer};
use sqvae_datasets::digits::{generate as gen_digits, DigitsConfig};
use sqvae_datasets::qm9::{generate as gen_qm9, Qm9Config};
use sqvae_datasets::Dataset;

fn train_curve(model: &mut Autoencoder, data: &Dataset, epochs: usize, args: &ExpArgs) -> Vec<f64> {
    let mut trainer = Trainer::new(TrainConfig {
        epochs,
        // The paper's Fig. 4 training uses a single LR of 0.01 for curve
        // comparison; heterogeneous rates are introduced later (Fig. 7).
        quantum_lr: 0.01,
        classical_lr: 0.01,
        seed: args.seed,
        threads: args.threads,
        backend: args.backend,
        ..TrainConfig::default()
    });
    trainer
        .train(model, data, None)
        .expect("training succeeds")
        .train_mse_series()
}

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let epochs = args.pick(8, 20);
    let n = args.pick(160, 1000);

    let digits = gen_digits(&DigitsConfig {
        n_samples: n,
        seed: args.seed,
    });
    let qm9 = gen_qm9(&Qm9Config {
        n_samples: n,
        seed: args.seed,
    });

    if args.wants_panel("a") {
        section("Fig. 4(a): train MSE on ORIGINAL-scale Digits & QM9 (per epoch)");
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut bq_qm9 = models::h_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
        print_series("BQ-VAE-QM9", &train_curve(&mut bq_qm9, &qm9, epochs, &args));
        let mut cvae_qm9 = models::classical_vae(64, 6, &mut rng);
        print_series("CVAE-QM9", &train_curve(&mut cvae_qm9, &qm9, epochs, &args));
        let mut bq_dig = models::h_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
        print_series(
            "BQ-VAE-Digits",
            &train_curve(&mut bq_dig, &digits, epochs, &args),
        );
        let mut cvae_dig = models::classical_vae(64, 6, &mut rng);
        print_series(
            "CVAE-Digits",
            &train_curve(&mut cvae_dig, &digits, epochs, &args),
        );
        println!("  expected shape: classical VAE reaches lower loss at original scale");
    }

    if args.wants_panel("b") {
        section("Fig. 4(b): train MSE on L1-NORMALIZED Digits & QM9 (per epoch)");
        let qm9_n = qm9.l1_normalized();
        let digits_n = digits.l1_normalized();
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut bq_qm9 = models::f_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
        print_series(
            "BQ-VAE-QM9",
            &train_curve(&mut bq_qm9, &qm9_n, epochs, &args),
        );
        let mut cvae_qm9 = models::classical_vae(64, 6, &mut rng);
        print_series(
            "CVAE-QM9",
            &train_curve(&mut cvae_qm9, &qm9_n, epochs, &args),
        );
        let mut bq_dig = models::f_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
        print_series(
            "BQ-VAE-Digits",
            &train_curve(&mut bq_dig, &digits_n, epochs, &args),
        );
        let mut cvae_dig = models::classical_vae(64, 6, &mut rng);
        print_series(
            "CVAE-Digits",
            &train_curve(&mut cvae_dig, &digits_n, epochs, &args),
        );
        println!("  expected shape: fully quantum BQ-VAE converges faster when normalized");
    }

    if args.wants_panel("cd") || args.wants_panel("c") || args.wants_panel("d") {
        section("Fig. 4(c): digit inputs, BQ-VAE reconstructions, and samples");
        let digits_n = digits.l1_normalized();
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut bq = models::f_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
        args.train_or_restore("fig4c-fbq-digits", &mut bq, |m| {
            train_curve(m, &digits_n, epochs, &args);
        });
        for i in 0..3 {
            let x = batch_matrix(&[digits_n.sample(i)]);
            let recon = bq.reconstruct(&x).expect("reconstruction succeeds");
            let max_in = digits_n.sample(i).iter().cloned().fold(0.0f64, f64::max);
            let max_out = recon.row(0).iter().cloned().fold(0.0f64, f64::max);
            let left = ascii_image(digits_n.sample(i), 8, max_in.max(1e-12));
            let right = ascii_image(recon.row(0), 8, max_out.max(1e-12));
            println!("  input {i} (left) vs reconstruction (right):");
            print!("{}", ascii_side_by_side(&left, &right));
        }
        let mut srng = StdRng::seed_from_u64(args.seed + 2);
        let samples = bq.sample(3, &mut srng).expect("sampling succeeds");
        for i in 0..3 {
            let max = samples.row(i).iter().cloned().fold(0.0f64, f64::max);
            println!("  BQ-VAE sample {i}:");
            print!("{}", ascii_image(samples.row(i), 8, max.max(1e-12)));
        }

        section("Fig. 4(d): QM9 molecule reconstruction, original vs normalized input");
        let mol_feats = qm9.sample(0);
        let input_mol = MoleculeMatrix::from_values(8, mol_feats.to_vec())
            .expect("8x8 features")
            .decode();
        println!(
            "  input molecule: {} ({})",
            smiles::write(&input_mol).unwrap_or_else(|_| "-".into()),
            input_mol.formula()
        );
        // Original-scale reconstruction through the hybrid baseline.
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut hbq = models::h_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
        args.train_or_restore("fig4d-hbq-qm9", &mut hbq, |m| {
            train_curve(m, &qm9, epochs, &args);
        });
        match sqvae_core::sampling::reconstruct_molecule(&mut hbq, &input_mol, 8, false, None) {
            Ok(Some(m)) => println!(
                "  reconstructed (original scale): {} ({})",
                smiles::write(&m).unwrap_or_else(|_| "-".into()),
                m.formula()
            ),
            _ => println!("  reconstructed (original scale): <empty decode>"),
        }
        // Normalized-input reconstruction through the fully quantum model;
        // rescale by the input's L1 norm for decoding.
        let qm9_n = qm9.l1_normalized();
        let mut fbq = models::f_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
        args.train_or_restore("fig4d-fbq-qm9", &mut fbq, |m| {
            train_curve(m, &qm9_n, epochs, &args);
        });
        let l1: f64 = mol_feats.iter().sum();
        match sqvae_core::sampling::reconstruct_molecule(&mut fbq, &input_mol, 8, true, Some(l1)) {
            Ok(Some(m)) => println!(
                "  reconstructed (normalized):     {} ({})",
                smiles::write(&m).unwrap_or_else(|_| "-".into()),
                m.formula()
            ),
            _ => println!("  reconstructed (normalized):     <empty decode>"),
        }
        println!("  expected shape: normalized reconstruction barely resembles the input");
    }
}
