//! Table II — drug properties (QED / logP / SA, normalized) of ligands
//! sampled from VAEs and SQ-VAEs with LSD ∈ {18, 32, 56, 96} after training
//! on PDBbind-like ligands.
//!
//! Shape expectation (paper): SQ-VAE matches or beats VAE on most columns
//! at small LSD (e.g. logP/SA at LSD-18, QED at LSD-56); VAE's logP/SA rise
//! with LSD.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{print_table_with_csv, section, ExpArgs};
use sqvae_core::{models, patched_latent_dim, sampling, TrainConfig, Trainer};
use sqvae_datasets::pdbbind::{generate, generate_molecules, PdbbindConfig, PDBBIND_MATRIX_SIZE};

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let n_train = args.pick(128, 2118); // 85% of 2492 at full scale
    let epochs = args.pick(10, 20);
    let n_samples = args.pick(200, 1000);

    let data = generate(&PdbbindConfig {
        n_samples: args.pick(151, 2492),
        seed: args.seed,
    });
    let (train, _) = data.shuffle_split(n_train as f64 / data.len() as f64, args.seed);

    section("Table II: drug properties of sampled ligands (normalized QED/logP/SA)");
    println!(
        "  ({} train ligands, {} epochs, {} samples per model)",
        train.len(),
        epochs,
        n_samples
    );

    let training_molecules = generate_molecules(&PdbbindConfig {
        n_samples: args.pick(151, 2492),
        seed: args.seed,
    });

    let mut rows = Vec::new();
    let mut quality_rows = Vec::new();
    for &p in &[2usize, 4, 8, 16] {
        let lsd = patched_latent_dim(1024, p);
        let mut rng = StdRng::seed_from_u64(args.seed);

        // Classical VAE at the matching LSD.
        let mut vae = models::classical_vae(1024, lsd, &mut rng);
        args.train_or_restore(&format!("vae-lsd{lsd}"), &mut vae, |m| {
            let mut trainer = Trainer::new(TrainConfig {
                epochs,
                threads: args.threads,
                backend: args.backend,
                ..TrainConfig::default()
            });
            trainer
                .train(m, &train, None)
                .expect("classical training succeeds");
        });
        let mut srng = StdRng::seed_from_u64(args.seed + 1);
        let v =
            sampling::sample_molecules(&mut vae, n_samples, PDBBIND_MATRIX_SIZE, None, &mut srng)
                .expect("sampling succeeds");

        // SQ-VAE with p patches.
        let mut sq = models::sq_vae(1024, p, args.pick(2, models::SCALABLE_LAYERS), &mut rng);
        args.train_or_restore(&format!("sq-lsd{lsd}"), &mut sq, |m| {
            let mut trainer = Trainer::new(TrainConfig {
                epochs,
                threads: args.threads,
                backend: args.backend,
                ..TrainConfig::default()
            });
            trainer
                .train(m, &train, None)
                .expect("quantum training succeeds");
        });
        let mut srng = StdRng::seed_from_u64(args.seed + 1);
        let q =
            sampling::sample_molecules(&mut sq, n_samples, PDBBIND_MATRIX_SIZE, None, &mut srng)
                .expect("sampling succeeds");

        rows.push(vec![
            format!("LSD-{lsd}"),
            format!("{:.3}", v.properties.qed),
            format!("{:.3}", q.properties.qed),
            format!("{:.3}", v.properties.logp),
            format!("{:.3}", q.properties.logp),
            format!("{:.3}", v.properties.sa),
            format!("{:.3}", q.properties.sa),
            format!("{:.2}", v.validity),
            format!("{:.2}", q.validity),
        ]);

        // Extension: MolGAN-style generation-quality metrics.
        let vm = sampling::generation_metrics(&v, &training_molecules);
        let qm = sampling::generation_metrics(&q, &training_molecules);
        for (name, m) in [("VAE", vm), ("SQ-VAE", qm)] {
            quality_rows.push(vec![
                format!("LSD-{lsd} {name}"),
                format!("{:.2}", m.uniqueness),
                format!("{:.2}", m.novelty),
                format!("{:.2}", m.diversity),
                format!("{:.2}", m.lipinski),
            ]);
        }
    }
    print_table_with_csv(
        "table2_drug_properties",
        &[
            "LSD",
            "VAE-QED",
            "SQVAE-QED",
            "VAE-logP",
            "SQVAE-logP",
            "VAE-SA",
            "SQVAE-SA",
            "VAE-valid",
            "SQVAE-valid",
        ],
        &rows,
    );
    println!();
    println!("  paper (QED): VAE .138/.179/.139/.142  SQ-VAE .153/.177/.204/.167");
    println!("  paper (logP): VAE .357/.472/.496/.761 SQ-VAE .780/.616/.709/.740");
    println!("  paper (SA):  VAE .192/.292/.307/.599  SQ-VAE .626/.479/.534/.547");

    section("Extension: generation quality (uniqueness / novelty / diversity / Lipinski)");
    print_table_with_csv(
        "table2_generation_quality",
        &["model", "unique", "novel", "diverse", "lipinski"],
        &quality_rows,
    );
}
