//! Runs every experiment binary in-process at the selected scale, in paper
//! order. `cargo run --release -p sqvae-bench --bin run_all [--full]`.

use std::process::Command;

fn main() {
    let pass_through: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("executable directory");
    for bin in [
        "exp_table1",
        "exp_fig4",
        "exp_fig5",
        "exp_fig6",
        "exp_fig7",
        "exp_fig8",
        "exp_table2",
        "exp_ablation",
        "exp_noise",
        "exp_imagegen",
    ] {
        println!();
        println!("################ {bin} ################");
        let status = Command::new(dir.join(bin))
            .args(&pass_through)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!();
    println!("All experiments completed.");
}
