//! Fig. 8 — the scalable quantum autoencoders at work.
//!
//! * Panel (a): final train MSE vs latent space dimension on PDBbind-like
//!   ligands for VAE, SQ-VAE, and SQ-AE (LSD from patches 2/4/8/16).
//! * Panel (b): train MSE per epoch on grayscale CIFAR-like 32×32 images
//!   (SQ-VAE, CVAE, SQ-AE, CAE at LSD 18).
//! * Panel (c): three test images and their classical-AE vs SQ-AE
//!   reconstructions as ASCII art.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{
    ascii_image, ascii_side_by_side, batch_matrix, print_series, print_table, section, ExpArgs,
};
use sqvae_core::{models, patched_latent_dim, TrainConfig, Trainer};
use sqvae_datasets::cifar_gray::{generate as gen_cifar, CifarGrayConfig};
use sqvae_datasets::pdbbind::{generate as gen_pdbbind, PdbbindConfig};

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let epochs = args.pick(4, 20);
    let layers = args.pick(2, models::SCALABLE_LAYERS);

    if args.wants_panel("a") {
        section("Fig. 8(a): final train MSE vs LSD on PDBbind ligands");
        let data = gen_pdbbind(&PdbbindConfig {
            n_samples: args.pick(96, 2492),
            seed: args.seed,
        });
        let (train, _) = data.shuffle_split(0.85, args.seed);
        let mut rows = Vec::new();
        for &p in &[2usize, 4, 8, 16] {
            let lsd = patched_latent_dim(1024, p);
            let run = |mut model: sqvae_core::Autoencoder| -> f64 {
                Trainer::new(TrainConfig {
                    epochs,
                    seed: args.seed,
                    threads: args.threads,
                    backend: args.backend,
                    ..TrainConfig::default()
                })
                .train(&mut model, &train, None)
                .expect("training succeeds")
                .final_train_mse()
                .expect("non-empty history")
            };
            let mut rng = StdRng::seed_from_u64(args.seed);
            let vae = run(models::classical_vae(1024, lsd, &mut rng));
            let sq_vae = run(models::sq_vae(1024, p, layers, &mut rng));
            let sq_ae = run(models::sq_ae(1024, p, layers, &mut rng));
            rows.push(vec![
                format!("{lsd} (p={p})"),
                format!("{vae:.4}"),
                format!("{sq_vae:.4}"),
                format!("{sq_ae:.4}"),
            ]);
        }
        print_table(&["LSD", "VAE", "SQ-VAE", "SQ-AE"], &rows);
        println!("  expected shape: SQ variants on par with classical; SQ-AE ≤ SQ-VAE");
    }

    let cifar = gen_cifar(&CifarGrayConfig {
        n_samples: args.pick(96, 500),
        seed: args.seed,
    });
    let (train_img, test_img) = cifar.shuffle_split(0.85, args.seed);
    let p_img = 2; // LSD 18, as in the paper's panel (b)

    if args.wants_panel("b") {
        section("Fig. 8(b): train MSE per epoch on grayscale CIFAR images (LSD 18)");
        let run = |mut model: sqvae_core::Autoencoder| -> Vec<f64> {
            Trainer::new(TrainConfig {
                epochs,
                seed: args.seed,
                threads: args.threads,
                backend: args.backend,
                ..TrainConfig::default()
            })
            .train(&mut model, &train_img, None)
            .expect("training succeeds")
            .train_mse_series()
        };
        let mut rng = StdRng::seed_from_u64(args.seed);
        print_series(
            "SQ-VAE",
            &run(models::sq_vae(1024, p_img, layers, &mut rng)),
        );
        print_series("CVAE", &run(models::classical_vae(1024, 18, &mut rng)));
        print_series("SQ-AE", &run(models::sq_ae(1024, p_img, layers, &mut rng)));
        print_series("CAE", &run(models::classical_ae(1024, 18, &mut rng)));
        println!("  expected shape: AEs below VAEs; quantum on par with classical");
    }

    if args.wants_panel("c") {
        section("Fig. 8(c): CIFAR reconstructions — input | classical AE | SQ-AE");
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut cae = models::classical_ae(1024, 18, &mut rng);
        let mut sq = models::sq_ae(1024, p_img, layers, &mut rng);
        for model in [&mut cae, &mut sq] {
            Trainer::new(TrainConfig {
                epochs,
                seed: args.seed,
                threads: args.threads,
                backend: args.backend,
                ..TrainConfig::default()
            })
            .train(model, &train_img, None)
            .expect("training succeeds");
        }
        for i in 0..3.min(test_img.len()) {
            let x = batch_matrix(&[test_img.sample(i)]);
            let rc = cae.reconstruct(&x).expect("reconstruction succeeds");
            let rq = sq.reconstruct(&x).expect("reconstruction succeeds");
            let art_in = ascii_image(test_img.sample(i), 32, 1.0);
            let art_c = ascii_image(rc.row(0), 32, 1.0);
            let art_q = ascii_image(rq.row(0), 32, 1.0);
            println!("  test image {i}: input | classical AE:");
            print!("{}", ascii_side_by_side(&art_in, &art_c));
            println!("  test image {i}: input | SQ-AE:");
            print!("{}", ascii_side_by_side(&art_in, &art_q));
        }
        println!("  expected shape: both reconstructions show sketches of the input");
    }
}
