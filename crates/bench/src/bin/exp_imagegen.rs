//! Extension experiment: image *generation* from the SQ-VAE latent prior.
//!
//! The paper's conclusion notes that "the proposed scalable quantum
//! autoencoder also applies to other tasks such as image generation"; this
//! binary demonstrates it. An SQ-VAE is trained on grayscale CIFAR-like
//! images, then brand-new images are decoded from `z ~ N(0, I)` and
//! rendered as ASCII art, alongside distribution statistics comparing
//! generated pixels to the training set.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_bench::{ascii_image, print_table_with_csv, section, ExpArgs};
use sqvae_core::{models, TrainConfig, Trainer};
use sqvae_datasets::cifar_gray::{generate, CifarGrayConfig};
use sqvae_datasets::digits::{generate as gen_digits, DigitsConfig};

fn pixel_stats(samples: &[Vec<f64>]) -> (f64, f64) {
    let n: usize = samples.iter().map(|s| s.len()).sum();
    let mean: f64 = samples.iter().flatten().sum::<f64>() / n as f64;
    let var: f64 = samples
        .iter()
        .flatten()
        .map(|x| (x - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    (mean, var.sqrt())
}

fn main() {
    let args = ExpArgs::parse(std::env::args().skip(1));
    let epochs = args.pick(6, 20);

    section("Extension: SQ-VAE image generation (grayscale CIFAR-like, LSD 18)");
    let data = generate(&CifarGrayConfig {
        n_samples: args.pick(96, 500),
        seed: args.seed,
    });
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut model = models::sq_vae(1024, 2, args.pick(2, models::SCALABLE_LAYERS), &mut rng);
    let hist = Trainer::new(TrainConfig {
        epochs,
        seed: args.seed,
        max_grad_norm: Some(5.0),
        threads: args.threads,
        backend: args.backend,
        ..TrainConfig::default()
    })
    .train(&mut model, &data, None)
    .expect("training succeeds");
    println!(
        "  trained {} for {epochs} epochs: MSE {:.4} -> {:.4}",
        model.name,
        hist.records[0].train_mse,
        hist.final_train_mse().expect("non-empty history"),
    );

    let mut srng = StdRng::seed_from_u64(args.seed + 1);
    let images = model.sample(3, &mut srng).expect("sampling succeeds");
    for i in 0..3 {
        println!("  generated image {i}:");
        print!("{}", ascii_image(images.row(i), 32, 1.0));
    }

    let gen_rows: Vec<Vec<f64>> = (0..images.rows()).map(|r| images.row(r).to_vec()).collect();
    let (gm, gs) = pixel_stats(&gen_rows);
    let (tm, ts) = pixel_stats(data.samples());
    print_table_with_csv(
        "imagegen_pixel_stats",
        &["set", "pixel mean", "pixel std"],
        &[
            vec!["training".into(), format!("{tm:.3}"), format!("{ts:.3}")],
            vec!["generated".into(), format!("{gm:.3}"), format!("{gs:.3}")],
        ],
    );

    section("Extension: F-BQ-VAE digit generation (fully quantum prior samples)");
    let digits = gen_digits(&DigitsConfig {
        n_samples: args.pick(120, 500),
        seed: args.seed,
    })
    .l1_normalized();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut fbq = models::f_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
    Trainer::new(TrainConfig {
        epochs,
        quantum_lr: 0.01,
        classical_lr: 0.01,
        seed: args.seed,
        threads: args.threads,
        backend: args.backend,
        ..TrainConfig::default()
    })
    .train(&mut fbq, &digits, None)
    .expect("training succeeds");
    let mut srng = StdRng::seed_from_u64(args.seed + 2);
    let samples = fbq.sample(3, &mut srng).expect("sampling succeeds");
    for i in 0..3 {
        let max = samples.row(i).iter().cloned().fold(1e-12f64, f64::max);
        println!("  generated digit {i}:");
        print!("{}", ascii_image(samples.row(i), 8, max));
    }
}
