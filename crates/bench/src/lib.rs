//! # sqvae-bench
//!
//! Experiment harness for the DATE 2022 SQ-VAE reproduction. Each paper
//! table/figure has a dedicated binary that regenerates its rows/series:
//!
//! | binary | regenerates |
//! |---|---|
//! | `exp_table1` | Table I — trainable parameter counts |
//! | `exp_table2` | Table II — QED/logP/SA of sampled ligands per LSD |
//! | `exp_fig4` | Fig. 4 — BQ-VAE vs CVAE curves + reconstructions |
//! | `exp_fig5` | Fig. 5 — baselines on PDBbind; loss vs LSD |
//! | `exp_fig6` | Fig. 6 — quantum layer-depth sweep |
//! | `exp_fig7` | Fig. 7 — heterogeneous learning-rate grid |
//! | `exp_fig8` | Fig. 8 — scalable models: loss vs LSD, CIFAR curves, art |
//! | `run_all` | everything above at quick scale |
//!
//! Every binary defaults to a **quick** scale (reduced samples/epochs so the
//! whole suite runs in minutes on a laptop); pass `--full` for paper-scale
//! runs. Results print as aligned text tables; EXPERIMENTS.md records the
//! measured numbers next to the paper's.

use sqvae_core::checkpoint;
use sqvae_core::Autoencoder;
use sqvae_nn::{BackendKind, ExecPolicy, Matrix, Threads};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced dataset sizes and epochs (default; minutes on a laptop).
    Quick,
    /// Paper-scale sample counts and epochs.
    Full,
}

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Quick or full scale.
    pub scale: Scale,
    /// Optional `--panel <name>` selector within a figure.
    pub panel: Option<String>,
    /// Optional `--seed <n>` override.
    pub seed: u64,
    /// Batch-row parallelism for quantum layers (`--threads auto|off|<n>`;
    /// defaults to the `SQVAE_THREADS` environment variable). Results are
    /// bit-identical for every setting — only wall-clock changes.
    pub threads: Threads,
    /// Simulator backend for quantum layers (`--backend dense|fused|soa`;
    /// defaults to the `SQVAE_BACKEND` environment variable). Backends agree
    /// to ~1e-15 — only wall-clock changes.
    pub backend: BackendKind,
    /// Serving worker-pool size for experiments that stand up an
    /// `InferenceServer` (`--workers auto|off|<n>`; defaults to the
    /// `SQVAE_WORKERS` environment variable). Results are bit-identical
    /// for every setting — only requests/sec changes.
    pub workers: Threads,
    /// Optional `--save <path>` — checkpoint the trained model there.
    pub save: Option<String>,
    /// Optional `--load <path>` — restore a checkpoint instead of training
    /// from scratch.
    pub load: Option<String>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: Scale::Quick,
            panel: None,
            seed: 42,
            threads: Threads::from_env(),
            backend: BackendKind::from_env(),
            workers: sqvae::serve::workers_from_env(),
            save: None,
            load: None,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`-style arguments (skipping the binary name).
    ///
    /// Recognized: `--full`, `--quick`, `--panel <name>`, `--seed <n>`,
    /// `--threads <auto|off|n>`, `--backend <dense|fused|soa>`,
    /// `--workers <auto|off|n>`, `--save <path>`, `--load <path>`. Unknown
    /// flags are ignored so wrappers can pass extras through.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.scale = Scale::Full,
                "--quick" => out.scale = Scale::Quick,
                "--panel" => out.panel = it.next(),
                "--seed" => {
                    if let Some(s) = it.next() {
                        if let Ok(v) = s.parse() {
                            out.seed = v;
                        }
                    }
                }
                "--threads" => {
                    if let Some(s) = it.next() {
                        if let Ok(t) = s.parse() {
                            out.threads = t;
                        }
                    }
                }
                "--backend" => {
                    if let Some(s) = it.next() {
                        if let Ok(b) = s.parse() {
                            out.backend = b;
                        }
                    }
                }
                "--workers" => {
                    if let Some(s) = it.next() {
                        if let Ok(w) = s.parse() {
                            out.workers = w;
                        }
                    }
                }
                "--save" => out.save = it.next(),
                "--load" => out.load = it.next(),
                _ => {}
            }
        }
        out
    }

    /// The unified execution policy the `--threads` / `--backend` flags
    /// select, ready to hand to `TrainConfig` or
    /// `Module::set_exec_policy`.
    pub fn exec_policy(&self) -> ExecPolicy {
        ExecPolicy::new(self.threads, self.backend)
    }

    /// Picks `quick` or `full` by scale.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self.scale {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Whether a panel is selected (no selector = run everything).
    pub fn wants_panel(&self, name: &str) -> bool {
        self.panel.as_deref().map_or(true, |p| p == name)
    }

    /// Honors `--load` / `--save` around a training closure. With `--load`,
    /// the tagged checkpoint replaces training entirely (falling back to
    /// `train` when the file is missing or stale); otherwise `train` runs,
    /// and `--save` (if given) checkpoints the result. Experiments that
    /// train several models per run pass a distinct `tag` each — it is
    /// inserted before the path's extension (`out.ckpt` → `out.vae.ckpt`)
    /// so one flag fans out to one file per model. Checkpoint failures are
    /// reported but never abort an experiment.
    pub fn train_or_restore(
        &self,
        tag: &str,
        model: &mut Autoencoder,
        train: impl FnOnce(&mut Autoencoder),
    ) {
        if let Some(path) = &self.load {
            let path = tagged_path(path, tag);
            match checkpoint::load_model(&path) {
                Ok(m) => {
                    *model = m;
                    println!("  (restored checkpoint {path})");
                    return;
                }
                Err(e) => println!("  (cannot restore {path}: {e}; training instead)"),
            }
        }
        train(model);
        if let Some(path) = &self.save {
            let path = tagged_path(path, tag);
            match checkpoint::save_model(model, self.seed, &path) {
                Ok(()) => println!("  (saved checkpoint {path})"),
                Err(e) => println!("  (checkpoint save skipped: {e})"),
            }
        }
    }
}

/// Inserts `tag` before the path's extension (or appends it when there is
/// none); an empty tag leaves the path untouched.
fn tagged_path(path: &str, tag: &str) -> String {
    if tag.is_empty() {
        return path.to_string();
    }
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}.{tag}.{ext}"),
        _ => format!("{path}.{tag}"),
    }
}

/// Prints a header line for an experiment section.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints an aligned table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Prints a table and also writes it to `results/<name>.csv` (created on
/// demand), so external plotting tools can regenerate the paper's figures.
/// CSV failures are reported but never abort an experiment.
pub fn print_table_with_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    print_table(headers, rows);
    match write_csv(name, headers, rows) {
        Ok(path) => println!("  (saved {})", path.display()),
        Err(e) => println!("  (csv export skipped: {e})"),
    }
}

/// Writes a header + rows table as `results/<name>.csv`, returning the path.
///
/// # Errors
///
/// Returns I/O errors from directory creation or writing.
pub fn write_csv(
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        // Quote cells containing commas.
        let cells: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') {
                    format!("\"{c}\"")
                } else {
                    c.clone()
                }
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Prints a named loss series as one row of fixed-precision values.
pub fn print_series(name: &str, series: &[f64]) {
    let cells: Vec<String> = series.iter().map(|v| format!("{v:.4}")).collect();
    println!("  {name:<24} {}", cells.join(" "));
}

/// Renders a grayscale image (row-major, values scaled by `max`) as ASCII
/// art, darkest to brightest.
pub fn ascii_image(pixels: &[f64], width: usize, max: f64) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for (i, &p) in pixels.iter().enumerate() {
        let level = ((p / max).clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
        out.push(RAMP[level] as char);
        if (i + 1) % width == 0 {
            out.push('\n');
        }
    }
    out
}

/// Renders two images side by side with a gutter (for input/reconstruction
/// panels).
pub fn ascii_side_by_side(left: &str, right: &str) -> String {
    let l: Vec<&str> = left.lines().collect();
    let r: Vec<&str> = right.lines().collect();
    let width = l.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut out = String::new();
    for i in 0..l.len().max(r.len()) {
        let a = l.get(i).copied().unwrap_or("");
        let b = r.get(i).copied().unwrap_or("");
        out.push_str(&format!("{a:<width$}  |  {b}\n"));
    }
    out
}

/// Converts a dataset batch of row slices into a matrix (harness-side
/// convenience mirroring the trainer's internal helper).
pub fn batch_matrix(rows: &[&[f64]]) -> Matrix {
    Matrix::from_rows(rows).expect("uniform dataset widths")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> ExpArgs {
        ExpArgs::parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parse_defaults() {
        let a = args(&[]);
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed, 42);
        assert!(a.wants_panel("anything"));
    }

    #[test]
    fn parse_flags() {
        let a = args(&["--full", "--panel", "b", "--seed", "7"]);
        assert_eq!(a.scale, Scale::Full);
        assert_eq!(a.panel.as_deref(), Some("b"));
        assert_eq!(a.seed, 7);
        assert!(a.wants_panel("b"));
        assert!(!a.wants_panel("a"));
        assert_eq!(a.pick(1, 2), 2);
    }

    #[test]
    fn parse_ignores_unknown_and_bad_values() {
        let a = args(&["--wat", "--seed", "not-a-number"]);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn parse_backend_flag() {
        assert_eq!(args(&["--backend", "fused"]).backend, BackendKind::Fused);
        assert_eq!(args(&["--backend", "dense"]).backend, BackendKind::Dense);
        assert_eq!(args(&["--backend", "soa"]).backend, BackendKind::Soa);
        // Bad specs keep the default rather than aborting an experiment.
        let default = ExpArgs::default().backend;
        assert_eq!(args(&["--backend", "quantum"]).backend, default);
    }

    #[test]
    fn exec_policy_bundles_both_flags() {
        let a = args(&["--threads", "2", "--backend", "fused"]);
        let policy = a.exec_policy();
        assert_eq!(policy.threads, Threads::Fixed(2));
        assert_eq!(policy.backend, BackendKind::Fused);
    }

    #[test]
    fn parse_threads_flag() {
        assert_eq!(args(&["--threads", "off"]).threads, Threads::Off);
        assert_eq!(args(&["--threads", "0"]).threads, Threads::Off);
        assert_eq!(args(&["--threads", "3"]).threads, Threads::Fixed(3));
        assert_eq!(args(&["--threads", "auto"]).threads, Threads::Auto);
        // Bad specs keep the default rather than aborting an experiment.
        let default = ExpArgs::default().threads;
        assert_eq!(args(&["--threads", "banana"]).threads, default);
    }

    #[test]
    fn parse_workers_flag() {
        assert_eq!(args(&["--workers", "off"]).workers, Threads::Off);
        assert_eq!(args(&["--workers", "4"]).workers, Threads::Fixed(4));
        assert_eq!(args(&["--workers", "auto"]).workers, Threads::Auto);
        // Bad specs keep the default rather than aborting an experiment.
        let default = ExpArgs::default().workers;
        assert_eq!(args(&["--workers", "many"]).workers, default);
    }

    #[test]
    fn parse_save_and_load_paths() {
        let a = args(&["--save", "out.ckpt", "--load", "in.ckpt"]);
        assert_eq!(a.save.as_deref(), Some("out.ckpt"));
        assert_eq!(a.load.as_deref(), Some("in.ckpt"));
        assert_eq!(ExpArgs::default().save, None);
    }

    #[test]
    fn tagged_paths_insert_before_the_extension() {
        assert_eq!(tagged_path("out.ckpt", "vae"), "out.vae.ckpt");
        assert_eq!(tagged_path("a/b/out.ckpt", "sq-18"), "a/b/out.sq-18.ckpt");
        assert_eq!(tagged_path("out", "vae"), "out.vae");
        assert_eq!(tagged_path("out.ckpt", ""), "out.ckpt");
    }

    #[test]
    fn train_or_restore_round_trips_through_a_checkpoint() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use sqvae_core::models;

        let dir = std::env::temp_dir().join("sqvae-bench-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt").to_string_lossy().into_owned();

        // `--save`: the closure runs and the result lands on disk.
        let mut trained = models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(1));
        let save_args = ExpArgs {
            save: Some(path.clone()),
            ..ExpArgs::default()
        };
        let mut ran = false;
        save_args.train_or_restore("t", &mut trained, |_| ran = true);
        assert!(ran);

        // `--load`: the closure is skipped and the weights come back
        // bit-identical.
        let mut restored = models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(2));
        let load_args = ExpArgs {
            load: Some(path),
            ..ExpArgs::default()
        };
        let mut ran = false;
        load_args.train_or_restore("t", &mut restored, |_| ran = true);
        assert!(!ran, "--load must replace training");
        let x = Matrix::from_fn(2, 16, |r, c| (r * 16 + c) as f64 / 32.0);
        let a = trained.reconstruct(&x).unwrap();
        let b = restored.reconstruct(&x).unwrap();
        assert_eq!(
            a.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // Missing checkpoint: falls back to training.
        let missing = ExpArgs {
            load: Some(dir.join("absent.ckpt").to_string_lossy().into_owned()),
            ..ExpArgs::default()
        };
        let mut ran = false;
        missing.train_or_restore("t", &mut restored, |_| ran = true);
        assert!(ran, "a missing checkpoint must fall back to training");
    }

    #[test]
    fn csv_writer_round_trips() {
        let dir = std::env::temp_dir().join("sqvae_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_csv(
            "unit",
            &["a", "b"],
            &[vec!["1".into(), "x,y".into()], vec!["2".into(), "z".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(prev).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n2,z\n");
    }

    #[test]
    fn ascii_image_dimensions() {
        let art = ascii_image(&[0.0, 1.0, 0.5, 0.25], 2, 1.0);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        assert_eq!(art.chars().next(), Some(' '));
        assert_eq!(lines[0].chars().nth(1), Some('@'));
    }

    #[test]
    fn side_by_side_aligns() {
        let joined = ascii_side_by_side("ab\ncd\n", "xy\nzw\n");
        assert!(joined.contains("ab  |  xy"));
        assert!(joined.contains("cd  |  zw"));
    }
}
