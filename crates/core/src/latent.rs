//! Latent-space heads: the difference between an AE and a VAE.
//!
//! §II-B of the paper: the VAE's inference network outputs Gaussian
//! parameters `(μ, log σ²)`; `z = μ + σ·ε` is sampled with the
//! reparametrization trick and regularized toward `N(0, I)` by the KL term
//! of the ELBO. Vanilla AEs skip the distribution ("the only part that AE
//! does not involve") and optionally pass through a small latent FC.

use rand::Rng;
use sqvae_nn::{loss, Linear, Matrix, Module, NnError, ParamTensor};

/// Gaussian latent head with reparametrized sampling.
#[derive(Debug, Clone)]
pub struct GaussianLatent {
    mu_head: Linear,
    logvar_head: Linear,
    cached: Option<LatentCache>,
    kl_weight: f64,
    kl_scale: f64,
}

/// Clamp range for log σ² — keeps `exp(logvar)` finite at initialization
/// (the standard VAE stabilization; gradients are masked outside the range).
const LOGVAR_CLAMP: f64 = 6.0;

#[derive(Debug, Clone)]
struct LatentCache {
    mu: Matrix,
    /// Clamped log-variance used by sampling and the KL term.
    logvar: Matrix,
    /// 1.0 where the raw head output was inside the clamp range, else 0.0.
    logvar_mask: Matrix,
    eps: Matrix,
    kl: f64,
}

impl GaussianLatent {
    /// Creates μ and log σ² heads mapping `hidden_dim → latent_dim`, with KL
    /// weight `kl_weight` in the ELBO.
    pub fn new(hidden_dim: usize, latent_dim: usize, kl_weight: f64, rng: &mut impl Rng) -> Self {
        GaussianLatent {
            mu_head: Linear::new(hidden_dim, latent_dim, rng),
            logvar_head: Linear::new(hidden_dim, latent_dim, rng),
            cached: None,
            kl_weight,
            kl_scale: 1.0,
        }
    }

    /// Scales the KL weight (for warm-up schedules); `1.0` restores the
    /// configured weight.
    pub fn set_kl_scale(&mut self, scale: f64) {
        self.kl_scale = scale.max(0.0);
    }

    /// The current KL warm-up scale (1.0 unless a schedule is mid-ramp).
    pub fn kl_scale(&self) -> f64 {
        self.kl_scale
    }

    /// Latent width.
    pub fn latent_dim(&self) -> usize {
        self.mu_head.out_features()
    }

    /// Samples `z = μ(h) + σ(h)·ε` for a batch of hidden states.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `hidden` width mismatches the heads.
    pub fn forward_sample(
        &mut self,
        hidden: &Matrix,
        rng: &mut impl Rng,
    ) -> Result<Matrix, NnError> {
        let mu = self.mu_head.forward(hidden)?;
        let raw_logvar = self.logvar_head.forward(hidden)?;
        let logvar = raw_logvar.map(|lv| lv.clamp(-LOGVAR_CLAMP, LOGVAR_CLAMP));
        let logvar_mask = raw_logvar.map(|lv| if lv.abs() < LOGVAR_CLAMP { 1.0 } else { 0.0 });
        let eps = Matrix::from_fn(mu.rows(), mu.cols(), |_, _| {
            // Box-Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        });
        let sigma = logvar.map(|lv| (0.5 * lv).exp());
        let z = mu.add(&sigma.hadamard(&eps)?)?;
        let (kl, _, _) = loss::gaussian_kl(&mu, &logvar)?;
        self.cached = Some(LatentCache {
            mu,
            logvar,
            logvar_mask,
            eps,
            kl,
        });
        Ok(z)
    }

    /// The deterministic latent code `μ(h)` (used at evaluation time).
    ///
    /// Invalidates any cached sample: a `backward` call must always pair
    /// with the *immediately preceding* `forward_sample`, and `mu_head`'s
    /// internal activations were just overwritten by this forward, so a
    /// stale cache would silently mix two different forward passes.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `hidden` width mismatches the heads.
    pub fn forward_mean(&mut self, hidden: &Matrix) -> Result<Matrix, NnError> {
        self.cached = None;
        self.mu_head.forward(hidden)
    }

    /// KL divergence of the most recent [`GaussianLatent::forward_sample`].
    pub fn last_kl(&self) -> Option<f64> {
        self.cached.as_ref().map(|c| c.kl)
    }

    /// The KL weight in the ELBO.
    pub fn kl_weight(&self) -> f64 {
        self.kl_weight
    }

    /// Backward through sampling *and* the KL regularizer: consumes
    /// `dL_recon/dz`, adds `kl_weight · dKL/d(μ, logvar)`, and returns
    /// `dL/d(hidden)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] without a cached sample.
    pub fn backward(&mut self, grad_z: &Matrix) -> Result<Matrix, NnError> {
        let cache = self.cached.as_ref().ok_or(NnError::BackwardBeforeForward)?;
        // z = μ + ε·exp(logvar/2):
        //   dz/dμ = 1
        //   dz/dlogvar = ε·exp(logvar/2)/2
        let sigma = cache.logvar.map(|lv| (0.5 * lv).exp());
        let grad_mu_recon = grad_z.clone();
        let grad_logvar_recon = grad_z.hadamard(&cache.eps)?.hadamard(&sigma)?.scale(0.5);
        let (_, kl_mu, kl_logvar) = loss::gaussian_kl(&cache.mu, &cache.logvar)?;
        let effective_weight = self.kl_weight * self.kl_scale;
        let mut grad_mu = grad_mu_recon;
        grad_mu.add_scaled(&kl_mu, effective_weight)?;
        let mut grad_logvar = grad_logvar_recon;
        grad_logvar.add_scaled(&kl_logvar, effective_weight)?;
        // Clamped entries have zero derivative through the clamp.
        let grad_logvar = grad_logvar.hadamard(&cache.logvar_mask)?;
        let gh_mu = self.mu_head.backward(&grad_mu)?;
        let gh_logvar = self.logvar_head.backward(&grad_logvar)?;
        gh_mu.add(&gh_logvar)
    }

    /// Both heads' parameter tensors (classical group).
    pub fn parameters(&mut self) -> Vec<&mut ParamTensor> {
        let mut v = self.mu_head.parameters();
        v.extend(self.logvar_head.parameters());
        v
    }

    /// Total scalar parameters.
    pub fn parameter_count(&mut self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }
}

/// The latent stage of an autoencoder.
///
/// One `Latent` exists per model, so the size spread between the empty
/// `Identity` and the two-headed `Gaussian` variant is irrelevant; boxing
/// would only add an indirection to the training hot path.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Latent {
    /// No latent transformation (fully quantum AE).
    Identity,
    /// A latent fully connected layer (hybrid/classical AE variants).
    Linear(Linear),
    /// Gaussian heads with reparametrized sampling (VAE variants).
    Gaussian(GaussianLatent),
}

impl Latent {
    /// Whether this latent stage makes the model generative (a VAE).
    pub fn is_variational(&self) -> bool {
        matches!(self, Latent::Gaussian(_))
    }

    /// Parameter tensors of the latent stage (classical group).
    pub fn parameters(&mut self) -> Vec<&mut ParamTensor> {
        match self {
            Latent::Identity => Vec::new(),
            Latent::Linear(l) => l.parameters(),
            Latent::Gaussian(g) => g.parameters(),
        }
    }

    /// Scalar parameter count.
    pub fn parameter_count(&mut self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_shapes_and_kl() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lat = GaussianLatent::new(4, 3, 1.0, &mut rng);
        let h = Matrix::filled(5, 4, 0.2);
        let z = lat.forward_sample(&h, &mut rng).unwrap();
        assert_eq!(z.shape(), (5, 3));
        assert!(lat.last_kl().unwrap() >= 0.0);
        assert_eq!(lat.latent_dim(), 3);
    }

    #[test]
    fn paper_head_parameter_count() {
        // Two 6→6 heads = 84 classical parameters (Table I, F-BQ-VAE).
        let mut rng = StdRng::seed_from_u64(1);
        let mut lat = GaussianLatent::new(6, 6, 1.0, &mut rng);
        assert_eq!(lat.parameter_count(), 84);
    }

    #[test]
    fn sampling_is_stochastic_but_mean_is_not() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lat = GaussianLatent::new(3, 2, 1.0, &mut rng);
        let h = Matrix::filled(1, 3, 0.5);
        let z1 = lat.forward_sample(&h, &mut rng).unwrap();
        let z2 = lat.forward_sample(&h, &mut rng).unwrap();
        assert_ne!(z1, z2);
        let m1 = lat.forward_mean(&h).unwrap();
        let m2 = lat.forward_mean(&h).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lat = GaussianLatent::new(2, 2, 1.0, &mut rng);
        assert!(lat.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn forward_mean_invalidates_the_sample_cache() {
        // A mean (evaluation) forward between forward_sample and backward
        // must not leave the stale sample cache behind: backward would pair
        // the old ε/μ/logvar with mu_head activations from the *mean* pass.
        let mut rng = StdRng::seed_from_u64(6);
        let mut lat = GaussianLatent::new(3, 2, 1.0, &mut rng);
        let h = Matrix::filled(2, 3, 0.4);
        lat.forward_sample(&h, &mut rng).unwrap();
        assert!(lat.last_kl().is_some());
        lat.forward_mean(&h).unwrap();
        assert!(lat.last_kl().is_none());
        assert_eq!(
            lat.backward(&Matrix::zeros(2, 2)),
            Err(NnError::BackwardBeforeForward)
        );
    }

    #[test]
    fn gradient_check_through_reparametrization() {
        // With ε frozen (reuse the cache), d(sum z)/d(head params) must match
        // finite differences of μ + ε·σ.
        let mut rng = StdRng::seed_from_u64(4);
        let mut lat = GaussianLatent::new(3, 2, 0.0, &mut rng); // kl_weight 0 isolates reparam path
        let h = Matrix::from_rows(&[&[0.3, -0.2, 0.7]]).unwrap();
        let _z = lat.forward_sample(&h, &mut rng).unwrap();
        let eps_frozen = lat.cached.as_ref().unwrap().eps.clone();
        let grad_h = lat.backward(&Matrix::filled(1, 2, 1.0)).unwrap();

        let loss_with = |lat: &mut GaussianLatent, h: &Matrix| -> f64 {
            let mu = lat.mu_head.forward(h).unwrap();
            let logvar = lat.logvar_head.forward(h).unwrap();
            let sigma = logvar.map(|lv| (0.5 * lv).exp());
            mu.add(&sigma.hadamard(&eps_frozen).unwrap()).unwrap().sum()
        };
        let base = loss_with(&mut lat.clone(), &h);
        let fd_eps = 1e-6;
        for c in 0..3 {
            let mut hp = h.clone();
            hp.set(0, c, h.get(0, c) + fd_eps);
            let fp = loss_with(&mut lat.clone(), &hp);
            let fd = (fp - base) / fd_eps;
            assert!((grad_h.get(0, c) - fd).abs() < 1e-4, "dh[{c}]");
        }
    }

    #[test]
    fn extreme_head_outputs_are_clamped() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut lat = GaussianLatent::new(2, 2, 1.0, &mut rng);
        // Force an enormous logvar by scaling the head weights.
        for p in lat.logvar_head.parameters() {
            for v in p.value.as_mut_slice() {
                *v = 100.0;
            }
        }
        let h = Matrix::filled(1, 2, 10.0);
        let z = lat.forward_sample(&h, &mut rng).unwrap();
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
        assert!(lat.last_kl().unwrap().is_finite());
        // Gradient through the clamp is masked to zero for the logvar path.
        let g = lat.backward(&Matrix::filled(1, 2, 1.0)).unwrap();
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn latent_enum_properties() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut id = Latent::Identity;
        assert!(!id.is_variational());
        assert_eq!(id.parameter_count(), 0);
        let mut lin = Latent::Linear(Linear::new(6, 6, &mut rng));
        assert_eq!(lin.parameter_count(), 42);
        let g = Latent::Gaussian(GaussianLatent::new(6, 6, 1.0, &mut rng));
        assert!(g.is_variational());
    }
}
