//! # sqvae-core
//!
//! The primary contribution of the DATE 2022 paper *Scalable Variational
//! Quantum Circuits for Autoencoder-based Drug Discovery* (Li & Ghosh),
//! rebuilt in Rust: classical, baseline-quantum, and scalable
//! patched-quantum autoencoders with a shared training and sampling
//! pipeline.
//!
//! ## The model zoo (see [`models`])
//!
//! * **AE / VAE** — classical MLP baselines (64→32→16→latent and mirror).
//! * **F-BQ-AE / F-BQ-VAE** — fully quantum baseline: amplitude-embedding
//!   encoder with ⟨Z⟩ readout, angle-embedding decoder with probability
//!   readout; works on normalized data only.
//! * **H-BQ-AE / H-BQ-VAE** — hybrid baseline: classical FCs after both
//!   quantum halves map measurements back to original scales.
//! * **SQ-AE / SQ-VAE** — the scalable variant: *patched* quantum circuits
//!   enlarge the latent space from `log2(d)` to `p·log2(d/p)` (§III-C).
//!
//! ## Example: train an SQ-AE on synthetic ligands
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use sqvae_core::{models, TrainConfig, Trainer};
//! use sqvae_datasets::pdbbind::{generate, PdbbindConfig};
//!
//! # fn main() -> Result<(), sqvae_nn::NnError> {
//! let data = generate(&PdbbindConfig { n_samples: 12, seed: 1 });
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = models::sq_ae(1024, 8, 1, &mut rng); // p=8 → LSD 56
//! let mut trainer = Trainer::new(TrainConfig {
//!     epochs: 1,
//!     batch_size: 4,
//!     ..TrainConfig::default()
//! });
//! let history = trainer.train(&mut model, &data, None)?;
//! assert_eq!(history.records.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod autoencoder;
mod hybrid;
mod latent;
mod patched;
mod quantum_layer;
mod trainer;

pub mod checkpoint;
pub mod faults;
pub mod models;
pub mod sampling;

pub use autoencoder::{Autoencoder, ForwardOutput, ParameterCount};
pub use hybrid::{HybridStack, ParamGroup};
pub use latent::{GaussianLatent, Latent};
pub use patched::{patched_latent_dim, PatchedQuantumLayer};
pub use quantum_layer::{QuantumInput, QuantumLayer, QuantumOutput};
pub use trainer::{
    AnomalyEvent, AnomalyKind, EpochRecord, History, NanGuard, TrainConfig, Trainer,
};

// Re-exported so downstream users can set `TrainConfig::threads` /
// `TrainConfig::backend` or build an execution policy without depending on
// `sqvae-nn` directly.
pub use sqvae_nn::{BackendKind, ExecPolicy, Threads};
