//! Mini-batch training with heterogeneous learning rates.
//!
//! Implements §IV-B of the paper: Adam (β₁ = 0.9, β₂ = 0.999), mini-batches
//! of 32, 20 epochs — with one Adam instance per parameter group so quantum
//! angles and classical weights can use the Fig. 7 optimum (0.03 / 0.01) or
//! any other combination.

use crate::autoencoder::Autoencoder;
use crate::checkpoint::ParamSnapshot;
use crate::faults::{self, FaultPoint};
use crate::hybrid::ParamGroup;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_datasets::Dataset;
use sqvae_nn::{loss, Adam, BackendKind, ExecPolicy, Matrix, NnError, Optimizer, Threads};

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (paper: 32).
    pub batch_size: usize,
    /// Learning rate for quantum parameters (paper's Fig. 7 optimum: 0.03).
    pub quantum_lr: f64,
    /// Learning rate for classical parameters (paper's optimum: 0.01).
    pub classical_lr: f64,
    /// RNG seed for shuffling and reparametrization noise.
    pub seed: u64,
    /// Whether to reshuffle the training set each epoch.
    pub shuffle: bool,
    /// Optional global gradient-norm clip applied across both parameter
    /// groups before each optimizer step (guards against the VAE's early
    /// logvar blow-ups on high-dimensional data).
    pub max_grad_norm: Option<f64>,
    /// KL warm-up: the KL weight ramps linearly from 0 to the latent head's
    /// configured weight over this many epochs (0 = no warm-up). A standard
    /// remedy for early posterior collapse in VAEs.
    pub kl_warmup_epochs: usize,
    /// Early stopping: end training when the test MSE has not improved for
    /// this many consecutive epochs (requires a test set; `None` disables).
    pub early_stop_patience: Option<usize>,
    /// Batch-row parallelism for the quantum layers: rows of each mini-batch
    /// are sharded across OS threads during the statevector forward runs and
    /// adjoint backward passes. Results are bit-identical to sequential
    /// execution for any setting. Defaults to [`Threads::from_env`]
    /// (`SQVAE_THREADS`: `auto`, `off`/`0`, or a thread count).
    pub threads: Threads,
    /// Simulator backend for the quantum layers: `dense` is the reference
    /// statevector kernels, `fused` the gate-fusing variant (same results to
    /// ~1e-15, measurably faster). Defaults to [`BackendKind::from_env`]
    /// (`SQVAE_BACKEND`: `dense` or `fused`).
    pub backend: BackendKind,
    /// Guard rail against divergence: when a batch produces a non-finite
    /// loss or non-finite gradients, roll the parameters back to the last
    /// good snapshot, scale the learning rates down, optionally re-derive
    /// the RNG, record the event in [`History::anomalies`], and keep
    /// training — instead of silently poisoning every later weight. `None`
    /// restores the old fail-open behavior. Defaults to
    /// [`NanGuard::default`].
    pub nan_guard: Option<NanGuard>,
}

/// Policy for the trainer's non-finite guard rail (see
/// [`TrainConfig::nan_guard`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NanGuard {
    /// Give up — with a typed [`NnError::NonFinite`] — after this many
    /// rollbacks in one run; the model is left on its last good snapshot.
    pub max_recoveries: usize,
    /// Multiply both learning rates by this factor on every rollback
    /// (0.5 = halve the step; a blown-up step is the usual culprit).
    pub lr_decay: f64,
    /// Re-derive the shuffle/reparametrization RNG after a rollback, so the
    /// retried trajectory does not replay the exact batch noise that blew
    /// up (deterministic: the new seed is a hash of the old seed and the
    /// rollback count).
    pub reseed: bool,
}

impl Default for NanGuard {
    fn default() -> Self {
        NanGuard {
            max_recoveries: 4,
            lr_decay: 0.5,
            reseed: true,
        }
    }
}

/// What the non-finite guard detected on one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// The batch loss (MSE or KL term) was NaN or infinite.
    NonFiniteLoss,
    /// The loss was finite but backpropagation produced non-finite
    /// gradients.
    NonFiniteGradient,
}

/// One recovered divergence event (see [`History::anomalies`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyEvent {
    /// Epoch (0-based) in which the event fired.
    pub epoch: usize,
    /// Batch index within that epoch.
    pub batch: usize,
    /// What was detected.
    pub kind: AnomalyKind,
    /// Cumulative learning-rate scale in force *after* this rollback
    /// (1.0 → untouched; 0.25 → two halvings at the default decay).
    pub lr_scale: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            quantum_lr: 0.03,
            classical_lr: 0.01,
            seed: 42,
            shuffle: true,
            max_grad_norm: None,
            kl_warmup_epochs: 0,
            early_stop_patience: None,
            threads: Threads::from_env(),
            backend: BackendKind::from_env(),
            nan_guard: Some(NanGuard::default()),
        }
    }
}

impl TrainConfig {
    /// The paper's depth/LR-tuning configuration: a single homogeneous
    /// learning rate of 0.001 for 20 epochs (§IV-B).
    pub fn homogeneous(lr: f64) -> Self {
        TrainConfig {
            quantum_lr: lr,
            classical_lr: lr,
            ..TrainConfig::default()
        }
    }

    /// The unified execution policy the trainer installs on the model
    /// before each run — the [`TrainConfig::threads`] and
    /// [`TrainConfig::backend`] knobs bundled into one
    /// [`sqvae_nn::ExecPolicy`] value.
    pub fn exec_policy(&self) -> ExecPolicy {
        ExecPolicy::new(self.threads, self.backend)
    }
}

/// Loss record for one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean train reconstruction MSE.
    pub train_mse: f64,
    /// Mean train KL divergence (0 for AEs).
    pub train_kl: f64,
    /// Mean test reconstruction MSE, when a test set was supplied.
    pub test_mse: Option<f64>,
}

/// Full training history of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct History {
    /// Model name.
    pub model: String,
    /// Per-epoch records, in order.
    pub records: Vec<EpochRecord>,
    /// The epoch whose weights the model carries after training, when
    /// best-weight tracking was active (early stopping with a test set):
    /// the epoch with the lowest test MSE. `None` when tracking was off —
    /// the model simply holds the last epoch's weights.
    pub best_epoch: Option<usize>,
    /// Divergence events the non-finite guard rail recovered from, in
    /// order. Empty on a healthy run (or when the guard was disabled).
    pub anomalies: Vec<AnomalyEvent>,
}

impl History {
    /// Train MSE of the last epoch.
    pub fn final_train_mse(&self) -> Option<f64> {
        self.records.last().map(|r| r.train_mse)
    }

    /// Test MSE of the last epoch.
    pub fn final_test_mse(&self) -> Option<f64> {
        self.records.last().and_then(|r| r.test_mse)
    }

    /// Train-MSE series (one point per epoch) for figure regeneration.
    pub fn train_mse_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.train_mse).collect()
    }

    /// The record at a given epoch, if trained that far.
    pub fn at_epoch(&self, epoch: usize) -> Option<&EpochRecord> {
        self.records.iter().find(|r| r.epoch == epoch)
    }

    /// Serializes the history as CSV (`epoch,train_mse,train_kl,test_mse`),
    /// with an empty cell for missing test losses — ready for external
    /// plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,train_mse,train_kl,test_mse\n");
        for r in &self.records {
            let test = r.test_mse.map_or(String::new(), |t| format!("{t}"));
            out.push_str(&format!(
                "{},{},{},{}\n",
                r.epoch, r.train_mse, r.train_kl, test
            ));
        }
        out
    }
}

/// Trains autoencoders against reconstruction MSE (+ KL for VAEs).
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    quantum_opt: Adam,
    classical_opt: Adam,
}

impl Trainer {
    /// Creates a trainer with fresh optimizer state.
    pub fn new(config: TrainConfig) -> Self {
        let quantum_opt = Adam::new(config.quantum_lr);
        let classical_opt = Adam::new(config.classical_lr);
        Trainer {
            config,
            quantum_opt,
            classical_opt,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Converts a batch of row slices into a matrix.
    fn batch_matrix(rows: &[&[f64]]) -> Result<Matrix, NnError> {
        Matrix::from_rows(rows)
    }

    /// Default evaluation batch size used by [`Trainer::evaluate`].
    pub const DEFAULT_EVAL_BATCH: usize = 64;

    /// Mean reconstruction MSE of `model` over `data` (evaluation mode: VAEs
    /// reconstruct through the posterior mean), in batches of
    /// [`Self::DEFAULT_EVAL_BATCH`].
    ///
    /// # Errors
    ///
    /// Returns shape errors from the model.
    pub fn evaluate(model: &mut Autoencoder, data: &Dataset) -> Result<f64, NnError> {
        Self::evaluate_batched(model, data, Self::DEFAULT_EVAL_BATCH)
    }

    /// [`Trainer::evaluate`] with an explicit batch size, bounding peak
    /// evaluation memory. An empty dataset evaluates to 0.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the model.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0`.
    pub fn evaluate_batched(
        model: &mut Autoencoder,
        data: &Dataset,
        batch_size: usize,
    ) -> Result<f64, NnError> {
        assert!(batch_size > 0, "evaluation batch size must be positive");
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for batch in data.batches(batch_size) {
            let x = Self::batch_matrix(&batch)?;
            let recon = model.reconstruct(&x)?;
            let (mse, _) = loss::mse(&recon, &x)?;
            total += mse * batch.len() as f64;
            count += batch.len();
        }
        Ok(total / count.max(1) as f64)
    }

    /// Runs the full training loop, returning the per-epoch history.
    ///
    /// With early stopping active (a patience *and* a test set), the model
    /// is left holding the weights of the **best-test-MSE epoch**, not the
    /// last epoch trained — the stop fires only after `patience` epochs of
    /// no improvement, so the final weights would otherwise always be
    /// stale. [`History::best_epoch`] records which epoch that was.
    ///
    /// On every exit the KL warm-up scale is reset to 1.0, so a model whose
    /// run ended mid-ramp (few epochs, or an early stop) does not keep
    /// training with a silently down-weighted KL term on the next run.
    ///
    /// # Errors
    ///
    /// Returns shape/optimizer errors from the underlying stages.
    pub fn train(
        &mut self,
        model: &mut Autoencoder,
        train: &Dataset,
        test: Option<&Dataset>,
    ) -> Result<History, NnError> {
        let mut history = History {
            model: model.name.clone(),
            records: Vec::with_capacity(self.config.epochs),
            best_epoch: None,
            anomalies: Vec::new(),
        };
        model.set_exec_policy(self.config.exec_policy());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // (epoch, test MSE, weights) of the best epoch seen so far.
        let mut best: Option<(usize, f64, ParamSnapshot)> = None;
        let mut stale_epochs = 0usize;
        // Non-finite guard state: the last known-good weights, how many
        // rollbacks have fired, and the cumulative learning-rate scale.
        let guard = self.config.nan_guard;
        let mut last_good = guard.map(|_| ParamSnapshot::capture(model));
        let mut recoveries = 0usize;
        let mut lr_scale = 1.0f64;
        for epoch in 0..self.config.epochs {
            if self.config.kl_warmup_epochs > 0 {
                let scale = ((epoch + 1) as f64 / self.config.kl_warmup_epochs as f64).min(1.0);
                model.set_kl_scale(scale);
            }
            let data = if self.config.shuffle {
                train.shuffled(self.config.seed.wrapping_add(epoch as u64))
            } else {
                train.clone()
            };
            let mut epoch_mse = 0.0;
            let mut epoch_kl = 0.0;
            let mut seen = 0usize;
            for (batch_idx, batch) in data.batches(self.config.batch_size).into_iter().enumerate() {
                let x = Self::batch_matrix(&batch)?;
                model.zero_grad();
                let out = model.forward_train(&x, &mut rng)?;
                let (mut mse, grad) = loss::mse(&out.reconstruction, &x)?;
                if faults::trigger(FaultPoint::NanLoss).is_some() {
                    mse = f64::NAN; // injected divergence (chaos testing)
                }
                // Guard rail: divergence must never reach the optimizer. A
                // non-finite loss skips backward outright; a finite loss
                // still gets its gradients screened after backward.
                if let Some(g) = guard {
                    let kind = if !mse.is_finite() || !out.kl.is_finite() {
                        Some(AnomalyKind::NonFiniteLoss)
                    } else {
                        model.backward(&grad)?;
                        if has_non_finite_grads(model) {
                            Some(AnomalyKind::NonFiniteGradient)
                        } else {
                            None
                        }
                    };
                    if let Some(kind) = kind {
                        recoveries += 1;
                        last_good
                            .as_ref()
                            .expect("guard active implies a snapshot")
                            .restore(model)
                            .expect("snapshot was captured from this very model");
                        model.zero_grad();
                        if recoveries > g.max_recoveries {
                            // Budget exhausted: surface a typed error, with
                            // the model left on its last good weights.
                            return Err(NnError::NonFinite {
                                epoch,
                                recoveries: recoveries - 1,
                            });
                        }
                        lr_scale *= g.lr_decay;
                        self.quantum_opt
                            .set_learning_rate(self.config.quantum_lr * lr_scale);
                        self.classical_opt
                            .set_learning_rate(self.config.classical_lr * lr_scale);
                        if g.reseed {
                            // Deterministic re-derivation: don't replay the
                            // exact reparametrization noise that blew up.
                            rng = StdRng::seed_from_u64(
                                self.config.seed
                                    ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(recoveries as u64),
                            );
                        }
                        history.anomalies.push(AnomalyEvent {
                            epoch,
                            batch: batch_idx,
                            kind,
                            lr_scale,
                        });
                        continue; // this batch contributes nothing
                    }
                } else {
                    model.backward(&grad)?;
                }
                if let Some(max_norm) = self.config.max_grad_norm {
                    clip_gradients(model, max_norm)?;
                }
                {
                    let mut qp = model.parameters_of(ParamGroup::Quantum);
                    self.quantum_opt.step(&mut qp)?;
                }
                {
                    let mut cp = model.parameters_of(ParamGroup::Classical);
                    self.classical_opt.step(&mut cp)?;
                }
                epoch_mse += mse * batch.len() as f64;
                epoch_kl += out.kl * batch.len() as f64;
                seen += batch.len();
                if last_good.is_some() {
                    last_good = Some(ParamSnapshot::capture(model));
                }
            }
            let denom = seen.max(1) as f64;
            let test_mse = match test {
                Some(t) => Some(Self::evaluate_batched(model, t, self.config.batch_size)?),
                None => None,
            };
            history.records.push(EpochRecord {
                epoch,
                train_mse: epoch_mse / denom,
                train_kl: epoch_kl / denom,
                test_mse,
            });
            if let (Some(patience), Some(t)) = (self.config.early_stop_patience, test_mse) {
                let improved = best.as_ref().map_or(true, |(_, b, _)| t < *b - 1e-12);
                if improved {
                    best = Some((epoch, t, ParamSnapshot::capture(model)));
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    if stale_epochs >= patience {
                        break;
                    }
                }
            }
        }
        if let Some((epoch, _, snap)) = best {
            history.best_epoch = Some(epoch);
            if history.records.last().map(|r| r.epoch) != Some(epoch) {
                snap.restore(model)
                    .expect("snapshot was captured from this very model");
            }
        }
        if self.config.kl_warmup_epochs > 0 {
            model.set_kl_scale(1.0);
        }
        Ok(history)
    }
}

/// Whether any gradient entry in either parameter group is NaN/±∞.
fn has_non_finite_grads(model: &mut Autoencoder) -> bool {
    for group in [ParamGroup::Quantum, ParamGroup::Classical] {
        for p in model.parameters_of(group) {
            if p.grad.as_slice().iter().any(|g| !g.is_finite()) {
                return true;
            }
        }
    }
    false
}

/// Rescales every gradient so the global L2 norm across both parameter
/// groups is at most `max_norm`.
fn clip_gradients(model: &mut Autoencoder, max_norm: f64) -> Result<(), NnError> {
    let mut sq = 0.0;
    for group in [ParamGroup::Quantum, ParamGroup::Classical] {
        for p in model.parameters_of(group) {
            sq += p.grad.as_slice().iter().map(|g| g * g).sum::<f64>();
        }
    }
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for group in [ParamGroup::Quantum, ParamGroup::Classical] {
            for p in model.parameters_of(group) {
                for g in p.grad.as_mut_slice() {
                    *g *= scale;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize, width: usize, seed: u64) -> Dataset {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_samples(
            (0..n)
                .map(|_| (0..width).map(|_| rng.gen_range(0.0..2.0)).collect())
                .collect(),
        )
        .expect("non-empty")
    }

    fn quick_config(epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 8,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn classical_ae_loss_decreases() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = models::classical_ae(16, 4, &mut rng);
        let data = toy_dataset(64, 16, 2);
        let mut trainer = Trainer::new(quick_config(12));
        let hist = trainer.train(&mut model, &data, None).unwrap();
        let first = hist.records.first().unwrap().train_mse;
        let last = hist.final_train_mse().unwrap();
        assert!(last < first, "loss should decrease: {first} -> {last}");
        assert_eq!(hist.records.len(), 12);
    }

    #[test]
    fn hybrid_quantum_ae_trains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = models::h_bq_ae(16, 1, &mut rng);
        let data = toy_dataset(24, 16, 4);
        let mut trainer = Trainer::new(quick_config(6));
        let hist = trainer.train(&mut model, &data, None).unwrap();
        let first = hist.records.first().unwrap().train_mse;
        let last = hist.final_train_mse().unwrap();
        assert!(
            last < first,
            "hybrid loss should decrease: {first} -> {last}"
        );
    }

    #[test]
    fn sq_vae_trains_and_reports_kl() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = models::sq_vae(16, 2, 1, &mut rng);
        let data = toy_dataset(16, 16, 6);
        let mut trainer = Trainer::new(quick_config(3));
        let hist = trainer.train(&mut model, &data, None).unwrap();
        assert!(hist.records.iter().all(|r| r.train_kl >= 0.0));
        assert_eq!(hist.records.len(), 3);
    }

    #[test]
    fn test_split_is_evaluated() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = models::classical_ae(8, 2, &mut rng);
        let data = toy_dataset(32, 8, 8);
        let (train, test) = data.shuffle_split(0.75, 0);
        let mut trainer = Trainer::new(quick_config(2));
        let hist = trainer.train(&mut model, &train, Some(&test)).unwrap();
        assert!(hist.records.iter().all(|r| r.test_mse.is_some()));
        assert!(hist.final_test_mse().unwrap().is_finite());
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut model = models::classical_ae(8, 2, &mut rng);
            let data = toy_dataset(16, 8, 12);
            Trainer::new(quick_config(3))
                .train(&mut model, &data, None)
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn history_accessors() {
        let mut hist = History {
            model: "m".into(),
            records: vec![],
            best_epoch: None,
            anomalies: vec![],
        };
        assert!(hist.final_train_mse().is_none());
        hist.records.push(EpochRecord {
            epoch: 0,
            train_mse: 1.0,
            train_kl: 0.0,
            test_mse: None,
        });
        assert_eq!(hist.train_mse_series(), vec![1.0]);
        assert!(hist.at_epoch(0).is_some());
        assert!(hist.at_epoch(5).is_none());
    }

    #[test]
    fn gradient_clipping_tames_exploding_first_steps() {
        // Classical VAE on wide inputs: without clipping the first epochs
        // can spike (Fig. 8(b)); with clipping the first-epoch loss stays
        // near the data scale.
        let data = toy_dataset(32, 64, 20);
        let run = |clip: Option<f64>| {
            let mut rng = StdRng::seed_from_u64(21);
            let mut model = models::classical_vae(64, 4, &mut rng);
            let mut t = Trainer::new(TrainConfig {
                epochs: 3,
                batch_size: 8,
                max_grad_norm: clip,
                ..TrainConfig::default()
            });
            t.train(&mut model, &data, None).unwrap()
        };
        let clipped = run(Some(1.0));
        let free = run(None);
        assert!(clipped.final_train_mse().unwrap().is_finite());
        assert!(free.final_train_mse().unwrap().is_finite());
        // Clipping must not prevent learning…
        assert!(clipped.final_train_mse().unwrap() <= clipped.records[0].train_mse + 1e-9);
        // …and every clipped epoch stays on the data scale (inputs ∈ [0, 2),
        // so per-element MSE can never legitimately exceed ~4 by much).
        for r in &clipped.records {
            assert!(
                r.train_mse < 10.0,
                "clipped epoch spiked to {}",
                r.train_mse
            );
        }
    }

    #[test]
    fn early_stopping_halts_on_stale_test_loss() {
        // Zero learning rates freeze the model, so the test loss can never
        // improve: with patience 2 the run must end after 3 epochs.
        let data = toy_dataset(8, 4, 40);
        let (train, test) = data.shuffle_split(0.5, 0);
        let mut rng = StdRng::seed_from_u64(41);
        let mut model = models::classical_ae(4, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 4,
            quantum_lr: 0.0,
            classical_lr: 0.0,
            early_stop_patience: Some(2),
            ..TrainConfig::default()
        });
        let hist = trainer.train(&mut model, &train, Some(&test)).unwrap();
        assert_eq!(
            hist.records.len(),
            3,
            "first epoch sets the best loss; two stale epochs then stop"
        );
        // Without a test set the option is inert.
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 4,
            early_stop_patience: Some(1),
            ..TrainConfig::default()
        });
        let hist = trainer.train(&mut model, &train, None).unwrap();
        assert_eq!(hist.records.len(), 3);
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        // shuffle_split(1.0) is the only route to an empty dataset: the
        // train side takes every sample.
        let (train, test) = toy_dataset(6, 4, 50).shuffle_split(1.0, 0);
        assert_eq!(train.len(), 6);
        assert!(test.is_empty());
        let mut rng = StdRng::seed_from_u64(51);
        let mut model = models::classical_ae(4, 2, &mut rng);
        assert_eq!(Trainer::evaluate(&mut model, &test).unwrap(), 0.0);
        assert_eq!(
            Trainer::evaluate_batched(&mut model, &test, 1).unwrap(),
            0.0
        );
    }

    #[test]
    fn evaluate_batch_larger_than_dataset() {
        let data = toy_dataset(3, 4, 52);
        let mut rng = StdRng::seed_from_u64(53);
        let mut model = models::classical_ae(4, 2, &mut rng);
        // One oversized batch degenerates to a single full-dataset batch.
        let oversized = Trainer::evaluate_batched(&mut model, &data, 64).unwrap();
        let exact = Trainer::evaluate_batched(&mut model, &data, 3).unwrap();
        assert!(oversized.is_finite());
        assert_eq!(oversized, exact);
        // The default entry point also uses one batch here.
        assert_eq!(Trainer::evaluate(&mut model, &data).unwrap(), oversized);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn evaluate_rejects_zero_batch() {
        let data = toy_dataset(2, 4, 54);
        let mut rng = StdRng::seed_from_u64(55);
        let mut model = models::classical_ae(4, 2, &mut rng);
        let _ = Trainer::evaluate_batched(&mut model, &data, 0);
    }

    #[test]
    fn early_stop_fires_exactly_when_stale_epochs_reach_patience() {
        // Zero learning rates freeze the model, so every epoch after the
        // first is stale: the run must stop after exactly patience + 1
        // epochs — a regression pin on the `stale_epochs == patience`
        // boundary (neither one epoch early nor one late).
        let data = toy_dataset(8, 4, 42);
        let (train, test) = data.shuffle_split(0.5, 0);
        for patience in 1..=3 {
            let mut rng = StdRng::seed_from_u64(43);
            let mut model = models::classical_ae(4, 2, &mut rng);
            let mut trainer = Trainer::new(TrainConfig {
                epochs: 40,
                batch_size: 4,
                quantum_lr: 0.0,
                classical_lr: 0.0,
                early_stop_patience: Some(patience),
                ..TrainConfig::default()
            });
            let hist = trainer.train(&mut model, &train, Some(&test)).unwrap();
            assert_eq!(hist.records.len(), patience + 1, "patience {patience}");
        }
    }

    #[test]
    fn history_csv_serialization() {
        let hist = History {
            model: "m".into(),
            records: vec![
                EpochRecord {
                    epoch: 0,
                    train_mse: 1.5,
                    train_kl: 0.25,
                    test_mse: Some(2.0),
                },
                EpochRecord {
                    epoch: 1,
                    train_mse: 1.0,
                    train_kl: 0.1,
                    test_mse: None,
                },
            ],
            best_epoch: None,
            anomalies: vec![],
        };
        let csv = hist.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "epoch,train_mse,train_kl,test_mse");
        assert_eq!(lines[1], "0,1.5,0.25,2");
        assert_eq!(lines[2], "1,1,0.1,");
    }

    #[test]
    fn kl_warmup_runs_and_converges() {
        let data = toy_dataset(24, 8, 30);
        let mut rng = StdRng::seed_from_u64(31);
        let mut model = models::classical_vae(8, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 8,
            kl_warmup_epochs: 3,
            ..TrainConfig::default()
        });
        let hist = trainer.train(&mut model, &data, None).unwrap();
        assert!(hist.final_train_mse().unwrap().is_finite());
        // With the weight ramping in, the KL term is reported every epoch.
        assert!(hist.records.iter().all(|r| r.train_kl >= 0.0));
    }

    #[test]
    fn early_stop_leaves_the_model_at_its_best_epoch() {
        // An aggressive learning rate makes the test loss oscillate, so the
        // stop fires with the live weights *worse* than the best epoch's.
        // After train() returns, evaluating the model on the test set must
        // reproduce the best recorded test MSE exactly — the weights were
        // restored bit-for-bit — and best_epoch must name that epoch.
        let data = toy_dataset(32, 8, 60);
        let (train, test) = data.shuffle_split(0.75, 0);
        let mut rng = StdRng::seed_from_u64(61);
        let mut model = models::classical_ae(8, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 8,
            classical_lr: 0.5,
            early_stop_patience: Some(2),
            ..TrainConfig::default()
        });
        let hist = trainer.train(&mut model, &train, Some(&test)).unwrap();
        let best_epoch = hist.best_epoch.expect("tracking was active");
        let best_mse = hist.at_epoch(best_epoch).unwrap().test_mse.unwrap();
        // best_epoch is the argmin of the recorded test losses.
        for r in &hist.records {
            assert!(best_mse <= r.test_mse.unwrap() + 1e-12);
        }
        let now = Trainer::evaluate_batched(&mut model, &test, 8).unwrap();
        assert_eq!(
            now.to_bits(),
            best_mse.to_bits(),
            "model must carry the best epoch's weights, not the last's"
        );
    }

    #[test]
    fn best_epoch_is_none_without_early_stopping() {
        let data = toy_dataset(8, 4, 62);
        let mut rng = StdRng::seed_from_u64(63);
        let mut model = models::classical_ae(4, 2, &mut rng);
        let hist = Trainer::new(quick_config(2))
            .train(&mut model, &data, None)
            .unwrap();
        assert_eq!(hist.best_epoch, None);
    }

    #[test]
    fn kl_scale_is_reset_when_the_run_ends_mid_warmup() {
        // Fewer epochs than warm-up epochs: the last epoch sets the scale
        // to epochs/warmup < 1. Without the exit reset, the model would
        // carry that down-weighted KL into any later training run.
        let data = toy_dataset(16, 8, 64);
        let mut rng = StdRng::seed_from_u64(65);
        let mut model = models::classical_vae(8, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 8,
            kl_warmup_epochs: 10,
            ..TrainConfig::default()
        });
        trainer.train(&mut model, &data, None).unwrap();
        assert_eq!(model.kl_scale(), 1.0);

        // Early stop mid-ramp leaks the same way: frozen learning rates
        // make epoch 1 stale, stopping at scale 2/10 before the fix.
        let (train, test) = data.shuffle_split(0.5, 0);
        let mut model = models::classical_vae(8, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 8,
            quantum_lr: 0.0,
            classical_lr: 0.0,
            kl_warmup_epochs: 10,
            early_stop_patience: Some(1),
            ..TrainConfig::default()
        });
        let hist = trainer.train(&mut model, &train, Some(&test)).unwrap();
        assert!(hist.records.len() < 20, "the stop must have fired");
        assert_eq!(model.kl_scale(), 1.0);
    }

    /// A toy dataset with one sample carrying a 1e200 feature: the MSE of
    /// any batch containing it overflows to +∞, tripping the guard — the
    /// deterministic stand-in for a mid-run divergence.
    fn poisoned_dataset(n: usize, width: usize, seed: u64) -> Dataset {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..width).map(|_| rng.gen_range(0.0..2.0)).collect())
            .collect();
        samples[0][0] = 1e200;
        Dataset::from_samples(samples).expect("non-empty")
    }

    #[test]
    fn nan_guard_rolls_back_and_keeps_training() {
        // One poisoned batch per epoch: with the guard on, the run must
        // complete, record the anomalies, and leave every parameter finite.
        let data = poisoned_dataset(32, 16, 70);
        let mut rng = StdRng::seed_from_u64(71);
        let mut model = models::classical_vae(16, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 8,
            nan_guard: Some(NanGuard {
                max_recoveries: 64,
                lr_decay: 0.5,
                reseed: true,
            }),
            ..TrainConfig::default()
        });
        let hist = trainer.train(&mut model, &data, None).unwrap();
        assert!(
            !hist.anomalies.is_empty(),
            "the poisoned batch must trip the guard"
        );
        // Rollback restores finite weights and later epochs stay sane.
        for group in [ParamGroup::Quantum, ParamGroup::Classical] {
            for p in model.parameters_of(group) {
                assert!(p.value.as_slice().iter().all(|v| v.is_finite()));
            }
        }
        assert!(hist.final_train_mse().unwrap().is_finite());
        // Events carry a decaying lr scale and ordered positions.
        for w in hist.anomalies.windows(2) {
            assert!(w[1].lr_scale < w[0].lr_scale);
            assert!((w[0].epoch, w[0].batch) < (w[1].epoch, w[1].batch));
        }
    }

    #[test]
    fn nan_guard_budget_exhaustion_is_a_typed_error() {
        // The poisoned sample comes back every epoch; with a budget of 2
        // rollbacks, the third epoch's event must give up with a typed
        // error.
        let data = poisoned_dataset(32, 16, 72);
        let mut rng = StdRng::seed_from_u64(73);
        let mut model = models::classical_vae(16, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 8,
            batch_size: 8,
            nan_guard: Some(NanGuard {
                max_recoveries: 2,
                lr_decay: 0.5,
                reseed: false,
            }),
            ..TrainConfig::default()
        });
        let err = trainer.train(&mut model, &data, None).unwrap_err();
        assert!(
            matches!(err, NnError::NonFinite { recoveries: 2, .. }),
            "got {err:?}"
        );
        // Even on give-up the model holds finite (rolled-back) weights.
        for group in [ParamGroup::Quantum, ParamGroup::Classical] {
            for p in model.parameters_of(group) {
                assert!(p.value.as_slice().iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn nan_guard_off_preserves_the_old_fail_open_behavior() {
        let data = poisoned_dataset(16, 16, 74);
        let mut rng = StdRng::seed_from_u64(75);
        let mut model = models::classical_vae(16, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 8,
            nan_guard: None,
            ..TrainConfig::default()
        });
        let hist = trainer.train(&mut model, &data, None).unwrap();
        assert!(hist.anomalies.is_empty());
        assert!(
            !hist.final_train_mse().unwrap().is_finite(),
            "without the guard the divergence must poison the loss (the \
             behavior this guard exists to fix)"
        );
    }

    #[test]
    fn nan_guard_is_inert_on_healthy_runs() {
        // Same run as classical_ae_loss_decreases, guard on vs. off: the
        // histories' records must be identical (snapshot upkeep must not
        // perturb training), with zero anomalies.
        let run = |guard: Option<NanGuard>| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut model = models::classical_ae(16, 4, &mut rng);
            let data = toy_dataset(64, 16, 2);
            let mut trainer = Trainer::new(TrainConfig {
                nan_guard: guard,
                ..quick_config(4)
            });
            trainer.train(&mut model, &data, None).unwrap()
        };
        let on = run(Some(NanGuard::default()));
        let off = run(None);
        assert!(on.anomalies.is_empty());
        assert_eq!(on.records, off.records);
    }

    #[test]
    fn homogeneous_config() {
        let c = TrainConfig::homogeneous(0.001);
        assert_eq!(c.quantum_lr, 0.001);
        assert_eq!(c.classical_lr, 0.001);
        assert_eq!(c.epochs, 20);
        assert_eq!(c.batch_size, 32);
    }
}
