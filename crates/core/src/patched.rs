//! Patched quantum circuits — the paper's central scaling device (§III-C).
//!
//! "We partition the entire feature vector into multiple equal-sized
//! sub-vectors, and each sub-vector is fed into a quantum sub-circuit."
//! With `p` patches over a 1024-feature input, each sub-circuit
//! amplitude-embeds `1024/p` features into `log2(1024/p)` qubits and
//! measures per-wire `⟨Z⟩`, so the latent space dimension grows to
//! `LSD = p · log2(1024/p)` — 18, 32, 56, 96 for p = 2, 4, 8, 16 — instead
//! of the baseline's 10.

use crate::quantum_layer::{QuantumInput, QuantumLayer, QuantumOutput};
use rand::Rng;
use sqvae_nn::{parallel, BackendKind, ExecPolicy, Matrix, Module, NnError, ParamTensor, Threads};
use sqvae_quantum::CompiledTape;

/// Latent space dimension of a patched encoder over `input_dim` features
/// with `p` patches: `p · log2(input_dim / p)`.
///
/// # Panics
///
/// Panics unless `input_dim` and `p` are powers of two with `p < input_dim`.
///
/// # Examples
///
/// ```
/// use sqvae_core::patched_latent_dim;
/// // The paper's §IV-D: LSD 18/32/56/96 for 2/4/8/16 patches on 1024.
/// assert_eq!(patched_latent_dim(1024, 2), 18);
/// assert_eq!(patched_latent_dim(1024, 4), 32);
/// assert_eq!(patched_latent_dim(1024, 8), 56);
/// assert_eq!(patched_latent_dim(1024, 16), 96);
/// ```
pub fn patched_latent_dim(input_dim: usize, p: usize) -> usize {
    assert!(
        input_dim.is_power_of_two() && p.is_power_of_two() && p < input_dim,
        "input_dim and patch count must be powers of two with p < input_dim"
    );
    let per_patch = input_dim / p;
    p * (per_patch.trailing_zeros() as usize)
}

/// A bank of identical quantum sub-circuits, each handling one slice of the
/// feature vector; outputs are concatenated.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sqvae_core::{PatchedQuantumLayer, QuantumInput, QuantumOutput};
/// use sqvae_nn::{Matrix, Module};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// // 2 patches × (16 features → 4 qubits → 4 expectations) = 8-dim output.
/// let mut layer = PatchedQuantumLayer::amplitude_encoder(32, 2, 1, &mut rng);
/// let y = layer.forward(&Matrix::filled(3, 32, 0.5)).unwrap();
/// assert_eq!(y.shape(), (3, 8));
/// ```
#[derive(Debug, Clone)]
pub struct PatchedQuantumLayer {
    patches: Vec<QuantumLayer>,
    in_per_patch: usize,
    out_per_patch: usize,
    threads: Threads,
    cached_slices: Option<Vec<Matrix>>,
}

impl PatchedQuantumLayer {
    /// An encoder bank: each patch amplitude-embeds `input_dim / p` features
    /// and measures `⟨Z⟩` per wire.
    ///
    /// # Panics
    ///
    /// Panics unless `input_dim` and `p` are powers of two with
    /// `p < input_dim` (construction-time configuration).
    pub fn amplitude_encoder(
        input_dim: usize,
        p: usize,
        n_layers: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let per_patch = input_dim / p;
        let n_qubits = patched_latent_dim(input_dim, p) / p;
        let patches = (0..p)
            .map(|_| {
                QuantumLayer::new(
                    n_qubits,
                    n_layers,
                    QuantumInput::Amplitude {
                        in_features: per_patch,
                    },
                    QuantumOutput::ExpectationZ,
                    rng,
                )
            })
            .collect();
        PatchedQuantumLayer {
            patches,
            in_per_patch: per_patch,
            out_per_patch: n_qubits,
            threads: Threads::Off,
            cached_slices: None,
        }
    }

    /// A decoder bank: each patch angle-embeds `latent_dim / p` values and
    /// measures `⟨Z⟩` per wire (the paper's scalable decoder readout).
    ///
    /// # Panics
    ///
    /// Panics unless `p` divides `latent_dim` (construction-time
    /// configuration).
    pub fn angle_decoder(latent_dim: usize, p: usize, n_layers: usize, rng: &mut impl Rng) -> Self {
        assert!(
            p > 0 && latent_dim % p == 0,
            "patch count must divide the latent dimension"
        );
        let n_qubits = latent_dim / p;
        let patches = (0..p)
            .map(|_| {
                QuantumLayer::new(
                    n_qubits,
                    n_layers,
                    QuantumInput::Angle,
                    QuantumOutput::ExpectationZ,
                    rng,
                )
            })
            .collect();
        PatchedQuantumLayer {
            patches,
            in_per_patch: n_qubits,
            out_per_patch: n_qubits,
            threads: Threads::Off,
            cached_slices: None,
        }
    }

    /// Number of patches.
    pub fn n_patches(&self) -> usize {
        self.patches.len()
    }

    /// Total input width.
    pub fn in_features(&self) -> usize {
        self.in_per_patch * self.patches.len()
    }

    /// Total output width.
    pub fn out_features(&self) -> usize {
        self.out_per_patch * self.patches.len()
    }

    /// Builder-style setter for the threads knob of the execution policy.
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Lowers every patch's circuit once for a batch pass. Patch circuits
    /// are structurally identical but carry independent trainable angles,
    /// so each patch gets its own tape; all of them are shared immutably
    /// across the flattened patch × row worker pool.
    fn compile_tapes(&self) -> Vec<CompiledTape> {
        self.patches
            .iter()
            .map(QuantumLayer::compile_tape)
            .collect()
    }
}

impl Module for PatchedQuantumLayer {
    /// Forward pass: each patch circuit is compiled once into a
    /// [`CompiledTape`], then every `(patch, row)` pair is an independent
    /// replay of its patch's tape, so the bank flattens the whole
    /// patch × batch grid into one work list and shards it across threads
    /// with [`parallel::map_rows`] — a single pool over both axes, no
    /// nesting. Results land in fixed `(patch, row)` slots, so parallel
    /// execution is bit-identical to sequential.
    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        if input.cols() != self.in_features() {
            return Err(NnError::ShapeMismatch {
                expected: (input.rows(), self.in_features()),
                actual: input.shape(),
            });
        }
        let p = self.patches.len();
        let rows = input.rows();
        let slices: Vec<Matrix> = (0..p)
            .map(|k| input.columns(k * self.in_per_patch, (k + 1) * self.in_per_patch))
            .collect::<Result<_, _>>()?;
        let tapes = self.compile_tapes();
        let patches = &self.patches;
        let results = parallel::map_rows(p * rows, self.threads, |idx| {
            let (k, r) = (idx / rows, idx % rows);
            patches[k].forward_row_tape(&tapes[k], slices[k].row(r))
        });
        let mut out = Matrix::zeros(rows, self.out_features());
        for k in 0..p {
            let cols = k * self.out_per_patch..(k + 1) * self.out_per_patch;
            for r in 0..rows {
                out.row_mut(r)[cols.clone()].copy_from_slice(&results[k * rows + r]);
            }
        }
        self.cached_slices = Some(slices);
        Ok(out)
    }

    /// Backward pass, sharded like [`PatchedQuantumLayer::forward`].
    /// Gradients accumulate per patch in fixed row order, preserving the
    /// bit-identical determinism guarantee.
    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let slices = self
            .cached_slices
            .take()
            .ok_or(NnError::BackwardBeforeForward)?;
        let rows = slices.first().map_or(0, Matrix::rows);
        if grad_output.cols() != self.out_features() || grad_output.rows() != rows {
            self.cached_slices = Some(slices);
            return Err(NnError::ShapeMismatch {
                expected: (rows, self.out_features()),
                actual: grad_output.shape(),
            });
        }
        let p = self.patches.len();
        let grad_slices: Vec<Matrix> = (0..p)
            .map(|k| grad_output.columns(k * self.out_per_patch, (k + 1) * self.out_per_patch))
            .collect::<Result<_, _>>()?;
        let tapes = self.compile_tapes();
        let patches = &self.patches;
        let per = parallel::map_rows(p * rows, self.threads, |idx| {
            let (k, r) = (idx / rows, idx % rows);
            patches[k].backward_row_tape(&tapes[k], slices[k].row(r), grad_slices[k].row(r))
        });
        let mut grad_input = Matrix::zeros(rows, self.in_features());
        for (k, patch) in self.patches.iter_mut().enumerate() {
            let cols = k * self.in_per_patch..(k + 1) * self.in_per_patch;
            for r in 0..rows {
                let grads = &per[k * rows + r];
                patch.accumulate_param_grads(&grads.params);
                // Input gradients exist only for the differentiable angle
                // embedding; amplitude-embedded raw data gets zeros.
                if matches!(patch.input_mode(), QuantumInput::Angle) {
                    grad_input.row_mut(r)[cols.clone()].copy_from_slice(&grads.inputs);
                }
            }
        }
        self.cached_slices = Some(slices);
        Ok(grad_input)
    }

    fn parameters(&mut self) -> Vec<&mut ParamTensor> {
        self.patches
            .iter_mut()
            .flat_map(|p| p.parameters())
            .collect()
    }

    fn set_exec_policy(&mut self, policy: ExecPolicy) {
        // The bank shards the flattened patch × row grid itself; patches
        // run their own rows inline (a row reaching a patch here is exactly
        // one work item), so no nested pools ever form. The backend knob is
        // forwarded so every patch's tape replays on the same simulator.
        self.threads = policy.threads;
        for patch in &mut self.patches {
            patch.set_exec_policy(policy);
        }
    }

    #[allow(deprecated)]
    fn set_threads(&mut self, threads: Threads) {
        self.threads = threads;
    }

    #[allow(deprecated)]
    fn set_backend(&mut self, backend: BackendKind) {
        for patch in &mut self.patches {
            patch.set_backend(backend);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn latent_dims_match_paper() {
        assert_eq!(patched_latent_dim(1024, 2), 18);
        assert_eq!(patched_latent_dim(1024, 4), 32);
        assert_eq!(patched_latent_dim(1024, 8), 56);
        assert_eq!(patched_latent_dim(1024, 16), 96);
        // Baseline (no patching, p=1): 10 = log2(1024).
        assert_eq!(patched_latent_dim(1024, 1), 10);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn latent_dim_rejects_non_powers() {
        patched_latent_dim(1000, 2);
    }

    #[test]
    fn encoder_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut enc = PatchedQuantumLayer::amplitude_encoder(64, 4, 2, &mut rng);
        assert_eq!(enc.n_patches(), 4);
        assert_eq!(enc.in_features(), 64);
        assert_eq!(enc.out_features(), 16); // 4 patches × log2(16)=4 qubits
        let y = enc.forward(&Matrix::filled(2, 64, 0.3)).unwrap();
        assert_eq!(y.shape(), (2, 16));
    }

    #[test]
    fn decoder_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dec = PatchedQuantumLayer::angle_decoder(16, 4, 2, &mut rng);
        assert_eq!(dec.in_features(), 16);
        assert_eq!(dec.out_features(), 16);
        let y = dec.forward(&Matrix::filled(3, 16, 0.1)).unwrap();
        assert_eq!(y.shape(), (3, 16));
    }

    #[test]
    fn patches_are_independent() {
        // Changing features of patch 1 must not affect patch 0's outputs.
        let mut rng = StdRng::seed_from_u64(3);
        let mut enc = PatchedQuantumLayer::amplitude_encoder(16, 2, 1, &mut rng);
        let mut a = Matrix::filled(1, 16, 0.5);
        let y1 = enc.forward(&a).unwrap();
        // Perturb patch 1 non-uniformly (amplitude embedding normalizes, so
        // a uniform rescale would be invisible).
        for c in 8..12 {
            a.set(0, c, 0.9);
        }
        let y2 = enc.forward(&a).unwrap();
        // Each patch embeds 8 features into 3 qubits → outputs are 3 wide.
        for c in 0..3 {
            assert!((y1.get(0, c) - y2.get(0, c)).abs() < 1e-12);
        }
        assert!((3..6).any(|c| (y1.get(0, c) - y2.get(0, c)).abs() > 1e-9));
    }

    #[test]
    fn parameter_count_scales_with_patches() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut enc = PatchedQuantumLayer::amplitude_encoder(64, 4, 3, &mut rng);
        // 4 patches × (3 layers × 4 qubits × 3) = 144.
        assert_eq!(enc.parameter_count(), 144);
    }

    #[test]
    fn backward_routes_gradients_to_the_right_patch() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut dec = PatchedQuantumLayer::angle_decoder(4, 2, 1, &mut rng);
        let x = Matrix::from_rows(&[&[0.2, 0.4, 0.6, 0.8]]).unwrap();
        dec.forward(&x).unwrap();
        // Upstream gradient only on patch 0's outputs.
        let mut g = Matrix::zeros(1, 4);
        g.set(0, 0, 1.0);
        g.set(0, 1, 1.0);
        let gin = dec.backward(&g).unwrap();
        // Patch 1's inputs get zero gradient.
        assert_eq!(gin.get(0, 2), 0.0);
        assert_eq!(gin.get(0, 3), 0.0);
        assert!(gin.get(0, 0).abs() + gin.get(0, 1).abs() > 1e-9);
    }

    #[test]
    fn threaded_patch_bank_matches_sequential_bitwise() {
        let bank_with = |threads: Threads| {
            let mut rng = StdRng::seed_from_u64(9);
            PatchedQuantumLayer::amplitude_encoder(16, 2, 2, &mut rng).with_threads(threads)
        };
        let x = Matrix::from_fn(5, 16, |i, j| 0.05 * (i * 16 + j) as f64 + 0.1);
        let g = Matrix::from_fn(5, 6, |i, j| 0.2 * (i as f64) - 0.1 * (j as f64));

        let mut seq = bank_with(Threads::Off);
        let y_seq = seq.forward(&x).unwrap();
        seq.backward(&g).unwrap();
        let seq_grads: Vec<Matrix> = seq.parameters().iter().map(|p| p.grad.clone()).collect();

        let mut par = bank_with(Threads::Fixed(4));
        assert_eq!(par.forward(&x).unwrap(), y_seq);
        par.backward(&g).unwrap();
        let par_grads: Vec<Matrix> = par.parameters().iter().map(|p| p.grad.clone()).collect();
        assert_eq!(par_grads, seq_grads);
    }

    #[test]
    fn rejects_bad_widths() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut enc = PatchedQuantumLayer::amplitude_encoder(16, 2, 1, &mut rng);
        assert!(enc.forward(&Matrix::zeros(1, 10)).is_err());
        enc.forward(&Matrix::filled(1, 16, 0.1)).unwrap();
        assert!(enc.backward(&Matrix::zeros(1, 5)).is_err());
    }
}
