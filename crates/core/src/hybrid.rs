//! Hybrid quantum-classical stacks with parameter groups.
//!
//! The paper's §III-C observation — quantum angles live in `[-π, π]` while
//! classical weights roam freely — motivates *heterogeneous learning rates*.
//! [`HybridStack`] tags each stage with a [`ParamGroup`] so the trainer can
//! step the two groups with different optimizers.

use sqvae_nn::{Matrix, Module, NnError, ParamTensor};

/// Which optimizer group a stage's parameters belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamGroup {
    /// Variational circuit angles (paper's best LR: 0.03).
    Quantum,
    /// Classical network weights (paper's best LR: 0.01).
    Classical,
}

/// An ordered chain of tagged modules behaving as one [`Module`].
///
/// Stages are boxed as `dyn Module + Send`, so an assembled model can move
/// onto a worker thread (the inference service keeps warm models there).
#[derive(Default)]
pub struct HybridStack {
    stages: Vec<(ParamGroup, Box<dyn Module + Send>)>,
}

impl std::fmt::Debug for HybridStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tags: Vec<&str> = self
            .stages
            .iter()
            .map(|(g, _)| match g {
                ParamGroup::Quantum => "quantum",
                ParamGroup::Classical => "classical",
            })
            .collect();
        f.debug_struct("HybridStack")
            .field("stages", &tags)
            .finish()
    }
}

impl HybridStack {
    /// An empty stack.
    pub fn new() -> Self {
        HybridStack { stages: Vec::new() }
    }

    /// Appends a classical stage.
    pub fn push_classical(&mut self, module: impl Module + Send + 'static) {
        self.stages.push((ParamGroup::Classical, Box::new(module)));
    }

    /// Appends a quantum stage.
    pub fn push_quantum(&mut self, module: impl Module + Send + 'static) {
        self.stages.push((ParamGroup::Quantum, Box::new(module)));
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the stack has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Mutable parameter tensors belonging to `group`.
    pub fn parameters_of(&mut self, group: ParamGroup) -> Vec<&mut ParamTensor> {
        self.stages
            .iter_mut()
            .filter(|(g, _)| *g == group)
            .flat_map(|(_, m)| m.parameters())
            .collect()
    }

    /// Scalar parameter count in `group`.
    pub fn parameter_count_of(&mut self, group: ParamGroup) -> usize {
        self.parameters_of(group).iter().map(|p| p.len()).sum()
    }
}

impl Module for HybridStack {
    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        let mut x = input.clone();
        for (_, stage) in &mut self.stages {
            x = stage.forward(&x)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let mut g = grad_output.clone();
        for (_, stage) in self.stages.iter_mut().rev() {
            g = stage.backward(&g)?;
        }
        Ok(g)
    }

    fn parameters(&mut self) -> Vec<&mut ParamTensor> {
        self.stages
            .iter_mut()
            .flat_map(|(_, m)| m.parameters())
            .collect()
    }

    fn set_exec_policy(&mut self, policy: sqvae_nn::ExecPolicy) {
        for (_, stage) in &mut self.stages {
            stage.set_exec_policy(policy);
        }
    }

    #[allow(deprecated)]
    fn set_threads(&mut self, threads: sqvae_nn::Threads) {
        for (_, stage) in &mut self.stages {
            stage.set_threads(threads);
        }
    }

    #[allow(deprecated)]
    fn set_backend(&mut self, backend: sqvae_nn::BackendKind) {
        for (_, stage) in &mut self.stages {
            stage.set_backend(backend);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantum_layer::{QuantumInput, QuantumLayer, QuantumOutput};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqvae_nn::{Activation, ActivationKind, Linear};

    fn stack() -> HybridStack {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = HybridStack::new();
        s.push_quantum(QuantumLayer::new(
            2,
            1,
            QuantumInput::Amplitude { in_features: 4 },
            QuantumOutput::ExpectationZ,
            &mut rng,
        ));
        s.push_classical(Linear::new(2, 3, &mut rng));
        s.push_classical(Activation::new(ActivationKind::Tanh));
        s
    }

    #[test]
    fn forward_chains_quantum_into_classical() {
        let mut s = stack();
        let y = s.forward(&Matrix::filled(2, 4, 0.5)).unwrap();
        assert_eq!(y.shape(), (2, 3));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn parameter_groups_are_separated() {
        let mut s = stack();
        let q = s.parameter_count_of(ParamGroup::Quantum);
        let c = s.parameter_count_of(ParamGroup::Classical);
        assert_eq!(q, 6); // 1 layer × 2 qubits × 3
        assert_eq!(c, 2 * 3 + 3);
        assert_eq!(s.parameter_count(), q + c);
    }

    #[test]
    fn backward_crosses_the_quantum_classical_boundary() {
        let mut s = stack();
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3, 0.4]]).unwrap();
        let y = s.forward(&x).unwrap();
        let base = y.sum();
        s.backward(&Matrix::filled(1, 3, 1.0)).unwrap();
        // Quantum parameter gradient via finite differences end-to-end.
        let eps = 1e-6;
        let grads: Vec<f64> = {
            let qp = s.parameters_of(ParamGroup::Quantum);
            qp[0].grad.as_slice().to_vec()
        };
        for (k, &g) in grads.iter().enumerate() {
            let mut s2 = stack();
            {
                let mut qp = s2.parameters_of(ParamGroup::Quantum);
                let v = qp[0].value.get(0, k);
                qp[0].value.set(0, k, v + eps);
            }
            let fp = s2.forward(&x).unwrap().sum();
            let fd = (fp - base) / eps;
            assert!((g - fd).abs() < 1e-4, "quantum param {k}: {g} vs {fd}");
        }
    }

    #[test]
    fn debug_shows_stage_tags() {
        let s = stack();
        let d = format!("{s:?}");
        assert!(d.contains("quantum") && d.contains("classical"));
    }
}
