//! Molecule sampling and scoring — the generation half of the pipeline
//! (Fig. 2(a)'s red box, evaluated in Table II).
//!
//! Gaussian noise is decoded into molecule-matrix features, rounded into
//! graphs, sanitized (valence repair + largest fragment), and scored with
//! the QED / logP / SA metrics.

use crate::autoencoder::Autoencoder;
use rand::Rng;
use sqvae_chem::fingerprint::{diversity, fingerprint, Fingerprint};
use sqvae_chem::properties::lipinski::RuleOfFive;
use sqvae_chem::properties::{mean_properties, DrugProperties};
use sqvae_chem::{sanitize, valence, Molecule, MoleculeMatrix};
use sqvae_nn::NnError;
use std::collections::HashSet;

/// Result of sampling a batch of molecules from a generative model.
#[derive(Debug, Clone)]
pub struct SampledMolecules {
    /// Sanitized molecules (one per sample that decoded to ≥1 atom).
    pub molecules: Vec<Molecule>,
    /// Fraction of samples that were already valid *before* sanitization.
    pub validity: f64,
    /// Mean Table II metrics over the sanitized molecules.
    pub properties: DrugProperties,
    /// Number of latent samples drawn.
    pub attempted: usize,
}

/// Draws `n` latent samples from `model`, decodes them into `size × size`
/// molecule matrices, and scores them.
///
/// `rescale` multiplies decoded features before rounding — use it for fully
/// quantum models whose probability outputs live on the normalized scale
/// (pass the training set's mean L1 norm); hybrid/scalable models output
/// original-scale codes and take `None`.
///
/// `n == 0` is an explicit empty result — no molecules, `attempted: 0`, and
/// a validity of 0.0 (not a 0/0; earlier versions divided by `n.max(1)`,
/// quietly reporting a fraction over samples that were never drawn). The
/// RNG is untouched in that case.
///
/// # Errors
///
/// Returns shape errors from the decoder.
pub fn sample_molecules(
    model: &mut Autoencoder,
    n: usize,
    size: usize,
    rescale: Option<f64>,
    rng: &mut impl Rng,
) -> Result<SampledMolecules, NnError> {
    if n == 0 {
        return Ok(SampledMolecules {
            molecules: Vec::new(),
            validity: 0.0,
            properties: mean_properties(std::iter::empty()),
            attempted: 0,
        });
    }
    let features = model.sample(n, rng)?;
    let mut molecules = Vec::new();
    let mut valid = 0usize;
    for r in 0..features.rows() {
        let mut row = features.row(r).to_vec();
        if let Some(s) = rescale {
            for v in &mut row {
                *v *= s;
            }
        }
        let matrix = MoleculeMatrix::from_values(size, row)
            .expect("sample width equals size*size by construction");
        let decoded = matrix.decode();
        if decoded.is_empty() {
            continue;
        }
        if valence::is_valid(&decoded) {
            valid += 1;
        }
        if let Ok(s) = sanitize::sanitize(&decoded) {
            molecules.push(s.molecule);
        }
    }
    let properties = mean_properties(molecules.iter());
    Ok(SampledMolecules {
        validity: valid as f64 / n as f64,
        properties,
        molecules,
        attempted: n,
    })
}

/// Generation-quality metrics in the MolGAN tradition: how valid, unique,
/// novel, diverse, and drug-filter-compliant a sample batch is.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GenerationMetrics {
    /// Fraction of attempted samples that decoded to valid molecules
    /// (before sanitization).
    pub validity: f64,
    /// Fraction of distinct fingerprints among the sanitized molecules.
    pub uniqueness: f64,
    /// Fraction of sanitized molecules whose fingerprint does not occur in
    /// the training set.
    pub novelty: f64,
    /// Mean pairwise Tanimoto distance among the sanitized molecules.
    pub diversity: f64,
    /// Fraction passing Lipinski's rule of five.
    pub lipinski: f64,
}

/// Scores a sample batch against its training set.
pub fn generation_metrics(sampled: &SampledMolecules, training: &[Molecule]) -> GenerationMetrics {
    let n = sampled.molecules.len();
    if n == 0 {
        return GenerationMetrics {
            validity: sampled.validity,
            ..GenerationMetrics::default()
        };
    }
    let fps: Vec<Fingerprint> = sampled.molecules.iter().map(fingerprint).collect();
    let train_fps: HashSet<Fingerprint> = training.iter().map(fingerprint).collect();
    let unique: HashSet<&Fingerprint> = fps.iter().collect();
    let novel = fps.iter().filter(|fp| !train_fps.contains(fp)).count();
    let lipinski_pass = sampled
        .molecules
        .iter()
        .filter(|m| RuleOfFive::compute(m).passes())
        .count();
    GenerationMetrics {
        validity: sampled.validity,
        uniqueness: unique.len() as f64 / n as f64,
        novelty: novel as f64 / n as f64,
        diversity: diversity(&fps),
        lipinski: lipinski_pass as f64 / n as f64,
    }
}

/// Reconstructs one molecule through the model: encode → latent → decode →
/// round → sanitize. Returns the reconstructed molecule (empty decodes give
/// `None`).
///
/// `normalize_input` L1-normalizes the encoded features first (for fully
/// quantum models trained on normalized data, Fig. 4(b)); `rescale`
/// multiplies the decoded features before rounding (pass the original L1
/// norm to undo the normalization).
///
/// # Errors
///
/// Returns shape errors from the model.
pub fn reconstruct_molecule(
    model: &mut Autoencoder,
    mol: &Molecule,
    size: usize,
    normalize_input: bool,
    rescale: Option<f64>,
) -> Result<Option<Molecule>, NnError> {
    let matrix =
        MoleculeMatrix::encode(mol, size).expect("caller guarantees the molecule fits the matrix");
    let matrix = if normalize_input {
        matrix.l1_normalized()
    } else {
        matrix
    };
    let features = matrix.as_features().to_vec();
    let x = sqvae_nn::Matrix::from_vec(1, features.len(), features)?;
    let recon = model.reconstruct(&x)?;
    let mut row = recon.row(0).to_vec();
    if let Some(s) = rescale {
        for v in &mut row {
            *v *= s;
        }
    }
    let decoded = MoleculeMatrix::from_values(size, row)
        .expect("reconstruction width equals size*size")
        .decode();
    if decoded.is_empty() {
        return Ok(None);
    }
    Ok(sanitize::sanitize(&decoded).ok().map(|s| s.molecule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_produces_scored_molecules() {
        let mut rng = StdRng::seed_from_u64(0);
        // Untrained SQ-VAE on 64-dim (8×8 matrices): outputs are arbitrary
        // but the pipeline must be total.
        let mut model = models::sq_vae(64, 2, 1, &mut rng);
        let mut srng = StdRng::seed_from_u64(1);
        let out = sample_molecules(&mut model, 20, 8, None, &mut srng).unwrap();
        assert_eq!(out.attempted, 20);
        assert!(out.validity >= 0.0 && out.validity <= 1.0);
        for m in &out.molecules {
            assert!(valence::valences_ok(m));
            assert!(m.is_connected());
        }
        if !out.molecules.is_empty() {
            assert!(out.properties.qed > 0.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(3);
            models::sq_vae(64, 2, 1, &mut rng)
        };
        let mut m1 = build();
        let mut m2 = build();
        let out1 = sample_molecules(&mut m1, 5, 8, None, &mut StdRng::seed_from_u64(9)).unwrap();
        let out2 = sample_molecules(&mut m2, 5, 8, None, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(out1.molecules, out2.molecules);
    }

    #[test]
    fn zero_samples_is_an_explicit_empty_result() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = models::sq_vae(64, 2, 1, &mut rng);
        let mut srng = StdRng::seed_from_u64(8);
        let out = sample_molecules(&mut model, 0, 8, None, &mut srng).unwrap();
        assert_eq!(out.attempted, 0);
        assert!(out.molecules.is_empty());
        assert_eq!(out.validity, 0.0, "no samples drawn, none were valid");
        // The RNG must be untouched — nothing was decoded.
        use rand::RngCore;
        assert_eq!(srng.next_u64(), StdRng::seed_from_u64(8).next_u64());
    }

    #[test]
    fn rescale_amplifies_normalized_outputs() {
        // F-BQ probabilities are ≤ 1; without rescale nearly every entry
        // rounds to zero.
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = models::f_bq_vae(64, 1, &mut rng);
        let mut srng = StdRng::seed_from_u64(5);
        let plain = sample_molecules(&mut model, 10, 8, None, &mut srng).unwrap();
        let mut srng = StdRng::seed_from_u64(5);
        let scaled = sample_molecules(&mut model, 10, 8, Some(30.0), &mut srng).unwrap();
        let atoms =
            |s: &SampledMolecules| -> usize { s.molecules.iter().map(|m| m.n_atoms()).sum() };
        assert!(atoms(&scaled) >= atoms(&plain));
    }

    #[test]
    fn generation_metrics_ranges_and_edge_cases() {
        use sqvae_chem::{BondOrder, Element};
        // Hand-built sample batch: two identical + one distinct molecule.
        let mut a = Molecule::new();
        let c1 = a.add_atom(Element::C);
        let c2 = a.add_atom(Element::C);
        a.add_bond(c1, c2, BondOrder::Single).unwrap();
        let mut b = Molecule::new();
        let c = b.add_atom(Element::C);
        let o = b.add_atom(Element::O);
        b.add_bond(c, o, BondOrder::Single).unwrap();
        let sampled = SampledMolecules {
            molecules: vec![a.clone(), a.clone(), b.clone()],
            validity: 1.0,
            properties: Default::default(),
            attempted: 3,
        };
        // Training set contains molecule `a` but not `b`.
        let m = generation_metrics(&sampled, &[a.clone()]);
        assert!((m.uniqueness - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.novelty - 1.0 / 3.0).abs() < 1e-12);
        assert!(m.diversity > 0.0 && m.diversity <= 1.0);
        assert_eq!(m.lipinski, 1.0);
        // Empty batch: everything but validity zeroed.
        let empty = SampledMolecules {
            molecules: vec![],
            validity: 0.25,
            properties: Default::default(),
            attempted: 4,
        };
        let m = generation_metrics(&empty, &[a]);
        assert_eq!(m.validity, 0.25);
        assert_eq!(m.uniqueness, 0.0);
    }

    #[test]
    fn reconstruction_round_trip_through_model() {
        use sqvae_chem::{BondOrder, Element};
        let mut mol = Molecule::new();
        let a = mol.add_atom(Element::C);
        let b = mol.add_atom(Element::O);
        mol.add_bond(a, b, BondOrder::Single).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut model = models::classical_ae(64, 6, &mut rng);
        // Untrained model: reconstruction may be empty or a molecule — the
        // call itself must succeed either way.
        let out = reconstruct_molecule(&mut model, &mol, 8, false, None).unwrap();
        if let Some(m) = out {
            assert!(valence::valences_ok(&m));
        }
    }
}
