//! Factory functions for every autoencoder variant in the paper.
//!
//! | factory | paper name | input | notes |
//! |---|---|---|---|
//! | [`classical_ae`]/[`classical_vae`] | AE / VAE | any | 3-layer MLP halves |
//! | [`f_bq_ae`]/[`f_bq_vae`] | F-BQ-AE / F-BQ-VAE | 2^n | fully quantum baseline |
//! | [`h_bq_ae`]/[`h_bq_vae`] | H-BQ-AE / H-BQ-VAE | 2^n | + classical FCs for original scale |
//! | [`sq_ae`]/[`sq_vae`] | SQ-AE / SQ-VAE | 2^n | patched circuits (§III-C) |
//!
//! Hybrid variants follow §IV-B: "Both quantum encoder and decoder are
//! connected to a classical layer" — a latent-width FC after the quantum
//! encoder and a full-width FC after the quantum decoder. With the paper's
//! 64-feature / 6-qubit / 3-layer baseline this accounting reproduces
//! Table I's quantum counts exactly (108) and its classical counts for the
//! hybrid variants (4202 / 4286 = 42 + 84·[VAE] + 4160).

use crate::autoencoder::Autoencoder;
use crate::hybrid::HybridStack;
use crate::latent::{GaussianLatent, Latent};
use crate::patched::{patched_latent_dim, PatchedQuantumLayer};
use crate::quantum_layer::{QuantumInput, QuantumLayer, QuantumOutput};
use rand::Rng;
use sqvae_nn::{Activation, ActivationKind, Linear};
use sqvae_quantum::embed::qubits_for_features;

/// Default KL weight for the VAE variants.
pub const DEFAULT_KL_WEIGHT: f64 = 1.0;

/// The architecture of a factory-built autoencoder, captured as data.
///
/// Every `models::*` factory stamps its spec onto the returned
/// [`Autoencoder`], so a trained model can be persisted (the checkpoint
/// format stores the spec as a tag string) and rebuilt later via
/// [`ModelSpec::build`] — same constructor, same shapes — before the saved
/// parameters are copied in.
///
/// The textual form round-trips through [`std::fmt::Display`] /
/// [`std::str::FromStr`]: `"sq_vae 64 2 1"` ⇄ `SqVae { input_dim: 64,
/// p: 2, n_layers: 1 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSpec {
    /// [`classical_ae`].
    ClassicalAe {
        /// Feature width.
        input_dim: usize,
        /// Latent width.
        latent_dim: usize,
    },
    /// [`classical_vae`].
    ClassicalVae {
        /// Feature width.
        input_dim: usize,
        /// Latent width.
        latent_dim: usize,
    },
    /// [`f_bq_ae`].
    FBqAe {
        /// Feature width (≤ 2^qubits).
        input_dim: usize,
        /// Strongly-entangling layer count.
        n_layers: usize,
    },
    /// [`f_bq_vae`].
    FBqVae {
        /// Feature width (≤ 2^qubits).
        input_dim: usize,
        /// Strongly-entangling layer count.
        n_layers: usize,
    },
    /// [`h_bq_ae`].
    HBqAe {
        /// Feature width (≤ 2^qubits).
        input_dim: usize,
        /// Strongly-entangling layer count.
        n_layers: usize,
    },
    /// [`h_bq_vae`].
    HBqVae {
        /// Feature width (≤ 2^qubits).
        input_dim: usize,
        /// Strongly-entangling layer count.
        n_layers: usize,
    },
    /// [`sq_ae`].
    SqAe {
        /// Feature width (power of two).
        input_dim: usize,
        /// Patch count (power of two, `< input_dim`).
        p: usize,
        /// Strongly-entangling layer count per patch.
        n_layers: usize,
    },
    /// [`sq_vae`].
    SqVae {
        /// Feature width (power of two).
        input_dim: usize,
        /// Patch count (power of two, `< input_dim`).
        p: usize,
        /// Strongly-entangling layer count per patch.
        n_layers: usize,
    },
}

impl ModelSpec {
    /// Rebuilds the architecture this spec describes by calling its factory.
    ///
    /// The `rng` only seeds the *initial* parameters; checkpoint loading
    /// overwrites every tensor afterwards, so any seed yields the same
    /// restored model.
    pub fn build(&self, rng: &mut impl Rng) -> Autoencoder {
        match *self {
            ModelSpec::ClassicalAe {
                input_dim,
                latent_dim,
            } => classical_ae(input_dim, latent_dim, rng),
            ModelSpec::ClassicalVae {
                input_dim,
                latent_dim,
            } => classical_vae(input_dim, latent_dim, rng),
            ModelSpec::FBqAe {
                input_dim,
                n_layers,
            } => f_bq_ae(input_dim, n_layers, rng),
            ModelSpec::FBqVae {
                input_dim,
                n_layers,
            } => f_bq_vae(input_dim, n_layers, rng),
            ModelSpec::HBqAe {
                input_dim,
                n_layers,
            } => h_bq_ae(input_dim, n_layers, rng),
            ModelSpec::HBqVae {
                input_dim,
                n_layers,
            } => h_bq_vae(input_dim, n_layers, rng),
            ModelSpec::SqAe {
                input_dim,
                p,
                n_layers,
            } => sq_ae(input_dim, p, n_layers, rng),
            ModelSpec::SqVae {
                input_dim,
                p,
                n_layers,
            } => sq_vae(input_dim, p, n_layers, rng),
        }
    }

    /// The feature width the model consumes and reconstructs.
    pub fn input_dim(&self) -> usize {
        match *self {
            ModelSpec::ClassicalAe { input_dim, .. }
            | ModelSpec::ClassicalVae { input_dim, .. }
            | ModelSpec::FBqAe { input_dim, .. }
            | ModelSpec::FBqVae { input_dim, .. }
            | ModelSpec::HBqAe { input_dim, .. }
            | ModelSpec::HBqVae { input_dim, .. }
            | ModelSpec::SqAe { input_dim, .. }
            | ModelSpec::SqVae { input_dim, .. } => input_dim,
        }
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ModelSpec::ClassicalAe {
                input_dim,
                latent_dim,
            } => write!(f, "classical_ae {input_dim} {latent_dim}"),
            ModelSpec::ClassicalVae {
                input_dim,
                latent_dim,
            } => write!(f, "classical_vae {input_dim} {latent_dim}"),
            ModelSpec::FBqAe {
                input_dim,
                n_layers,
            } => write!(f, "f_bq_ae {input_dim} {n_layers}"),
            ModelSpec::FBqVae {
                input_dim,
                n_layers,
            } => write!(f, "f_bq_vae {input_dim} {n_layers}"),
            ModelSpec::HBqAe {
                input_dim,
                n_layers,
            } => write!(f, "h_bq_ae {input_dim} {n_layers}"),
            ModelSpec::HBqVae {
                input_dim,
                n_layers,
            } => write!(f, "h_bq_vae {input_dim} {n_layers}"),
            ModelSpec::SqAe {
                input_dim,
                p,
                n_layers,
            } => write!(f, "sq_ae {input_dim} {p} {n_layers}"),
            ModelSpec::SqVae {
                input_dim,
                p,
                n_layers,
            } => write!(f, "sq_vae {input_dim} {p} {n_layers}"),
        }
    }
}

impl std::str::FromStr for ModelSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split_whitespace();
        let kind = it.next().ok_or_else(|| "empty model spec".to_string())?;
        let nums: Vec<usize> = it
            .map(|t| {
                t.parse::<usize>()
                    .map_err(|_| format!("non-numeric field '{t}' in model spec '{s}'"))
            })
            .collect::<Result<_, _>>()?;
        let want = |n: usize| -> Result<(), String> {
            if nums.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "model spec '{s}': expected {n} numeric fields, got {}",
                    nums.len()
                ))
            }
        };
        match kind {
            "classical_ae" => {
                want(2)?;
                Ok(ModelSpec::ClassicalAe {
                    input_dim: nums[0],
                    latent_dim: nums[1],
                })
            }
            "classical_vae" => {
                want(2)?;
                Ok(ModelSpec::ClassicalVae {
                    input_dim: nums[0],
                    latent_dim: nums[1],
                })
            }
            "f_bq_ae" => {
                want(2)?;
                Ok(ModelSpec::FBqAe {
                    input_dim: nums[0],
                    n_layers: nums[1],
                })
            }
            "f_bq_vae" => {
                want(2)?;
                Ok(ModelSpec::FBqVae {
                    input_dim: nums[0],
                    n_layers: nums[1],
                })
            }
            "h_bq_ae" => {
                want(2)?;
                Ok(ModelSpec::HBqAe {
                    input_dim: nums[0],
                    n_layers: nums[1],
                })
            }
            "h_bq_vae" => {
                want(2)?;
                Ok(ModelSpec::HBqVae {
                    input_dim: nums[0],
                    n_layers: nums[1],
                })
            }
            "sq_ae" => {
                want(3)?;
                Ok(ModelSpec::SqAe {
                    input_dim: nums[0],
                    p: nums[1],
                    n_layers: nums[2],
                })
            }
            "sq_vae" => {
                want(3)?;
                Ok(ModelSpec::SqVae {
                    input_dim: nums[0],
                    p: nums[1],
                    n_layers: nums[2],
                })
            }
            other => Err(format!("unknown model kind '{other}'")),
        }
    }
}

/// The paper's default quantum hidden-layer count for the baseline (§III-B).
pub const BASELINE_LAYERS: usize = 3;

/// The depth selected by the Fig. 6 sweep for scalable variants.
pub const SCALABLE_LAYERS: usize = 5;

/// Hidden widths for the classical MLP halves: the paper's 64→32→16→latent
/// generalized as `input/2 → input/4 → latent`.
pub fn default_hidden_dims(input_dim: usize) -> (usize, usize) {
    ((input_dim / 2).max(2), (input_dim / 4).max(2))
}

fn mlp_encoder(input_dim: usize, latent_dim: usize, rng: &mut impl Rng) -> HybridStack {
    let (h1, h2) = default_hidden_dims(input_dim);
    let mut s = HybridStack::new();
    s.push_classical(Linear::new(input_dim, h1, rng));
    s.push_classical(Activation::new(ActivationKind::Relu));
    s.push_classical(Linear::new(h1, h2, rng));
    s.push_classical(Activation::new(ActivationKind::Relu));
    s.push_classical(Linear::new(h2, latent_dim, rng));
    s
}

fn mlp_decoder(latent_dim: usize, output_dim: usize, rng: &mut impl Rng) -> HybridStack {
    let (h1, h2) = default_hidden_dims(output_dim);
    let mut s = HybridStack::new();
    s.push_classical(Linear::new(latent_dim, h2, rng));
    s.push_classical(Activation::new(ActivationKind::Relu));
    s.push_classical(Linear::new(h2, h1, rng));
    s.push_classical(Activation::new(ActivationKind::Relu));
    s.push_classical(Linear::new(h1, output_dim, rng));
    s
}

/// Classical vanilla autoencoder (the paper's "AE", Table I column 1).
pub fn classical_ae(input_dim: usize, latent_dim: usize, rng: &mut impl Rng) -> Autoencoder {
    Autoencoder::new(
        format!("AE(lsd={latent_dim})"),
        mlp_encoder(input_dim, latent_dim, rng),
        Latent::Identity,
        mlp_decoder(latent_dim, input_dim, rng),
    )
    .with_identity_latent_dim(latent_dim)
    .with_spec(ModelSpec::ClassicalAe {
        input_dim,
        latent_dim,
    })
}

/// Classical variational autoencoder (the paper's "VAE").
pub fn classical_vae(input_dim: usize, latent_dim: usize, rng: &mut impl Rng) -> Autoencoder {
    Autoencoder::new(
        format!("VAE(lsd={latent_dim})"),
        mlp_encoder(input_dim, latent_dim, rng),
        Latent::Gaussian(GaussianLatent::new(
            latent_dim,
            latent_dim,
            DEFAULT_KL_WEIGHT,
            rng,
        )),
        mlp_decoder(latent_dim, input_dim, rng),
    )
    .with_spec(ModelSpec::ClassicalVae {
        input_dim,
        latent_dim,
    })
}

fn baseline_quantum_encoder(
    input_dim: usize,
    n_layers: usize,
    rng: &mut impl Rng,
) -> (HybridStack, usize) {
    let n_qubits = qubits_for_features(input_dim);
    let mut enc = HybridStack::new();
    enc.push_quantum(QuantumLayer::new(
        n_qubits,
        n_layers,
        QuantumInput::Amplitude {
            in_features: input_dim,
        },
        QuantumOutput::ExpectationZ,
        rng,
    ));
    (enc, n_qubits)
}

fn baseline_quantum_decoder(n_qubits: usize, n_layers: usize, rng: &mut impl Rng) -> HybridStack {
    let mut dec = HybridStack::new();
    dec.push_quantum(QuantumLayer::new(
        n_qubits,
        n_layers,
        QuantumInput::Angle,
        QuantumOutput::Probabilities,
        rng,
    ));
    dec
}

/// Fully quantum baseline AE (F-BQ-AE): amplitude-in/expectation-out
/// encoder, angle-in/probability-out decoder, no classical parameters.
/// Suitable for *normalized* data only (§III-B).
pub fn f_bq_ae(input_dim: usize, n_layers: usize, rng: &mut impl Rng) -> Autoencoder {
    let (enc, n_qubits) = baseline_quantum_encoder(input_dim, n_layers, rng);
    let dec = baseline_quantum_decoder(n_qubits, n_layers, rng);
    Autoencoder::new(format!("F-BQ-AE({input_dim}d)"), enc, Latent::Identity, dec)
        .with_identity_latent_dim(n_qubits)
        .with_spec(ModelSpec::FBqAe {
            input_dim,
            n_layers,
        })
}

/// Fully quantum baseline VAE (F-BQ-VAE): adds Gaussian latent heads.
pub fn f_bq_vae(input_dim: usize, n_layers: usize, rng: &mut impl Rng) -> Autoencoder {
    let (enc, n_qubits) = baseline_quantum_encoder(input_dim, n_layers, rng);
    let dec = baseline_quantum_decoder(n_qubits, n_layers, rng);
    Autoencoder::new(
        format!("F-BQ-VAE({input_dim}d)"),
        enc,
        Latent::Gaussian(GaussianLatent::new(
            n_qubits,
            n_qubits,
            DEFAULT_KL_WEIGHT,
            rng,
        )),
        dec,
    )
    .with_spec(ModelSpec::FBqVae {
        input_dim,
        n_layers,
    })
}

/// Hybrid baseline AE (H-BQ-AE): quantum halves plus a latent-width FC after
/// the encoder and a full-width FC after the decoder, for original-scale
/// data.
pub fn h_bq_ae(input_dim: usize, n_layers: usize, rng: &mut impl Rng) -> Autoencoder {
    let (mut enc, n_qubits) = baseline_quantum_encoder(input_dim, n_layers, rng);
    enc.push_classical(Linear::new(n_qubits, n_qubits, rng));
    let mut dec = baseline_quantum_decoder(n_qubits, n_layers, rng);
    dec.push_classical(Linear::new(1 << n_qubits, input_dim, rng));
    Autoencoder::new(format!("H-BQ-AE({input_dim}d)"), enc, Latent::Identity, dec)
        .with_identity_latent_dim(n_qubits)
        .with_spec(ModelSpec::HBqAe {
            input_dim,
            n_layers,
        })
}

/// Hybrid baseline VAE (H-BQ-VAE).
pub fn h_bq_vae(input_dim: usize, n_layers: usize, rng: &mut impl Rng) -> Autoencoder {
    let (mut enc, n_qubits) = baseline_quantum_encoder(input_dim, n_layers, rng);
    enc.push_classical(Linear::new(n_qubits, n_qubits, rng));
    let mut dec = baseline_quantum_decoder(n_qubits, n_layers, rng);
    dec.push_classical(Linear::new(1 << n_qubits, input_dim, rng));
    Autoencoder::new(
        format!("H-BQ-VAE({input_dim}d)"),
        enc,
        Latent::Gaussian(GaussianLatent::new(
            n_qubits,
            n_qubits,
            DEFAULT_KL_WEIGHT,
            rng,
        )),
        dec,
    )
    .with_spec(ModelSpec::HBqVae {
        input_dim,
        n_layers,
    })
}

/// Scalable quantum AE (SQ-AE) with `p` patched sub-circuits (§III-C):
/// patched amplitude encoder → latent FC → patched angle decoder →
/// full-width FC.
pub fn sq_ae(input_dim: usize, p: usize, n_layers: usize, rng: &mut impl Rng) -> Autoencoder {
    let lsd = patched_latent_dim(input_dim, p);
    let mut enc = HybridStack::new();
    enc.push_quantum(PatchedQuantumLayer::amplitude_encoder(
        input_dim, p, n_layers, rng,
    ));
    enc.push_classical(Linear::new(lsd, lsd, rng));
    let mut dec = HybridStack::new();
    dec.push_quantum(PatchedQuantumLayer::angle_decoder(lsd, p, n_layers, rng));
    dec.push_classical(Linear::new(lsd, input_dim, rng));
    Autoencoder::new(
        format!("SQ-AE(p={p},lsd={lsd})"),
        enc,
        Latent::Identity,
        dec,
    )
    .with_identity_latent_dim(lsd)
    .with_spec(ModelSpec::SqAe {
        input_dim,
        p,
        n_layers,
    })
}

/// Scalable quantum VAE (SQ-VAE) with `p` patched sub-circuits.
pub fn sq_vae(input_dim: usize, p: usize, n_layers: usize, rng: &mut impl Rng) -> Autoencoder {
    let lsd = patched_latent_dim(input_dim, p);
    let mut enc = HybridStack::new();
    enc.push_quantum(PatchedQuantumLayer::amplitude_encoder(
        input_dim, p, n_layers, rng,
    ));
    enc.push_classical(Linear::new(lsd, lsd, rng));
    let mut dec = HybridStack::new();
    dec.push_quantum(PatchedQuantumLayer::angle_decoder(lsd, p, n_layers, rng));
    dec.push_classical(Linear::new(lsd, input_dim, rng));
    Autoencoder::new(
        format!("SQ-VAE(p={p},lsd={lsd})"),
        enc,
        Latent::Gaussian(GaussianLatent::new(lsd, lsd, DEFAULT_KL_WEIGHT, rng)),
        dec,
    )
    .with_spec(ModelSpec::SqVae {
        input_dim,
        p,
        n_layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqvae_nn::Matrix;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn table1_quantum_counts_match_paper() {
        let mut r = rng();
        for mut m in [
            f_bq_ae(64, BASELINE_LAYERS, &mut r),
            f_bq_vae(64, BASELINE_LAYERS, &mut r),
            h_bq_ae(64, BASELINE_LAYERS, &mut r),
            h_bq_vae(64, BASELINE_LAYERS, &mut r),
        ] {
            assert_eq!(m.parameter_count().quantum, 108, "{}", m.name);
        }
    }

    #[test]
    fn table1_classical_counts() {
        let mut r = rng();
        assert_eq!(f_bq_ae(64, 3, &mut r).parameter_count().classical, 0);
        assert_eq!(f_bq_vae(64, 3, &mut r).parameter_count().classical, 84);
        assert_eq!(h_bq_ae(64, 3, &mut r).parameter_count().classical, 4202);
        assert_eq!(h_bq_vae(64, 3, &mut r).parameter_count().classical, 4286);
        // Classical VAE = AE + the two 6→6 Gaussian heads (84).
        let ae = classical_ae(64, 6, &mut r).parameter_count().classical;
        let vae = classical_vae(64, 6, &mut r).parameter_count().classical;
        assert_eq!(vae - ae, 84);
        assert_eq!(classical_ae(64, 6, &mut r).parameter_count().quantum, 0);
    }

    #[test]
    fn classical_round_trip_shapes() {
        let mut r = rng();
        let mut m = classical_vae(64, 6, &mut r);
        let x = Matrix::filled(4, 64, 0.5);
        let y = m.reconstruct(&x).unwrap();
        assert_eq!(y.shape(), (4, 64));
        let mut rng2 = StdRng::seed_from_u64(1);
        let s = m.sample(3, &mut rng2).unwrap();
        assert_eq!(s.shape(), (3, 64));
    }

    #[test]
    fn fully_quantum_round_trip_shapes() {
        let mut r = rng();
        let mut m = f_bq_vae(16, 2, &mut r);
        let x = Matrix::filled(2, 16, 0.25);
        let y = m.reconstruct(&x).unwrap();
        assert_eq!(y.shape(), (2, 16));
        // Probabilities: rows sum to 1.
        for row in 0..2 {
            let s: f64 = y.row(row).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hybrid_round_trip_shapes() {
        let mut r = rng();
        let mut m = h_bq_ae(16, 2, &mut r);
        let x = Matrix::filled(2, 16, 1.5);
        let y = m.reconstruct(&x).unwrap();
        assert_eq!(y.shape(), (2, 16));
        assert!(!m.is_variational());
    }

    #[test]
    fn scalable_round_trip_shapes_and_lsd() {
        let mut r = rng();
        let mut m = sq_vae(64, 4, 2, &mut r);
        assert_eq!(m.latent_dim(), patched_latent_dim(64, 4));
        let x = Matrix::filled(2, 64, 0.5);
        let y = m.reconstruct(&x).unwrap();
        assert_eq!(y.shape(), (2, 64));
        let mut rng2 = StdRng::seed_from_u64(5);
        let s = m.sample(2, &mut rng2).unwrap();
        assert_eq!(s.shape(), (2, 64));
    }

    #[test]
    fn sq_models_have_both_param_groups() {
        let mut r = rng();
        let mut m = sq_ae(64, 2, 2, &mut r);
        let pc = m.parameter_count();
        assert!(pc.quantum > 0);
        assert!(pc.classical > 0);
        // Quantum: encoder + decoder, each 2 patches × 2 layers × 5 qubits
        // × 3 angles = 60, so 120 total.
        assert_eq!(pc.quantum, 120);
    }

    #[test]
    fn names_are_informative() {
        let mut r = rng();
        assert!(sq_vae(1024, 8, 1, &mut r).name.contains("lsd=56"));
        assert!(classical_ae(64, 6, &mut r).name.contains("lsd=6"));
    }

    #[test]
    fn every_factory_stamps_a_spec_that_round_trips_as_text() {
        let mut r = rng();
        let models = [
            classical_ae(16, 3, &mut r),
            classical_vae(16, 3, &mut r),
            f_bq_ae(16, 2, &mut r),
            f_bq_vae(16, 2, &mut r),
            h_bq_ae(16, 2, &mut r),
            h_bq_vae(16, 2, &mut r),
            sq_ae(16, 2, 2, &mut r),
            sq_vae(16, 2, 2, &mut r),
        ];
        for m in models {
            let spec = m.spec().expect("factory must stamp a spec");
            assert_eq!(spec.input_dim(), 16, "{}", m.name);
            let parsed: ModelSpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec, "{}", m.name);
        }
    }

    #[test]
    fn spec_build_reproduces_the_factory_architecture() {
        let mut r1 = rng();
        let mut r2 = rng();
        let mut direct = sq_vae(16, 2, 2, &mut r1);
        let mut rebuilt = direct.spec().unwrap().build(&mut r2);
        assert_eq!(direct.name, rebuilt.name);
        assert_eq!(direct.parameter_count(), rebuilt.parameter_count());
        assert_eq!(direct.latent_dim(), rebuilt.latent_dim());
    }

    #[test]
    fn bad_spec_strings_are_rejected() {
        for bad in ["", "warp_ae 4 2", "sq_vae 4", "sq_vae a b c"] {
            assert!(bad.parse::<ModelSpec>().is_err(), "{bad:?}");
        }
    }
}
