//! A variational quantum circuit as a neural-network layer.
//!
//! The layer implements [`Module`], so classical and quantum stages
//! backpropagate through each other exactly as the paper's hybrid
//! architecture requires. Each pass first **compiles the circuit once per
//! batch** into a [`CompiledTape`] — parameters bound, commuting
//! single-qubit gates pre-fused, CNOT runs flattened, the adjoint sweep
//! pre-inverted — and every batch row then replays that tape, so the
//! per-gate lowering work is paid once instead of once per row. Forward
//! executes the tape per row; backward runs one tape adjoint pass per row
//! against the upstream-weighted diagonal observable.
//!
//! Batch rows are independent simulations, so both passes shard rows across
//! OS threads according to the layer's [`ExecPolicy`] threads knob (default
//! [`Threads::Off`]; the trainer propagates its configured policy). The
//! shared tape is immutable and crosses shard boundaries by reference.
//! Per-row results land in preallocated row slots and gradients accumulate
//! in fixed row order, so the parallel path is bit-identical to the
//! sequential one.
//!
//! Which simulator executes the tape is the policy's second knob,
//! [`BackendKind`]: every row dispatches onto the dense reference register,
//! the fused-kernel backend, or the structure-of-arrays SIMD backend
//! (`SQVAE_BACKEND`, `TrainConfig::backend`, [`sqvae_nn::ExecPolicy`]);
//! backends agree to ≤ 1e-12.

use rand::Rng;
use sqvae_nn::parallel::{self, Threads};
use sqvae_nn::{init, BackendKind, ExecPolicy, Matrix, Module, NnError, ParamTensor};
use sqvae_quantum::embed::{
    amplitude_embedding, angle_embedding_gates, qubits_for_features, RotationAxis,
};
use sqvae_quantum::grad::adjoint;
use sqvae_quantum::grad::CircuitGradients;
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::{
    Backend, Circuit, CompiledTape, FusedDenseBackend, SoaDenseBackend, StateVector,
};

/// How classical data enters the circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumInput {
    /// Amplitude embedding: `in_features ≤ 2^n_qubits` values become the
    /// initial state (qubit-efficient; used by encoders). Inputs receive no
    /// gradient (they are raw data).
    Amplitude {
        /// Width of the embedded feature vector.
        in_features: usize,
    },
    /// Angle embedding: one `RY(x_i)` per wire (used by decoders); inputs
    /// are differentiable.
    Angle,
}

/// What measurement the layer returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumOutput {
    /// Per-wire `⟨Z⟩` — `n_qubits` outputs in [-1, 1].
    ExpectationZ,
    /// All basis-state probabilities — `2^n_qubits` outputs summing to 1.
    Probabilities,
}

/// A strongly-entangling variational circuit behaving as a `Module`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use sqvae_core::{QuantumInput, QuantumLayer, QuantumOutput};
/// use sqvae_nn::{Matrix, Module};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// // The paper's baseline encoder: 64 features → 6 qubits → 6 expectations.
/// let mut enc = QuantumLayer::new(
///     6, 3, QuantumInput::Amplitude { in_features: 64 },
///     QuantumOutput::ExpectationZ, &mut rng,
/// );
/// assert_eq!(enc.parameter_count(), 54); // 3 layers × 6 qubits × 3 angles
/// let x = Matrix::filled(2, 64, 0.5);
/// let z = enc.forward(&x).unwrap();
/// assert_eq!(z.shape(), (2, 6));
/// ```
#[derive(Debug, Clone)]
pub struct QuantumLayer {
    circuit: Circuit,
    input_mode: QuantumInput,
    output_mode: QuantumOutput,
    params: ParamTensor,
    cached_input: Option<Matrix>,
    exec: ExecPolicy,
}

impl QuantumLayer {
    /// Builds a layer of `n_layers` strongly-entangling layers on `n_qubits`
    /// wires with angles initialized uniformly in `[-π, π]`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is outside the simulator's supported range, or
    /// if an amplitude input's `in_features` exceeds `2^n_qubits`, or an
    /// angle input is requested on zero qubits — all construction-time
    /// configuration bugs.
    pub fn new(
        n_qubits: usize,
        n_layers: usize,
        input_mode: QuantumInput,
        output_mode: QuantumOutput,
        rng: &mut impl Rng,
    ) -> Self {
        let mut circuit = Circuit::new(n_qubits).expect("valid register size");
        if let QuantumInput::Amplitude { in_features } = input_mode {
            assert!(
                in_features <= 1 << n_qubits,
                "amplitude embedding of {in_features} features needs {} qubits, have {n_qubits}",
                qubits_for_features(in_features)
            );
        }
        if matches!(input_mode, QuantumInput::Angle) {
            circuit
                .extend(angle_embedding_gates(n_qubits, RotationAxis::Y, 0))
                .expect("embedding wires in range");
        }
        circuit
            .extend(
                strongly_entangling_layers(n_qubits, n_layers, 0, EntangleRange::Ring)
                    .expect("template wires in range"),
            )
            .expect("template wires in range");
        let params = ParamTensor::new(init::angle_uniform(1, circuit.n_params(), rng));
        QuantumLayer {
            circuit,
            input_mode,
            output_mode,
            params,
            cached_input: None,
            exec: ExecPolicy::default(),
        }
    }

    /// Builder-style variant of [`Module::set_exec_policy`].
    pub fn with_exec_policy(mut self, policy: ExecPolicy) -> Self {
        self.exec = policy;
        self
    }

    /// The unified execution policy (threads + backend) in effect.
    pub fn exec_policy(&self) -> ExecPolicy {
        self.exec
    }

    /// Builder-style setter for the threads knob of the execution policy.
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.exec.threads = threads;
        self
    }

    /// The current batch-row parallelism policy.
    pub fn threads(&self) -> Threads {
        self.exec.threads
    }

    /// Builder-style setter for the backend knob of the execution policy.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.exec.backend = backend;
        self
    }

    /// The simulator backend this layer's circuit executes on.
    pub fn backend(&self) -> BackendKind {
        self.exec.backend
    }

    /// Number of wires.
    pub fn n_qubits(&self) -> usize {
        self.circuit.n_qubits()
    }

    /// Width of the input this layer expects.
    pub fn in_features(&self) -> usize {
        match self.input_mode {
            QuantumInput::Amplitude { in_features } => in_features,
            QuantumInput::Angle => self.circuit.n_qubits(),
        }
    }

    /// Width of the output this layer produces.
    pub fn out_features(&self) -> usize {
        match self.output_mode {
            QuantumOutput::ExpectationZ => self.circuit.n_qubits(),
            QuantumOutput::Probabilities => 1 << self.circuit.n_qubits(),
        }
    }

    /// The input mode.
    pub fn input_mode(&self) -> QuantumInput {
        self.input_mode
    }

    /// The output mode.
    pub fn output_mode(&self) -> QuantumOutput {
        self.output_mode
    }

    fn check_width(&self, m: &Matrix) -> Result<(), NnError> {
        if m.cols() != self.in_features() {
            return Err(NnError::ShapeMismatch {
                expected: (m.rows(), self.in_features()),
                actual: m.shape(),
            });
        }
        Ok(())
    }

    /// The amplitude-embedded starting state for `row` (all-zero rows embed
    /// `|0…0⟩` instead — zero vectors carry no information; this keeps
    /// training robust).
    fn embedded_initial(&self, row: &[f64]) -> StateVector {
        match amplitude_embedding(row, self.circuit.n_qubits()) {
            Ok(s) => s,
            Err(_) => StateVector::zero_state(self.circuit.n_qubits()).expect("valid register"),
        }
    }

    /// Lowers the circuit with the **current** trainable angles into a
    /// [`CompiledTape`]. Called once per batch pass; every row then replays
    /// the shared tape. Crate-internal so [`crate::PatchedQuantumLayer`] can
    /// compile one tape per patch and drive the patch × row grid through its
    /// own work-sharding without borrowing the layer mutably.
    pub(crate) fn compile_tape(&self) -> CompiledTape {
        self.circuit
            .compile(self.params.value.as_slice())
            .expect("validated circuit")
    }

    /// One batch row's forward simulation: replays `tape` on the configured
    /// backend (crate-internal for the same reason as
    /// [`Self::compile_tape`]).
    pub(crate) fn forward_row_tape(&self, tape: &CompiledTape, row: &[f64]) -> Vec<f64> {
        match self.exec.backend {
            BackendKind::Dense => self.forward_row_tape_on::<StateVector>(tape, row),
            BackendKind::Fused => self.forward_row_tape_on::<FusedDenseBackend>(tape, row),
            BackendKind::Soa => self.forward_row_tape_on::<SoaDenseBackend>(tape, row),
        }
    }

    /// Like [`Self::forward_row_tape`], but writes the row's outputs into
    /// `slot` through the worker-local `scratch` buffer instead of
    /// returning a fresh `Vec` — the allocation-free per-row body of
    /// [`Module::forward`]'s `fill_rows` sharding (probability readout goes
    /// through [`CompiledTape::probabilities_into_on`], so the `2^n`-wide
    /// buffer is reused across every row a worker owns).
    fn forward_row_tape_into(
        &self,
        tape: &CompiledTape,
        row: &[f64],
        scratch: &mut Vec<f64>,
        slot: &mut [f64],
    ) {
        match self.exec.backend {
            BackendKind::Dense => {
                self.forward_row_tape_into_on::<StateVector>(tape, row, scratch, slot)
            }
            BackendKind::Fused => {
                self.forward_row_tape_into_on::<FusedDenseBackend>(tape, row, scratch, slot)
            }
            BackendKind::Soa => {
                self.forward_row_tape_into_on::<SoaDenseBackend>(tape, row, scratch, slot)
            }
        }
    }

    fn forward_row_tape_into_on<B: Backend>(
        &self,
        tape: &CompiledTape,
        row: &[f64],
        scratch: &mut Vec<f64>,
        slot: &mut [f64],
    ) {
        let (inputs, initial): (&[f64], Option<B>) = match self.input_mode {
            QuantumInput::Amplitude { .. } => {
                (&[], Some(B::from_statevector(self.embedded_initial(row))))
            }
            QuantumInput::Angle => (row, None),
        };
        match self.output_mode {
            QuantumOutput::ExpectationZ => {
                let state = tape
                    .execute_on(inputs, initial.as_ref())
                    .expect("validated circuit");
                for (w, y) in slot.iter_mut().enumerate() {
                    *y = state.expectation_z(w).expect("wire in range");
                }
            }
            QuantumOutput::Probabilities => {
                tape.probabilities_into_on(inputs, initial.as_ref(), scratch)
                    .expect("validated circuit");
                slot.copy_from_slice(scratch);
            }
        }
    }

    fn forward_row_tape_on<B: Backend>(&self, tape: &CompiledTape, row: &[f64]) -> Vec<f64> {
        let (inputs, initial): (&[f64], Option<B>) = match self.input_mode {
            QuantumInput::Amplitude { .. } => {
                (&[], Some(B::from_statevector(self.embedded_initial(row))))
            }
            QuantumInput::Angle => (row, None),
        };
        match self.output_mode {
            QuantumOutput::ExpectationZ => tape
                .expectations_z_on(inputs, initial.as_ref())
                .expect("validated circuit"),
            QuantumOutput::Probabilities => tape
                .probabilities_on(inputs, initial.as_ref())
                .expect("validated circuit"),
        }
    }

    /// One batch row's adjoint backward pass over `tape`, on the configured
    /// backend (crate-internal for the same reason as
    /// [`Self::compile_tape`]).
    pub(crate) fn backward_row_tape(
        &self,
        tape: &CompiledTape,
        row: &[f64],
        upstream: &[f64],
    ) -> CircuitGradients {
        match self.exec.backend {
            BackendKind::Dense => self.backward_row_tape_on::<StateVector>(tape, row, upstream),
            BackendKind::Fused => {
                self.backward_row_tape_on::<FusedDenseBackend>(tape, row, upstream)
            }
            BackendKind::Soa => self.backward_row_tape_on::<SoaDenseBackend>(tape, row, upstream),
        }
    }

    fn backward_row_tape_on<B: Backend>(
        &self,
        tape: &CompiledTape,
        row: &[f64],
        upstream: &[f64],
    ) -> CircuitGradients {
        let (inputs, initial): (&[f64], Option<B>) = match self.input_mode {
            QuantumInput::Amplitude { .. } => {
                (&[], Some(B::from_statevector(self.embedded_initial(row))))
            }
            QuantumInput::Angle => (row, None),
        };
        match self.output_mode {
            QuantumOutput::ExpectationZ => {
                adjoint::backward_expectations_z_tape(tape, inputs, initial.as_ref(), upstream)
            }
            QuantumOutput::Probabilities => {
                adjoint::backward_probabilities_tape(tape, inputs, initial.as_ref(), upstream)
            }
        }
        .expect("validated circuit")
    }

    /// Adds one row's parameter gradients into the accumulated gradient, in
    /// caller-chosen order (the determinism guarantee lives with the caller).
    pub(crate) fn accumulate_param_grads(&mut self, row_grads: &[f64]) {
        for (i, g) in row_grads.iter().enumerate() {
            let cur = self.params.grad.get(0, i);
            self.params.grad.set(0, i, cur + g);
        }
    }
}

impl Module for QuantumLayer {
    fn forward(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        self.check_width(input)?;
        // Lower the circuit once for the whole batch; every row (and every
        // worker thread) replays the same immutable tape by reference.
        // Rows write straight into the output matrix (one worker per
        // contiguous row block), and the probability readout reuses one
        // scratch buffer per worker instead of allocating per row.
        let tape = self.compile_tape();
        let mut out = Matrix::zeros(input.rows(), self.out_features());
        parallel::fill_rows(
            out.as_mut_slice(),
            self.out_features(),
            self.exec.threads,
            Vec::new,
            |r, scratch, slot| self.forward_row_tape_into(&tape, input.row(r), scratch, slot),
        );
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        if grad_output.rows() != input.rows() || grad_output.cols() != self.out_features() {
            return Err(NnError::ShapeMismatch {
                expected: (input.rows(), self.out_features()),
                actual: grad_output.shape(),
            });
        }
        // Recompiled here rather than cached from `forward`: the optimizer
        // may have stepped the angles in between, and compilation is cheap
        // relative to even one row's simulation.
        let tape = self.compile_tape();
        let per_row = parallel::map_rows(input.rows(), self.exec.threads, |r| {
            self.backward_row_tape(&tape, input.row(r), grad_output.row(r))
        });
        // Accumulate in fixed row order so parallel runs reproduce the
        // sequential floating-point sums bit for bit.
        let mut grad_input = Matrix::zeros(per_row.len(), self.in_features());
        for (r, grads) in per_row.iter().enumerate() {
            self.accumulate_param_grads(&grads.params);
            // Input gradients exist only for the differentiable angle
            // embedding; amplitude-embedded raw data gets zeros.
            if matches!(self.input_mode, QuantumInput::Angle) {
                grad_input.row_mut(r).copy_from_slice(&grads.inputs);
            }
        }
        Ok(grad_input)
    }

    fn parameters(&mut self) -> Vec<&mut ParamTensor> {
        vec![&mut self.params]
    }

    fn set_exec_policy(&mut self, policy: ExecPolicy) {
        self.exec = policy;
    }

    #[allow(deprecated)]
    fn set_threads(&mut self, threads: Threads) {
        self.exec.threads = threads;
    }

    #[allow(deprecated)]
    fn set_backend(&mut self, backend: BackendKind) {
        self.exec.backend = backend;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn shapes_for_all_modes() {
        let mut r = rng();
        let amp = QuantumLayer::new(
            3,
            2,
            QuantumInput::Amplitude { in_features: 8 },
            QuantumOutput::ExpectationZ,
            &mut r,
        );
        assert_eq!(amp.in_features(), 8);
        assert_eq!(amp.out_features(), 3);
        let ang = QuantumLayer::new(
            3,
            2,
            QuantumInput::Angle,
            QuantumOutput::Probabilities,
            &mut r,
        );
        assert_eq!(ang.in_features(), 3);
        assert_eq!(ang.out_features(), 8);
    }

    #[test]
    fn forward_produces_bounded_outputs() {
        let mut r = rng();
        let mut layer = QuantumLayer::new(
            3,
            2,
            QuantumInput::Amplitude { in_features: 8 },
            QuantumOutput::ExpectationZ,
            &mut r,
        );
        let x = Matrix::from_fn(4, 8, |i, j| (i * 8 + j) as f64 * 0.1 + 0.1);
        let y = layer.forward(&x).unwrap();
        for &v in y.as_slice() {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn probability_outputs_sum_to_one_per_row() {
        let mut r = rng();
        let mut layer = QuantumLayer::new(
            3,
            1,
            QuantumInput::Angle,
            QuantumOutput::Probabilities,
            &mut r,
        );
        let x = Matrix::from_fn(3, 3, |i, j| 0.2 * (i + j) as f64);
        let y = layer.forward(&x).unwrap();
        for row in 0..3 {
            let s: f64 = y.row(row).iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut r = rng();
        let mut layer = QuantumLayer::new(
            2,
            1,
            QuantumInput::Angle,
            QuantumOutput::ExpectationZ,
            &mut r,
        );
        assert!(layer.forward(&Matrix::zeros(1, 5)).is_err());
        assert!(layer.backward(&Matrix::zeros(1, 2)).is_err()); // before forward
    }

    #[test]
    fn zero_row_amplitude_input_does_not_crash() {
        let mut r = rng();
        let mut layer = QuantumLayer::new(
            2,
            1,
            QuantumInput::Amplitude { in_features: 4 },
            QuantumOutput::ExpectationZ,
            &mut r,
        );
        let x = Matrix::zeros(1, 4);
        let y = layer.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let g = layer.backward(&Matrix::filled(1, 2, 1.0)).unwrap();
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn param_gradients_match_finite_differences() {
        let mut r = rng();
        let mut layer = QuantumLayer::new(
            2,
            1,
            QuantumInput::Amplitude { in_features: 4 },
            QuantumOutput::ExpectationZ,
            &mut r,
        );
        let x = Matrix::from_rows(&[&[0.1, 0.4, 0.2, 0.3], &[0.5, 0.1, 0.1, 0.3]]).unwrap();
        // Loss = sum of outputs.
        let y = layer.forward(&x).unwrap();
        let base = y.sum();
        let ones = Matrix::filled(2, 2, 1.0);
        layer.backward(&ones).unwrap();
        let eps = 1e-6;
        for k in 0..layer.params.len() {
            let mut pert = layer.clone();
            let v = pert.params.value.get(0, k);
            pert.params.value.set(0, k, v + eps);
            let fp = pert.forward(&x).unwrap().sum();
            let fd = (fp - base) / eps;
            let an = layer.params.grad.get(0, k);
            assert!((an - fd).abs() < 1e-4, "param {k}: {an} vs {fd}");
        }
    }

    #[test]
    fn input_gradients_flow_through_angle_embedding() {
        let mut r = rng();
        let mut layer = QuantumLayer::new(
            2,
            1,
            QuantumInput::Angle,
            QuantumOutput::ExpectationZ,
            &mut r,
        );
        let x = Matrix::from_rows(&[&[0.3, -0.6]]).unwrap();
        let y = layer.forward(&x).unwrap();
        let base = y.sum();
        let gin = layer.backward(&Matrix::filled(1, 2, 1.0)).unwrap();
        let eps = 1e-6;
        for c in 0..2 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut l2 = layer.clone();
            l2.cached_input = None;
            let fp = l2.forward(&xp).unwrap().sum();
            let fd = (fp - base) / eps;
            assert!((gin.get(0, c) - fd).abs() < 1e-4, "input {c}");
        }
    }

    #[test]
    fn amplitude_input_gradient_is_zero() {
        let mut r = rng();
        let mut layer = QuantumLayer::new(
            2,
            1,
            QuantumInput::Amplitude { in_features: 4 },
            QuantumOutput::ExpectationZ,
            &mut r,
        );
        layer.forward(&Matrix::filled(1, 4, 0.5)).unwrap();
        let g = layer.backward(&Matrix::filled(1, 2, 1.0)).unwrap();
        assert_eq!(g.frobenius_norm(), 0.0);
    }

    #[test]
    fn threaded_passes_are_bit_identical_to_sequential() {
        let layer_with = |threads: Threads| {
            let mut r = rng();
            QuantumLayer::new(
                3,
                2,
                QuantumInput::Angle,
                QuantumOutput::ExpectationZ,
                &mut r,
            )
            .with_threads(threads)
        };
        let x = Matrix::from_fn(7, 3, |i, j| 0.3 * (i as f64) - 0.2 * (j as f64));
        let g = Matrix::from_fn(7, 3, |i, j| 0.1 * (i + j) as f64 - 0.4);

        let mut seq = layer_with(Threads::Off);
        let y_seq = seq.forward(&x).unwrap();
        let gi_seq = seq.backward(&g).unwrap();

        for threads in [Threads::Fixed(1), Threads::Fixed(3), Threads::Fixed(16)] {
            let mut par = layer_with(threads);
            assert_eq!(par.forward(&x).unwrap(), y_seq, "{threads:?}");
            assert_eq!(par.backward(&g).unwrap(), gi_seq, "{threads:?}");
            assert_eq!(par.params.grad, seq.params.grad, "{threads:?}");
        }
    }

    #[test]
    fn fused_and_soa_backends_match_dense_numerically() {
        for (input, output) in [
            (
                QuantumInput::Amplitude { in_features: 8 },
                QuantumOutput::ExpectationZ,
            ),
            (QuantumInput::Angle, QuantumOutput::Probabilities),
        ] {
            let layer_with = |backend: BackendKind| {
                let mut r = rng();
                QuantumLayer::new(3, 2, input, output, &mut r).with_backend(backend)
            };
            let x = Matrix::from_fn(4, input_width(input), |i, j| {
                0.15 * (i + 1) as f64 + 0.07 * j as f64
            });
            let mut dense = layer_with(BackendKind::Dense);
            let yd = dense.forward(&x).unwrap();
            let g = Matrix::from_fn(4, yd.cols(), |i, j| 0.3 * (i as f64) - 0.1 * (j as f64));
            dense.backward(&g).unwrap();
            for backend in [BackendKind::Fused, BackendKind::Soa] {
                let mut other = layer_with(backend);
                let yo = other.forward(&x).unwrap();
                for (a, b) in yd.as_slice().iter().zip(yo.as_slice()) {
                    assert!((a - b).abs() < 1e-12, "{backend} forward {a} vs {b}");
                }
                other.backward(&g).unwrap();
                for (a, b) in dense
                    .params
                    .grad
                    .as_slice()
                    .iter()
                    .zip(other.params.grad.as_slice())
                {
                    assert!((a - b).abs() < 1e-12, "{backend} grad {a} vs {b}");
                }
            }
        }
    }

    fn input_width(input: QuantumInput) -> usize {
        match input {
            QuantumInput::Amplitude { in_features } => in_features,
            QuantumInput::Angle => 3,
        }
    }

    #[test]
    fn paper_parameter_count() {
        // 3 layers × 6 qubits × 3 = 54 per network; ×2 networks = 108.
        let mut r = rng();
        let mut enc = QuantumLayer::new(
            6,
            3,
            QuantumInput::Amplitude { in_features: 64 },
            QuantumOutput::ExpectationZ,
            &mut r,
        );
        let mut dec = QuantumLayer::new(
            6,
            3,
            QuantumInput::Angle,
            QuantumOutput::Probabilities,
            &mut r,
        );
        assert_eq!(enc.parameter_count() + dec.parameter_count(), 108);
    }
}
