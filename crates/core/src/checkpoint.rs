//! Model checkpointing: persist a trained [`Autoencoder`] and rebuild it.
//!
//! A checkpoint is a self-describing binary file:
//!
//! ```text
//! magic "SQVAECKP" (8 bytes)
//! format version   (u32 LE)
//! body length      (u64 LE)
//! body             (see below)
//! FNV-1a-64 of body (u64 LE)
//! ```
//!
//! The body carries the model name, the [`ModelSpec`] architecture tag (so
//! loading can call the same `models::*` factory that built the model), the
//! simulator backend it ran on, the RNG seed recorded at save time, and the
//! parameter tensors of both optimizer groups. Floats travel as IEEE-754
//! bit patterns ([`sqvae_nn::serialize`]), so a save → load round trip
//! reconstructs **bit-identically** — `reconstruct` on the loaded model
//! produces the same bits as on the original.
//!
//! Corrupt input is a typed [`CheckpointError`], never a panic: truncation
//! surfaces as [`CheckpointError::Io`] (`UnexpectedEof`), bit flips as
//! [`CheckpointError::ChecksumMismatch`], format drift as
//! [`CheckpointError::UnsupportedVersion`].
//!
//! Saves are **crash-safe**: [`Checkpoint::save`] writes a temp sibling,
//! fsyncs it, and renames it into place, keeping the previous generation
//! as `<path>.bak`; [`Checkpoint::load_or_recover`] falls back to that
//! backup when the primary is corrupt or missing. A crash at any moment of
//! a save therefore never destroys the last good checkpoint.
//!
//! ## Example: save, reload, verify
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use sqvae_core::checkpoint::Checkpoint;
//! use sqvae_core::models;
//! use sqvae_nn::Matrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut model = models::sq_ae(16, 2, 1, &mut rng);
//! let ckpt = Checkpoint::capture(&mut model, 7)?;
//! let mut bytes = Vec::new();
//! ckpt.write_to(&mut bytes)?;
//!
//! let mut reloaded = Checkpoint::read_from(&bytes[..])?.build_model()?;
//! let x = Matrix::filled(2, 16, 0.5);
//! assert_eq!(model.reconstruct(&x)?, reloaded.reconstruct(&x)?);
//! # Ok(())
//! # }
//! ```

use crate::autoencoder::Autoencoder;
use crate::faults::{self, FaultPoint};
use crate::hybrid::ParamGroup;
use crate::models::ModelSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_nn::serialize::{
    read_matrix, read_string, read_u32, read_u64, write_matrix, write_string, write_u32, write_u64,
};
use sqvae_nn::{BackendKind, ExecPolicy, Matrix};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic identifying a checkpoint.
pub const MAGIC: [u8; 8] = *b"SQVAECKP";

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// Upper bound on the serialized body (1 GiB) — rejects absurd headers
/// before any allocation.
pub const MAX_BODY_BYTES: u64 = 1 << 30;

/// Upper bound on the tensor count per parameter group.
pub const MAX_TENSORS_PER_GROUP: u32 = 1 << 16;

/// Everything that can go wrong saving or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure; truncated files surface as `UnexpectedEof`.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The body's FNV-1a-64 digest does not match the stored one.
    ChecksumMismatch,
    /// Structurally invalid content (bad tags, trailing bytes, caps
    /// exceeded); the message says what.
    Corrupt(String),
    /// The model was assembled by hand, not a `models::*` factory, so it
    /// carries no [`ModelSpec`] and cannot be rebuilt from a file.
    MissingSpec,
    /// A stored tensor's shape differs from the target model's tensor.
    ShapeMismatch {
        /// Which optimizer group the tensor belongs to.
        group: ParamGroup,
        /// Index of the tensor within its group.
        index: usize,
        /// Shape the target model expects.
        expected: (usize, usize),
        /// Shape found in the snapshot.
        found: (usize, usize),
    },
    /// The snapshot holds a different number of tensors than the target.
    TensorCountMismatch {
        /// Which optimizer group mismatched.
        group: ParamGroup,
        /// Tensor count the target model expects.
        expected: usize,
        /// Tensor count found in the snapshot.
        found: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => write!(
                f,
                "checkpoint format version {found} is newer than the supported {FORMAT_VERSION}"
            ),
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint body does not match its checksum")
            }
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            CheckpointError::MissingSpec => write!(
                f,
                "model has no architecture spec (not built by a models::* factory)"
            ),
            CheckpointError::ShapeMismatch {
                group,
                index,
                expected,
                found,
            } => write!(
                f,
                "{group:?} tensor {index}: model expects {}x{}, checkpoint has {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            CheckpointError::TensorCountMismatch {
                group,
                expected,
                found,
            } => write!(
                f,
                "{group:?} group: model has {expected} tensors, checkpoint has {found}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a 64-bit digest — tiny, dependency-free corruption detection (not
/// cryptographic).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A copy of a model's parameter values, split by optimizer group.
///
/// Used in two roles: the payload of a [`Checkpoint`], and a lightweight
/// in-memory snapshot for the trainer's best-weights restore (no
/// architecture metadata needed when the target is the same live model).
#[derive(Debug, Clone)]
pub struct ParamSnapshot {
    quantum: Vec<Matrix>,
    classical: Vec<Matrix>,
}

impl ParamSnapshot {
    /// Copies the current parameter values out of `model`.
    pub fn capture(model: &mut Autoencoder) -> Self {
        let quantum = model
            .parameters_of(ParamGroup::Quantum)
            .iter()
            .map(|p| p.value.clone())
            .collect();
        let classical = model
            .parameters_of(ParamGroup::Classical)
            .iter()
            .map(|p| p.value.clone())
            .collect();
        ParamSnapshot { quantum, classical }
    }

    /// Writes the snapshot's values back into `model`, group by group.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::TensorCountMismatch`] / [`CheckpointError::ShapeMismatch`]
    /// when `model`'s architecture differs from the snapshot's origin; the
    /// model is untouched in that case.
    pub fn restore(&self, model: &mut Autoencoder) -> Result<(), CheckpointError> {
        // Validate both groups fully before mutating anything.
        for (group, stored) in [
            (ParamGroup::Quantum, &self.quantum),
            (ParamGroup::Classical, &self.classical),
        ] {
            let params = model.parameters_of(group);
            if params.len() != stored.len() {
                return Err(CheckpointError::TensorCountMismatch {
                    group,
                    expected: params.len(),
                    found: stored.len(),
                });
            }
            for (index, (p, s)) in params.iter().zip(stored).enumerate() {
                if p.value.shape() != s.shape() {
                    return Err(CheckpointError::ShapeMismatch {
                        group,
                        index,
                        expected: p.value.shape(),
                        found: s.shape(),
                    });
                }
            }
        }
        for (group, stored) in [
            (ParamGroup::Quantum, &self.quantum),
            (ParamGroup::Classical, &self.classical),
        ] {
            for (p, s) in model.parameters_of(group).into_iter().zip(stored) {
                p.value = s.clone();
            }
        }
        Ok(())
    }

    fn write_group(w: &mut impl Write, group: &[Matrix]) -> io::Result<()> {
        write_u32(w, group.len() as u32)?;
        for m in group {
            write_matrix(w, m)?;
        }
        Ok(())
    }

    fn read_group(r: &mut impl Read) -> Result<Vec<Matrix>, CheckpointError> {
        let n = read_u32(r)?;
        if n > MAX_TENSORS_PER_GROUP {
            return Err(CheckpointError::Corrupt(format!(
                "{n} tensors in one group exceeds the cap"
            )));
        }
        let mut v = Vec::with_capacity(n as usize);
        for _ in 0..n {
            v.push(read_matrix(r)?);
        }
        Ok(v)
    }
}

/// A saved model: architecture descriptor, execution metadata, and the
/// trained parameter tensors.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Human-readable model name (e.g. `"SQ-VAE(p=8,lsd=56)"`).
    pub name: String,
    /// Architecture descriptor; [`Checkpoint::build_model`] feeds it back
    /// through the factory that built the original.
    pub spec: ModelSpec,
    /// Simulator backend the model ran on; restored on load. (Thread policy
    /// is machine-local and deliberately *not* persisted.)
    pub backend: BackendKind,
    /// RNG seed recorded by the caller at save time (provenance metadata —
    /// e.g. the training seed; not consumed on load).
    pub seed: u64,
    /// The parameter tensors of both optimizer groups.
    pub params: ParamSnapshot,
}

impl Checkpoint {
    /// Snapshots `model` into a checkpoint, recording `seed` as provenance.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::MissingSpec`] when the model was not built by a
    /// `models::*` factory (nothing records its architecture).
    pub fn capture(model: &mut Autoencoder, seed: u64) -> Result<Self, CheckpointError> {
        let spec = model.spec().ok_or(CheckpointError::MissingSpec)?;
        Ok(Checkpoint {
            name: model.name.clone(),
            spec,
            backend: model.exec_policy().backend,
            seed,
            params: ParamSnapshot::capture(model),
        })
    }

    /// Rebuilds the model this checkpoint describes: factory-construct from
    /// the spec, overwrite every parameter with the saved tensors, restore
    /// the saved backend (threads come from the environment — a
    /// machine-local choice).
    ///
    /// # Errors
    ///
    /// Propagates [`ParamSnapshot::restore`] errors; impossible for a
    /// checkpoint produced by [`Checkpoint::capture`] unless the factory
    /// definitions changed since the file was written.
    pub fn build_model(&self) -> Result<Autoencoder, CheckpointError> {
        // The seed only places throwaway initial values; restore overwrites
        // every tensor. Reusing the recorded seed keeps the build fully
        // deterministic anyway.
        let mut model = self.spec.build(&mut StdRng::seed_from_u64(self.seed));
        self.params.restore(&mut model)?;
        model.set_exec_policy(ExecPolicy::from_env().with_backend(self.backend));
        Ok(model)
    }

    /// Serializes the checkpoint to `w` (magic, version, body, checksum).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to(&self, mut w: impl Write) -> Result<(), CheckpointError> {
        let mut body = Vec::new();
        write_string(&mut body, &self.name)?;
        write_string(&mut body, &self.spec.to_string())?;
        write_string(&mut body, self.backend.name())?;
        write_u64(&mut body, self.seed)?;
        ParamSnapshot::write_group(&mut body, &self.params.quantum)?;
        ParamSnapshot::write_group(&mut body, &self.params.classical)?;

        w.write_all(&MAGIC)?;
        write_u32(&mut w, FORMAT_VERSION)?;
        write_u64(&mut w, body.len() as u64)?;
        w.write_all(&body)?;
        write_u64(&mut w, fnv1a64(&body))?;
        Ok(())
    }

    /// Deserializes a checkpoint written by [`Checkpoint::write_to`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`], [`CheckpointError::UnsupportedVersion`],
    /// [`CheckpointError::ChecksumMismatch`], [`CheckpointError::Corrupt`],
    /// or [`CheckpointError::Io`] (truncation → `UnexpectedEof`).
    pub fn read_from(mut r: impl Read) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version > FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let body_len = read_u64(&mut r)?;
        if body_len > MAX_BODY_BYTES {
            return Err(CheckpointError::Corrupt(format!(
                "body length {body_len} exceeds the cap"
            )));
        }
        let mut body = vec![0u8; body_len as usize];
        r.read_exact(&mut body)?;
        let stored_digest = read_u64(&mut r)?;
        if fnv1a64(&body) != stored_digest {
            return Err(CheckpointError::ChecksumMismatch);
        }

        let mut b: &[u8] = &body;
        let name = read_string(&mut b)?;
        let spec_tag = read_string(&mut b)?;
        let spec: ModelSpec = spec_tag.parse().map_err(CheckpointError::Corrupt)?;
        let backend_tag = read_string(&mut b)?;
        let backend: BackendKind = backend_tag
            .parse()
            .map_err(|e: String| CheckpointError::Corrupt(e))?;
        let seed = read_u64(&mut b)?;
        let quantum = ParamSnapshot::read_group(&mut b)?;
        let classical = ParamSnapshot::read_group(&mut b)?;
        if !b.is_empty() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after the last tensor",
                b.len()
            )));
        }
        Ok(Checkpoint {
            name,
            spec,
            backend,
            seed,
            params: ParamSnapshot { quantum, classical },
        })
    }

    /// Writes the checkpoint to `path` **crash-safely**: the bytes go to a
    /// sibling temp file first, are fsynced, and only then renamed over
    /// `path` — a crash at any instant leaves either the old generation or
    /// the new one, never a torn file. The previous generation (when one
    /// exists) survives as `<path>.bak`, which [`Checkpoint::load_or_recover`]
    /// falls back on if the primary is later found corrupt.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a failed save leaves the previous
    /// checkpoint at `path` untouched.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let tmp = tmp_path(path);
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            self.write_to(&mut w)?;
            w.flush()?;
            // Durability point: the temp file's bytes hit the disk before
            // any rename makes them visible under the real name.
            w.get_ref().sync_all()?;
        }
        // Keep one backup generation: the current primary (if any) becomes
        // `<path>.bak` before the new file takes its name.
        match fs::rename(path, backup_path(path)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        fs::rename(&tmp, path)?;
        // Make the renames durable too, where the platform allows opening
        // a directory (errors here are ignored: the data itself is synced).
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        inject_save_faults(path)?;
        Ok(())
    }

    /// Reads a checkpoint from the file at `path` (buffered).
    ///
    /// # Errors
    ///
    /// See [`Checkpoint::read_from`]; plus filesystem errors opening the
    /// file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        Checkpoint::read_from(BufReader::new(File::open(path)?))
    }

    /// Loads the checkpoint at `path`, falling back to its `.bak`
    /// generation when the primary is **corrupt** (bad magic, checksum
    /// mismatch, truncation, structural damage — the debris a crash mid-save
    /// or a torn write leaves behind). Reports which file answered.
    ///
    /// A *missing* primary also tries the backup: a crash between the two
    /// renames of [`Checkpoint::save`] leaves exactly that state.
    ///
    /// # Errors
    ///
    /// The primary's error when no backup exists or the backup is also
    /// unreadable, so callers see the most specific diagnosis.
    pub fn load_or_recover(
        path: impl AsRef<Path>,
    ) -> Result<(Self, RecoverySource), CheckpointError> {
        let path = path.as_ref();
        let primary_err = match Checkpoint::load(path) {
            Ok(ckpt) => return Ok((ckpt, RecoverySource::Primary)),
            Err(e) if e.is_corruption() || is_not_found(&e) => e,
            Err(e) => return Err(e),
        };
        match Checkpoint::load(backup_path(path)) {
            Ok(ckpt) => Ok((ckpt, RecoverySource::Backup)),
            Err(_) => Err(primary_err),
        }
    }
}

/// Which file satisfied a [`Checkpoint::load_or_recover`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// The primary checkpoint was intact.
    Primary,
    /// The primary was corrupt or missing; the `.bak` generation answered.
    Backup,
}

impl CheckpointError {
    /// Whether this error means the file's *content* is damaged (as opposed
    /// to absent, unreadable for I/O reasons, or architecturally
    /// incompatible) — the class of failure a `.bak` generation can heal.
    pub fn is_corruption(&self) -> bool {
        match self {
            CheckpointError::BadMagic
            | CheckpointError::ChecksumMismatch
            | CheckpointError::Corrupt(_) => true,
            // A truncated file runs out of bytes mid-read.
            CheckpointError::Io(e) => e.kind() == io::ErrorKind::UnexpectedEof,
            _ => false,
        }
    }
}

fn is_not_found(e: &CheckpointError) -> bool {
    matches!(e, CheckpointError::Io(io) if io.kind() == io::ErrorKind::NotFound)
}

/// The sibling path where [`Checkpoint::save`] parks the previous
/// generation: `<path>.bak`.
pub fn backup_path(path: impl AsRef<Path>) -> PathBuf {
    let mut p = path.as_ref().as_os_str().to_owned();
    p.push(".bak");
    PathBuf::from(p)
}

/// The scratch path [`Checkpoint::save`] writes before the atomic rename.
fn tmp_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".tmp");
    PathBuf::from(p)
}

/// Chaos hook: after a save lands, optionally damage the primary file the
/// way a torn write would — a deterministic bit flip or truncation driven
/// by the installed [`crate::faults`] plan. A no-op unless a plan with a
/// nonzero checkpoint rate is active.
fn inject_save_faults(path: &Path) -> Result<(), CheckpointError> {
    if !faults::active() {
        return Ok(());
    }
    if let Some(payload) = faults::trigger(FaultPoint::CheckpointFlip) {
        let len = fs::metadata(path)?.len();
        if len > 0 {
            let mut f = OpenOptions::new().read(true).write(true).open(path)?;
            let offset = payload % len;
            f.seek(SeekFrom::Start(offset))?;
            let mut byte = [0u8; 1];
            f.read_exact(&mut byte)?;
            byte[0] ^= 1 << ((payload >> 32) % 8) as u8;
            f.seek(SeekFrom::Start(offset))?;
            f.write_all(&byte)?;
        }
    }
    if let Some(payload) = faults::trigger(FaultPoint::CheckpointTruncate) {
        let len = fs::metadata(path)?.len();
        if len > 0 {
            let keep = payload % len;
            OpenOptions::new().write(true).open(path)?.set_len(keep)?;
        }
    }
    Ok(())
}

/// Convenience: snapshot `model` (recording `seed`) and save it to `path`.
///
/// # Errors
///
/// See [`Checkpoint::capture`] and [`Checkpoint::save`].
pub fn save_model(
    model: &mut Autoencoder,
    seed: u64,
    path: impl AsRef<Path>,
) -> Result<(), CheckpointError> {
    Checkpoint::capture(model, seed)?.save(path)
}

/// Convenience: load the checkpoint at `path` and rebuild its model.
///
/// # Errors
///
/// See [`Checkpoint::load`] and [`Checkpoint::build_model`].
pub fn load_model(path: impl AsRef<Path>) -> Result<Autoencoder, CheckpointError> {
    Checkpoint::load(path)?.build_model()
}

/// Convenience: [`Checkpoint::load_or_recover`] + rebuild — the loader the
/// serving stack uses, so a corrupted primary heals from `.bak` instead of
/// failing every request that targets it.
///
/// # Errors
///
/// See [`Checkpoint::load_or_recover`] and [`Checkpoint::build_model`].
pub fn load_model_or_recover(
    path: impl AsRef<Path>,
) -> Result<(Autoencoder, RecoverySource), CheckpointError> {
    let (ckpt, source) = Checkpoint::load_or_recover(path)?;
    Ok((ckpt.build_model()?, source))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn model() -> Autoencoder {
        models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(3))
    }

    fn checkpoint_bytes() -> Vec<u8> {
        let mut m = model();
        let mut bytes = Vec::new();
        Checkpoint::capture(&mut m, 3)
            .unwrap()
            .write_to(&mut bytes)
            .unwrap();
        bytes
    }

    #[test]
    fn round_trip_preserves_metadata_and_bits() {
        let mut m = model();
        let ckpt = Checkpoint::capture(&mut m, 42).unwrap();
        let mut bytes = Vec::new();
        ckpt.write_to(&mut bytes).unwrap();
        let back = Checkpoint::read_from(&bytes[..]).unwrap();
        assert_eq!(back.name, m.name);
        assert_eq!(back.spec, m.spec().unwrap());
        assert_eq!(back.seed, 42);
        assert_eq!(back.backend, BackendKind::Dense);
        for (a, b) in ckpt.params.quantum.iter().zip(&back.params.quantum) {
            assert_eq!(a, b);
        }
        let mut rebuilt = back.build_model().unwrap();
        let x = Matrix::from_fn(3, 16, |r, c| (r * 16 + c) as f64 / 48.0);
        let y0 = m.reconstruct(&x).unwrap();
        let y1 = rebuilt.reconstruct(&x).unwrap();
        for (a, b) in y0.as_slice().iter().zip(y1.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn handmade_models_cannot_be_captured() {
        let mut m = Autoencoder::new(
            "handmade",
            crate::hybrid::HybridStack::new(),
            crate::latent::Latent::Identity,
            crate::hybrid::HybridStack::new(),
        );
        assert!(matches!(
            Checkpoint::capture(&mut m, 0),
            Err(CheckpointError::MissingSpec)
        ));
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = checkpoint_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Checkpoint::read_from(&bytes[..]),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = checkpoint_bytes();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Checkpoint::read_from(&bytes[..]),
            Err(CheckpointError::UnsupportedVersion { found }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn bit_flip_in_body_fails_the_checksum() {
        let mut bytes = checkpoint_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            Checkpoint::read_from(&bytes[..]),
            Err(CheckpointError::ChecksumMismatch)
        ));
    }

    #[test]
    fn truncation_is_an_io_error() {
        let bytes = checkpoint_bytes();
        for cut in [4, 12, 19, bytes.len() - 1] {
            let err = Checkpoint::read_from(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(&err, CheckpointError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn restore_rejects_architecture_mismatch() {
        let mut m = model();
        let ckpt = Checkpoint::capture(&mut m, 0).unwrap();
        // Same factory family, different width: tensor shapes differ.
        let mut other = models::sq_vae(32, 2, 1, &mut StdRng::seed_from_u64(0));
        let before = ParamSnapshot::capture(&mut other);
        let err = ckpt.params.restore(&mut other).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::ShapeMismatch { .. } | CheckpointError::TensorCountMismatch { .. }
        ));
        // Failed restore must leave the target untouched.
        let after = ParamSnapshot::capture(&mut other);
        for (a, b) in before.quantum.iter().zip(&after.quantum) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn snapshot_restore_round_trips_on_the_live_model() {
        let mut m = model();
        let snap = ParamSnapshot::capture(&mut m);
        // Perturb every parameter, then restore.
        for p in m.parameters_of(ParamGroup::Quantum) {
            for v in p.value.as_mut_slice() {
                *v += 1.0;
            }
        }
        for p in m.parameters_of(ParamGroup::Classical) {
            for v in p.value.as_mut_slice() {
                *v -= 0.5;
            }
        }
        snap.restore(&mut m).unwrap();
        let now = ParamSnapshot::capture(&mut m);
        for (a, b) in snap.quantum.iter().zip(&now.quantum) {
            assert_eq!(a, b);
        }
        for (a, b) in snap.classical.iter().zip(&now.classical) {
            assert_eq!(a, b);
        }
    }

    fn temp_ckpt(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sqvae-checkpoint-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = fs::remove_file(&p);
        let _ = fs::remove_file(backup_path(&p));
        p
    }

    #[test]
    fn save_is_atomic_and_keeps_a_backup_generation() {
        let path = temp_ckpt("atomic.ckpt");
        let mut m = model();
        save_model(&mut m, 1, &path).unwrap();
        assert!(path.exists());
        assert!(
            !backup_path(&path).exists(),
            "first save has no previous generation"
        );
        let gen1 = fs::read(&path).unwrap();

        save_model(&mut m, 2, &path).unwrap();
        assert_eq!(
            fs::read(backup_path(&path)).unwrap(),
            gen1,
            "second save must park generation 1 as .bak"
        );
        // No scratch debris survives a completed save.
        assert!(!tmp_path(&path).exists());
    }

    #[test]
    fn load_or_recover_falls_back_to_backup_on_corruption() {
        let path = temp_ckpt("recover.ckpt");
        let mut m = model();
        // Two saves of the same model: primary and .bak hold identical bits.
        save_model(&mut m, 5, &path).unwrap();
        save_model(&mut m, 5, &path).unwrap();

        let (_, source) = Checkpoint::load_or_recover(&path).unwrap();
        assert_eq!(source, RecoverySource::Primary);

        // Torn write: flip a body byte in the primary.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        assert!(Checkpoint::load(&path).unwrap_err().is_corruption());
        let (ckpt, source) = Checkpoint::load_or_recover(&path).unwrap();
        assert_eq!(source, RecoverySource::Backup);
        assert_eq!(ckpt.seed, 5);
        // The recovered model reconstructs bit-identically to the original.
        let mut rebuilt = ckpt.build_model().unwrap();
        let x = Matrix::filled(2, 16, 0.25);
        let (a, b) = (m.reconstruct(&x).unwrap(), rebuilt.reconstruct(&x).unwrap());
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(u.to_bits(), v.to_bits());
        }

        // Truncation (crash mid-write of the primary) recovers the same way.
        let full = fs::read(backup_path(&path)).unwrap();
        fs::write(&path, &full[..full.len() / 3]).unwrap();
        let (_, source) = Checkpoint::load_or_recover(&path).unwrap();
        assert_eq!(source, RecoverySource::Backup);

        // A missing primary (crash between the two renames) also recovers.
        fs::remove_file(&path).unwrap();
        let (_, source) = Checkpoint::load_or_recover(&path).unwrap();
        assert_eq!(source, RecoverySource::Backup);
    }

    #[test]
    fn load_or_recover_reports_the_primary_error_when_backup_is_absent() {
        let path = temp_ckpt("no-backup.ckpt");
        let mut m = model();
        save_model(&mut m, 7, &path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let err = Checkpoint::load_or_recover(&path).unwrap_err();
        assert!(err.is_corruption(), "got {err:?}");
        // Architecture-level errors are not recoverable corruption.
        assert!(!CheckpointError::MissingSpec.is_corruption());
        assert!(!CheckpointError::UnsupportedVersion { found: 9 }.is_corruption());
    }

    #[test]
    fn leftover_tmp_from_a_crashed_save_is_overwritten() {
        let path = temp_ckpt("tmpdebris.ckpt");
        // A crash after creating the temp file but before the rename leaves
        // debris; the next save must simply write over it.
        fs::write(tmp_path(&path), b"half-written garbage").unwrap();
        let mut m = model();
        save_model(&mut m, 9, &path).unwrap();
        assert!(!tmp_path(&path).exists());
        assert!(Checkpoint::load(&path).is_ok());
    }

    #[test]
    fn failed_save_leaves_the_previous_checkpoint_untouched() {
        let path = temp_ckpt("failsafe.ckpt");
        let mut m = model();
        save_model(&mut m, 11, &path).unwrap();
        let before = fs::read(&path).unwrap();
        // Occupy the temp name with a directory: the save fails at the
        // scratch-file stage, before anything touches the primary.
        let tmp = tmp_path(&path);
        fs::create_dir_all(&tmp).unwrap();
        assert!(save_model(&mut m, 12, &path).is_err());
        assert_eq!(fs::read(&path).unwrap(), before);
        fs::remove_dir(&tmp).unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            CheckpointError::BadMagic.to_string(),
            CheckpointError::UnsupportedVersion { found: 9 }.to_string(),
            CheckpointError::ChecksumMismatch.to_string(),
            CheckpointError::MissingSpec.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
