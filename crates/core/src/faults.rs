//! Deterministic fault injection for chaos testing.
//!
//! Production hardening is only trustworthy when the failure paths run
//! under test. This module provides seed-driven **injection points** that
//! the serving and training stacks consult at the moments where real
//! systems break:
//!
//! * [`FaultPoint::WorkerPanic`] — the inference worker panics mid-batch
//!   (exercises the supervisor + [`WorkerGone`] paths).
//! * [`FaultPoint::QueueSaturation`] — a submission is refused as if the
//!   bounded queue were full (exercises backpressure + client retry).
//! * [`FaultPoint::CheckpointFlip`] / [`FaultPoint::CheckpointTruncate`] —
//!   a just-written checkpoint is bit-flipped / truncated, simulating a
//!   torn write (exercises checksum detection + `.bak` recovery).
//! * [`FaultPoint::NanLoss`] — a training batch reports a non-finite loss
//!   (exercises the trainer's snapshot rollback guard).
//!
//! ## Determinism
//!
//! Every point draws from its **own** `StdRng` stream seeded from
//! `plan.seed ^ point-index`, so whether (say) the third checkpoint save is
//! corrupted does not depend on how many worker batches ran in between, or
//! on thread interleaving at other points. Re-running with the same plan
//! and the same per-point call sequence reproduces the same faults.
//!
//! Call sites that run inside an identified serving worker consult
//! [`trigger_for`] with their worker index; each `(point, worker)` pair
//! then owns an independent stream, so pool-size changes or cross-worker
//! interleaving never shift another worker's fault schedule. A plan can
//! also be pinned to a single worker ([`FaultPlan::with_worker`], spec key
//! `worker=N`), which is how the chaos suite kills exactly one member of a
//! pool while its siblings keep serving.
//!
//! ## Cost when disabled
//!
//! No plan installed (the default) means every [`trigger`] call is a single
//! relaxed atomic load followed by an immediate return — the hot paths pay
//! effectively nothing, and none of the failure machinery runs.
//!
//! ## Enabling
//!
//! Programmatically ([`install`] / [`clear`], or the RAII [`FaultScope`]),
//! or from the environment: `SQVAE_FAULTS="seed=42,worker_panic=0.25,
//! queue_saturation=0.1,checkpoint_flip=0.5,checkpoint_truncate=0.1,
//! nan_loss=0.2"` (missing rates default to 0; `SQVAE_FAULTS=on` installs
//! [`FaultPlan::chaos`] with seed 42). Call [`install_from_env`] at
//! process start — the chaos integration test and CI leg do.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Panic the serving worker thread at the top of a batch.
    WorkerPanic,
    /// Refuse a submission as if the bounded queue were at capacity.
    QueueSaturation,
    /// Flip one bit of a checkpoint file right after it is saved.
    CheckpointFlip,
    /// Truncate a checkpoint file right after it is saved.
    CheckpointTruncate,
    /// Replace one training batch's loss with NaN.
    NanLoss,
}

/// Number of distinct [`FaultPoint`]s.
pub const N_FAULT_POINTS: usize = 5;

/// Every point, in index order.
pub const ALL_FAULT_POINTS: [FaultPoint; N_FAULT_POINTS] = [
    FaultPoint::WorkerPanic,
    FaultPoint::QueueSaturation,
    FaultPoint::CheckpointFlip,
    FaultPoint::CheckpointTruncate,
    FaultPoint::NanLoss,
];

impl FaultPoint {
    fn index(self) -> usize {
        match self {
            FaultPoint::WorkerPanic => 0,
            FaultPoint::QueueSaturation => 1,
            FaultPoint::CheckpointFlip => 2,
            FaultPoint::CheckpointTruncate => 3,
            FaultPoint::NanLoss => 4,
        }
    }

    /// The key this point uses in the `SQVAE_FAULTS` spec.
    pub fn key(self) -> &'static str {
        match self {
            FaultPoint::WorkerPanic => "worker_panic",
            FaultPoint::QueueSaturation => "queue_saturation",
            FaultPoint::CheckpointFlip => "checkpoint_flip",
            FaultPoint::CheckpointTruncate => "checkpoint_truncate",
            FaultPoint::NanLoss => "nan_loss",
        }
    }
}

/// Per-point firing probabilities plus the master seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed; each point derives its own stream from it.
    pub seed: u64,
    /// Firing probability per point, in [`ALL_FAULT_POINTS`] index order.
    pub rates: [f64; N_FAULT_POINTS],
    /// When set, worker-indexed consultations ([`trigger_for`] with
    /// `Some(w)`) only fire for this worker index; worker-agnostic call
    /// sites ([`trigger`]) are unaffected. `None` (the default) fires for
    /// every worker.
    pub worker_filter: Option<usize>,
}

impl Default for FaultPlan {
    /// All rates zero — installing it injects nothing.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            rates: [0.0; N_FAULT_POINTS],
            worker_filter: None,
        }
    }
}

impl FaultPlan {
    /// A plan that fires nothing (same as `Default`).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A moderately hostile default: occasional worker panics, queue
    /// refusals, checkpoint corruption, and NaN losses.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan::quiet(seed)
            .with_rate(FaultPoint::WorkerPanic, 0.25)
            .with_rate(FaultPoint::QueueSaturation, 0.10)
            .with_rate(FaultPoint::CheckpointFlip, 0.50)
            .with_rate(FaultPoint::CheckpointTruncate, 0.10)
            .with_rate(FaultPoint::NanLoss, 0.20)
    }

    /// Returns the plan with `point`'s firing probability set to `rate`.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1]`.
    pub fn with_rate(mut self, point: FaultPoint, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate {rate} outside [0, 1]"
        );
        self.rates[point.index()] = rate;
        self
    }

    /// The firing probability configured for `point`.
    pub fn rate(&self, point: FaultPoint) -> f64 {
        self.rates[point.index()]
    }

    /// Returns the plan restricted to serving worker `worker`: only
    /// [`trigger_for`] consultations carrying that index fire.
    /// Worker-agnostic [`trigger`] call sites keep firing normally.
    pub fn with_worker(mut self, worker: usize) -> Self {
        self.worker_filter = Some(worker);
        self
    }

    /// Parses a `SQVAE_FAULTS`-style spec: comma-separated `key=value`
    /// pairs (`seed`, `worker` for [`FaultPlan::with_worker`], plus any
    /// [`FaultPoint::key`]), or the literal `on` / `1` for
    /// [`FaultPlan::chaos`] with seed 42.
    ///
    /// # Errors
    ///
    /// A message naming the offending token and the accepted keys.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("on") || spec == "1" {
            return Ok(FaultPlan::chaos(42));
        }
        let mut plan = FaultPlan::default();
        for token in spec.split(',').filter(|t| !t.trim().is_empty()) {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("fault token `{token}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("fault seed `{value}` is not a u64"))?;
                continue;
            }
            if key == "worker" {
                plan.worker_filter = Some(
                    value
                        .parse()
                        .map_err(|_| format!("fault worker `{value}` is not an index"))?,
                );
                continue;
            }
            let point = ALL_FAULT_POINTS
                .iter()
                .copied()
                .find(|p| p.key() == key)
                .ok_or_else(|| {
                    format!(
                        "unknown fault point `{key}` (accepted: seed, worker, worker_panic, \
                         queue_saturation, checkpoint_flip, checkpoint_truncate, nan_loss)"
                    )
                })?;
            let rate: f64 = value
                .parse()
                .map_err(|_| format!("fault rate `{value}` for `{key}` is not a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} for `{key}` outside [0, 1]"));
            }
            plan = plan.with_rate(point, rate);
        }
        Ok(plan)
    }

    /// Reads the plan from `SQVAE_FAULTS`. Unset → `None`; a malformed
    /// value warns once on stderr and counts as unset (matching the
    /// `SQVAE_THREADS` / `SQVAE_BACKEND` typo policy).
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("SQVAE_FAULTS").ok()?;
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(msg) => {
                eprintln!("sqvae: ignoring SQVAE_FAULTS={spec:?}: {msg}");
                None
            }
        }
    }
}

/// How often each point was consulted and how often it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// [`trigger`] calls per point, index order of [`ALL_FAULT_POINTS`].
    pub checked: [u64; N_FAULT_POINTS],
    /// Faults actually injected per point.
    pub fired: [u64; N_FAULT_POINTS],
}

impl FaultStats {
    /// Injections recorded at `point`.
    pub fn fired_at(&self, point: FaultPoint) -> u64 {
        self.fired[point.index()]
    }

    /// [`trigger`] consultations recorded at `point`.
    pub fn checked_at(&self, point: FaultPoint) -> u64 {
        self.checked[point.index()]
    }

    /// Total injections across every point.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

struct Injector {
    plan: FaultPlan,
    /// One lazily-created stream per `(point, worker)` pair; `None` is the
    /// worker-agnostic stream every pre-pool call site keeps using (its
    /// seed derivation is unchanged, so existing plans reproduce the same
    /// schedules).
    rngs: HashMap<(usize, Option<usize>), StdRng>,
    stats: FaultStats,
}

/// Seed of the `(point, worker)` stream. Worker-agnostic streams keep the
/// historical `plan.seed ^ point-tag` derivation; worker-indexed streams
/// mix the index in with a golden-ratio multiply so adjacent workers land
/// far apart.
fn stream_seed(plan_seed: u64, point: usize, worker: Option<usize>) -> u64 {
    let base = plan_seed ^ (0x5157_4145_u64 << 8 | point as u64);
    match worker {
        None => base,
        Some(w) => base ^ (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    }
}

impl Injector {
    fn new(plan: FaultPlan) -> Self {
        Injector {
            plan,
            rngs: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    fn trigger(&mut self, point: FaultPoint, worker: Option<usize>) -> Option<u64> {
        let i = point.index();
        self.stats.checked[i] += 1;
        // A worker filter silences other workers *before* any draw, so the
        // filtered plan leaves every stream exactly where the unfiltered
        // plan would for the targeted worker.
        if let (Some(filter), Some(w)) = (self.plan.worker_filter, worker) {
            if filter != w {
                return None;
            }
        }
        let rate = self.plan.rates[i];
        if rate <= 0.0 {
            return None;
        }
        let seed = stream_seed(self.plan.seed, i, worker);
        let rng = self
            .rngs
            .entry((i, worker))
            .or_insert_with(|| StdRng::seed_from_u64(seed));
        // Two draws per consultation (decision + payload) keeps the stream
        // position independent of whether the fault fired.
        let decision = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let payload = rng.next_u64();
        if decision < rate {
            self.stats.fired[i] += 1;
            Some(payload)
        } else {
            None
        }
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static INJECTOR: Mutex<Option<Injector>> = Mutex::new(None);

fn injector() -> std::sync::MutexGuard<'static, Option<Injector>> {
    INJECTOR.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan` globally, replacing any previous plan and resetting the
/// per-point streams and counters.
pub fn install(plan: FaultPlan) {
    *injector() = Some(Injector::new(plan));
    ACTIVE.store(true, Ordering::Release);
}

/// Installs the plan from `SQVAE_FAULTS` when the variable is set. Returns
/// whether a plan was installed.
pub fn install_from_env() -> bool {
    match FaultPlan::from_env() {
        Some(plan) => {
            install(plan);
            true
        }
        None => false,
    }
}

/// Removes any installed plan; every [`trigger`] reverts to the free path.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *injector() = None;
}

/// Whether a plan is installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Consults the injector at `point`. `None` means proceed normally;
/// `Some(payload)` means inject the fault, with `payload` as deterministic
/// randomness for shaping it (e.g. which byte of a checkpoint to flip).
#[inline]
pub fn trigger(point: FaultPoint) -> Option<u64> {
    trigger_for(point, None)
}

/// Worker-indexed [`trigger`]: serving workers pass their pool index so
/// each `(point, worker)` pair draws from its own stream (pool size and
/// cross-worker interleaving cannot shift another worker's schedule) and
/// so [`FaultPlan::with_worker`] can target a single pool member. `None`
/// consults the worker-agnostic stream [`trigger`] uses.
#[inline]
pub fn trigger_for(point: FaultPoint, worker: Option<usize>) -> Option<u64> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    injector()
        .as_mut()
        .and_then(|inj| inj.trigger(point, worker))
}

/// Counters of the installed plan (`None` when inactive).
pub fn stats() -> Option<FaultStats> {
    injector().as_ref().map(|inj| inj.stats)
}

/// RAII guard: installs a plan on construction, [`clear`]s on drop. The
/// injector is process-global — tests using it must serialize themselves
/// (the chaos suite holds a gate mutex for exactly this reason).
#[derive(Debug)]
pub struct FaultScope(());

impl FaultScope {
    /// Installs `plan` and returns the guard that uninstalls it.
    pub fn install(plan: FaultPlan) -> Self {
        install(plan);
        FaultScope(())
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The injector is process-global; serialize the tests that install one.
    static GATE: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_is_silent() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        assert!(!active());
        assert_eq!(trigger(FaultPoint::WorkerPanic), None);
        assert_eq!(stats(), None);
    }

    #[test]
    fn zero_rate_never_fires_and_full_rate_always_fires() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let _scope = FaultScope::install(FaultPlan::quiet(7).with_rate(FaultPoint::NanLoss, 1.0));
        for _ in 0..32 {
            assert_eq!(trigger(FaultPoint::WorkerPanic), None);
            assert!(trigger(FaultPoint::NanLoss).is_some());
        }
        let s = stats().unwrap();
        assert_eq!(s.fired_at(FaultPoint::NanLoss), 32);
        assert_eq!(s.checked_at(FaultPoint::NanLoss), 32);
        assert_eq!(s.fired_at(FaultPoint::WorkerPanic), 0);
        assert_eq!(s.checked_at(FaultPoint::WorkerPanic), 32);
        assert_eq!(s.total_fired(), 32);
    }

    #[test]
    fn same_plan_reproduces_the_same_fault_sequence() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let run = || -> Vec<Option<u64>> {
            let _scope = FaultScope::install(
                FaultPlan::quiet(42).with_rate(FaultPoint::CheckpointFlip, 0.5),
            );
            (0..64)
                .map(|_| trigger(FaultPoint::CheckpointFlip))
                .collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|t| t.is_some()));
        assert!(a.iter().any(|t| t.is_none()));
    }

    #[test]
    fn points_draw_from_independent_streams() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        // Interleave consultations of a second point between runs; the
        // first point's outcomes must not move.
        let run = |interleave: bool| -> Vec<Option<u64>> {
            let _scope = FaultScope::install(
                FaultPlan::quiet(3)
                    .with_rate(FaultPoint::WorkerPanic, 0.5)
                    .with_rate(FaultPoint::NanLoss, 0.5),
            );
            (0..32)
                .map(|_| {
                    if interleave {
                        let _ = trigger(FaultPoint::NanLoss);
                    }
                    trigger(FaultPoint::WorkerPanic)
                })
                .collect()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        let plan =
            FaultPlan::parse("seed=9, worker_panic=0.25, nan_loss=1.0, checkpoint_flip=0").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.rate(FaultPoint::WorkerPanic), 0.25);
        assert_eq!(plan.rate(FaultPoint::NanLoss), 1.0);
        assert_eq!(plan.rate(FaultPoint::CheckpointFlip), 0.0);
        assert_eq!(plan.rate(FaultPoint::QueueSaturation), 0.0);

        assert_eq!(FaultPlan::parse("on").unwrap(), FaultPlan::chaos(42));
        assert_eq!(FaultPlan::parse("1").unwrap(), FaultPlan::chaos(42));

        let pinned = FaultPlan::parse("worker_panic=1.0, worker=2").unwrap();
        assert_eq!(pinned.worker_filter, Some(2));
        assert_eq!(FaultPlan::parse("").unwrap().worker_filter, None);

        assert!(FaultPlan::parse("worker_panic").is_err());
        assert!(FaultPlan::parse("warp_core_breach=0.5").is_err());
        assert!(FaultPlan::parse("worker_panic=1.5").is_err());
        assert!(FaultPlan::parse("seed=banana").is_err());
        assert!(FaultPlan::parse("worker_panic=x").is_err());
        assert!(FaultPlan::parse("worker=minus-one").is_err());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn with_rate_rejects_out_of_range() {
        let _ = FaultPlan::default().with_rate(FaultPoint::NanLoss, 2.0);
    }

    #[test]
    fn worker_streams_are_independent_of_each_other() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        // Interleave worker 1's consultations between worker 0's; worker
        // 0's outcomes must not move, and neither worker may shadow the
        // worker-agnostic stream.
        let run = |interleave: bool| -> Vec<Option<u64>> {
            let _scope =
                FaultScope::install(FaultPlan::quiet(5).with_rate(FaultPoint::WorkerPanic, 0.5));
            (0..32)
                .map(|_| {
                    if interleave {
                        let _ = trigger_for(FaultPoint::WorkerPanic, Some(1));
                        let _ = trigger(FaultPoint::WorkerPanic);
                    }
                    trigger_for(FaultPoint::WorkerPanic, Some(0))
                })
                .collect()
        };
        let a = run(false);
        assert_eq!(a, run(true));
        assert!(a.iter().any(|t| t.is_some()));
        assert!(a.iter().any(|t| t.is_none()));
    }

    #[test]
    fn worker_filter_silences_every_other_worker() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let _scope = FaultScope::install(
            FaultPlan::quiet(8)
                .with_rate(FaultPoint::WorkerPanic, 1.0)
                .with_worker(2),
        );
        for _ in 0..16 {
            assert!(trigger_for(FaultPoint::WorkerPanic, Some(2)).is_some());
            assert_eq!(trigger_for(FaultPoint::WorkerPanic, Some(0)), None);
            assert_eq!(trigger_for(FaultPoint::WorkerPanic, Some(3)), None);
            // Worker-agnostic call sites are not filtered.
            assert!(trigger(FaultPoint::WorkerPanic).is_some());
        }
        let s = stats().unwrap();
        assert_eq!(s.fired_at(FaultPoint::WorkerPanic), 32);
        assert_eq!(s.checked_at(FaultPoint::WorkerPanic), 64);
    }

    #[test]
    fn a_filtered_plan_keeps_the_target_workers_schedule() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        // The schedule worker 1 sees must be byte-identical whether or not
        // the plan filters the other workers out.
        let run = |filtered: bool| -> Vec<Option<u64>> {
            let plan = FaultPlan::quiet(13).with_rate(FaultPoint::WorkerPanic, 0.5);
            let plan = if filtered { plan.with_worker(1) } else { plan };
            let _scope = FaultScope::install(plan);
            (0..32)
                .map(|_| trigger_for(FaultPoint::WorkerPanic, Some(1)))
                .collect()
        };
        assert_eq!(run(false), run(true));
    }
}
