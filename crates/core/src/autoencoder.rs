//! The autoencoder: encoder stack → latent stage → decoder stack.

use crate::hybrid::{HybridStack, ParamGroup};
use crate::latent::Latent;
use crate::models::ModelSpec;
use rand::Rng;
use sqvae_nn::{ExecPolicy, Matrix, Module, NnError, ParamTensor};

/// Per-group trainable parameter counts (the paper's Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParameterCount {
    /// Variational circuit angles.
    pub quantum: usize,
    /// Classical weights and biases.
    pub classical: usize,
}

impl ParameterCount {
    /// Quantum + classical.
    pub fn total(&self) -> usize {
        self.quantum + self.classical
    }
}

/// A (possibly hybrid, possibly variational) autoencoder.
///
/// Built by the factory functions in [`crate::models`]; this type owns the
/// forward/backward plumbing shared by every variant in the paper.
#[derive(Debug)]
pub struct Autoencoder {
    /// Human-readable variant name (e.g. `"SQ-VAE(p=8)"`).
    pub name: String,
    encoder: HybridStack,
    latent: Latent,
    decoder: HybridStack,
    last_kl: f64,
    identity_latent_dim: Option<usize>,
    spec: Option<ModelSpec>,
    exec: ExecPolicy,
}

/// Output of a training-mode forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardOutput {
    /// Reconstruction, same shape as the input.
    pub reconstruction: Matrix,
    /// KL divergence of the latent sample (0 for non-variational models).
    pub kl: f64,
}

impl Autoencoder {
    /// Assembles an autoencoder from its stages.
    pub fn new(
        name: impl Into<String>,
        encoder: HybridStack,
        latent: Latent,
        decoder: HybridStack,
    ) -> Self {
        Autoencoder {
            name: name.into(),
            encoder,
            latent,
            decoder,
            last_kl: 0.0,
            identity_latent_dim: None,
            spec: None,
            exec: ExecPolicy::default(),
        }
    }

    /// Records the latent width for models whose latent stage is
    /// [`Latent::Identity`] (factories call this; other variants infer the
    /// width from their latent layer).
    pub fn with_identity_latent_dim(mut self, dim: usize) -> Self {
        self.identity_latent_dim = Some(dim);
        self
    }

    /// Records the [`ModelSpec`] that built this model (factories call
    /// this); checkpoints persist it so loading can rebuild the same
    /// architecture.
    pub fn with_spec(mut self, spec: ModelSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// The architecture descriptor recorded at construction, if this model
    /// came from a `models::*` factory. Hand-assembled models return `None`
    /// and cannot be checkpointed.
    pub fn spec(&self) -> Option<ModelSpec> {
        self.spec
    }

    /// The execution policy most recently applied via
    /// [`Autoencoder::set_exec_policy`] (default: sequential, dense).
    pub fn exec_policy(&self) -> ExecPolicy {
        self.exec
    }

    /// Whether the model is a VAE (supports sampling new data).
    pub fn is_variational(&self) -> bool {
        self.latent.is_variational()
    }

    /// Latent dimensionality (width of `z`).
    pub fn latent_dim(&mut self) -> usize {
        match &mut self.latent {
            Latent::Gaussian(g) => g.latent_dim(),
            Latent::Linear(l) => l.out_features(),
            // Identity: the encoder output width; probe with the decoder
            // input assumption — stored implicitly, so ask the encoder.
            Latent::Identity => self.probe_latent_dim(),
        }
    }

    fn probe_latent_dim(&mut self) -> usize {
        self.identity_latent_dim
            .expect("identity-latent models record their latent dim at construction")
    }

    /// Training-mode forward: encode, sample/transform the latent, decode.
    ///
    /// # Errors
    ///
    /// Returns shape errors from any stage.
    pub fn forward_train(
        &mut self,
        input: &Matrix,
        rng: &mut impl Rng,
    ) -> Result<ForwardOutput, NnError> {
        let h = self.encoder.forward(input)?;
        let z = match &mut self.latent {
            Latent::Identity => h,
            Latent::Linear(l) => l.forward(&h)?,
            Latent::Gaussian(g) => g.forward_sample(&h, rng)?,
        };
        let kl = match &self.latent {
            Latent::Gaussian(g) => g.last_kl().unwrap_or(0.0),
            _ => 0.0,
        };
        self.last_kl = kl;
        let reconstruction = self.decoder.forward(&z)?;
        Ok(ForwardOutput { reconstruction, kl })
    }

    /// Evaluation-mode encoding: maps inputs to latent vectors. VAEs return
    /// the posterior mean `μ` (no sampling).
    ///
    /// # Errors
    ///
    /// Returns shape errors from any stage.
    pub fn encode(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        let h = self.encoder.forward(input)?;
        match &mut self.latent {
            Latent::Identity => Ok(h),
            Latent::Linear(l) => l.forward(&h),
            Latent::Gaussian(g) => g.forward_mean(&h),
        }
    }

    /// Evaluation-mode reconstruction: VAEs use the posterior mean `μ`
    /// instead of sampling.
    ///
    /// # Errors
    ///
    /// Returns shape errors from any stage.
    pub fn reconstruct(&mut self, input: &Matrix) -> Result<Matrix, NnError> {
        let z = self.encode(input)?;
        self.decoder.forward(&z)
    }

    /// Backward pass for the ELBO: takes `dL_recon/d(reconstruction)` and
    /// propagates through decoder, latent (adding the KL term), and encoder.
    ///
    /// # Errors
    ///
    /// Returns errors when called before [`Autoencoder::forward_train`].
    pub fn backward(&mut self, grad_reconstruction: &Matrix) -> Result<(), NnError> {
        let grad_z = self.decoder.backward(grad_reconstruction)?;
        let grad_h = match &mut self.latent {
            Latent::Identity => grad_z,
            Latent::Linear(l) => l.backward(&grad_z)?,
            Latent::Gaussian(g) => g.backward(&grad_z)?,
        };
        self.encoder.backward(&grad_h)?;
        Ok(())
    }

    /// Decodes latent vectors into data space (the generation path of
    /// Fig. 2(a)'s red box). Works for every variant; only VAEs have a
    /// *meaningful* prior to sample from.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `z` width mismatches the decoder.
    pub fn decode(&mut self, z: &Matrix) -> Result<Matrix, NnError> {
        self.decoder.forward(z)
    }

    /// Draws `n` latent vectors `z ~ N(0, I)` without decoding them.
    ///
    /// [`Autoencoder::sample`] is exactly `decode(sample_latent(n, rng))`;
    /// the split lets callers (e.g. the inference service) batch the latent
    /// draws of several requests into one decoder pass while consuming the
    /// identical RNG stream a direct `sample` call would.
    pub fn sample_latent(&mut self, n: usize, rng: &mut impl Rng) -> Matrix {
        let d = self.latent_dim();
        Matrix::from_fn(n, d, |_, _| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
    }

    /// Draws `n` samples by decoding `z ~ N(0, I)`.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the decoder.
    pub fn sample(&mut self, n: usize, rng: &mut impl Rng) -> Result<Matrix, NnError> {
        let z = self.sample_latent(n, rng);
        self.decode(&z)
    }

    /// KL divergence of the most recent training forward.
    pub fn last_kl(&self) -> f64 {
        self.last_kl
    }

    /// Scales the VAE's KL weight (used by the trainer's warm-up schedule);
    /// a no-op for non-variational models.
    pub fn set_kl_scale(&mut self, scale: f64) {
        if let Latent::Gaussian(g) = &mut self.latent {
            g.set_kl_scale(scale);
        }
    }

    /// The current KL warm-up scale (1.0 for non-variational models, which
    /// have no KL term to scale).
    pub fn kl_scale(&self) -> f64 {
        match &self.latent {
            Latent::Gaussian(g) => g.kl_scale(),
            _ => 1.0,
        }
    }

    /// Mutable access to all parameters in `group` (latent heads count as
    /// classical).
    pub fn parameters_of(&mut self, group: ParamGroup) -> Vec<&mut ParamTensor> {
        let mut v = self.encoder.parameters_of(group);
        if group == ParamGroup::Classical {
            v.extend(self.latent.parameters());
        }
        v.extend(self.decoder.parameters_of(group));
        v
    }

    /// Sets the unified execution policy — batch-row parallelism and
    /// simulator backend — on every quantum stage (classical stages and
    /// latent heads ignore it). The trainer calls this with its configured
    /// [`sqvae_nn::ExecPolicy`] before each run.
    pub fn set_exec_policy(&mut self, policy: sqvae_nn::ExecPolicy) {
        self.exec = policy;
        self.encoder.set_exec_policy(policy);
        self.decoder.set_exec_policy(policy);
    }

    /// Sets the batch-row parallelism policy on every quantum stage
    /// (classical stages and latent heads ignore it).
    #[deprecated(note = "use `Autoencoder::set_exec_policy` with an `ExecPolicy`")]
    pub fn set_threads(&mut self, threads: sqvae_nn::Threads) {
        self.exec.threads = threads;
        #[allow(deprecated)]
        {
            Module::set_threads(&mut self.encoder, threads);
            Module::set_threads(&mut self.decoder, threads);
        }
    }

    /// Sets the simulator backend on every quantum stage (classical stages
    /// and latent heads ignore it).
    #[deprecated(note = "use `Autoencoder::set_exec_policy` with an `ExecPolicy`")]
    pub fn set_backend(&mut self, backend: sqvae_nn::BackendKind) {
        self.exec.backend = backend;
        #[allow(deprecated)]
        {
            Module::set_backend(&mut self.encoder, backend);
            Module::set_backend(&mut self.decoder, backend);
        }
    }

    /// Zeroes every gradient.
    pub fn zero_grad(&mut self) {
        for p in self.parameters_of(ParamGroup::Quantum) {
            p.zero_grad();
        }
        for p in self.parameters_of(ParamGroup::Classical) {
            p.zero_grad();
        }
    }

    /// Table I-style parameter accounting.
    pub fn parameter_count(&mut self) -> ParameterCount {
        ParameterCount {
            quantum: self
                .parameters_of(ParamGroup::Quantum)
                .iter()
                .map(|p| p.len())
                .sum(),
            classical: self
                .parameters_of(ParamGroup::Classical)
                .iter()
                .map(|p| p.len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latent::GaussianLatent;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqvae_nn::{Activation, ActivationKind, Linear};

    fn tiny_vae(seed: u64) -> Autoencoder {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut enc = HybridStack::new();
        enc.push_classical(Linear::new(6, 4, &mut rng));
        enc.push_classical(Activation::new(ActivationKind::Relu));
        let latent = Latent::Gaussian(GaussianLatent::new(4, 2, 1.0, &mut rng));
        let mut dec = HybridStack::new();
        dec.push_classical(Linear::new(2, 6, &mut rng));
        Autoencoder::new("tiny-vae", enc, latent, dec)
    }

    #[test]
    fn forward_train_and_reconstruct() {
        let mut m = tiny_vae(0);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::filled(3, 6, 0.5);
        let out = m.forward_train(&x, &mut rng).unwrap();
        assert_eq!(out.reconstruction.shape(), (3, 6));
        assert!(out.kl >= 0.0);
        assert!(m.is_variational());
        let r = m.reconstruct(&x).unwrap();
        assert_eq!(r.shape(), (3, 6));
    }

    #[test]
    fn sampling_shape() {
        let mut m = tiny_vae(2);
        let mut rng = StdRng::seed_from_u64(3);
        let s = m.sample(5, &mut rng).unwrap();
        assert_eq!(s.shape(), (5, 6));
        assert_eq!(m.latent_dim(), 2);
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut m = tiny_vae(4);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Matrix::filled(2, 6, 0.3);
        let out = m.forward_train(&x, &mut rng).unwrap();
        let (_, grad) = sqvae_nn::loss::mse(&out.reconstruction, &x).unwrap();
        m.backward(&grad).unwrap();
        let norm: f64 = m
            .parameters_of(ParamGroup::Classical)
            .iter()
            .map(|p| p.grad.frobenius_norm())
            .sum();
        assert!(norm > 0.0);
        m.zero_grad();
        let norm: f64 = m
            .parameters_of(ParamGroup::Classical)
            .iter()
            .map(|p| p.grad.frobenius_norm())
            .sum();
        assert_eq!(norm, 0.0);
    }

    #[test]
    fn parameter_count_totals() {
        let mut m = tiny_vae(6);
        let pc = m.parameter_count();
        assert_eq!(pc.quantum, 0);
        // enc 6*4+4 = 28; heads 2×(4*2+2)=20; dec 2*6+6=18.
        assert_eq!(pc.classical, 28 + 20 + 18);
        assert_eq!(pc.total(), pc.classical);
    }
}
