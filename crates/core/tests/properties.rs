//! Property-based invariants of the autoencoder pipeline.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_core::{models, ParamGroup, TrainConfig, Trainer};
use sqvae_datasets::Dataset;
use sqvae_nn::Matrix;

fn arb_batch(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(0.0..4.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every model variant reconstructs to the input shape.
    #[test]
    fn reconstruction_preserves_shape(x in arb_batch(2, 16), seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        for mut model in [
            models::classical_ae(16, 4, &mut rng),
            models::classical_vae(16, 4, &mut rng),
            models::f_bq_ae(16, 1, &mut rng),
            models::h_bq_vae(16, 1, &mut rng),
            models::sq_ae(16, 2, 1, &mut rng),
        ] {
            let y = model.reconstruct(&x).unwrap();
            prop_assert_eq!(y.shape(), x.shape(), "{}", model.name);
            prop_assert!(y.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    /// One optimizer step with a tiny LR never produces NaNs.
    #[test]
    fn training_step_keeps_parameters_finite(x in arb_batch(4, 16), seed in 0u64..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = models::sq_vae(16, 2, 1, &mut rng);
        let data = Dataset::from_samples(
            (0..x.rows()).map(|r| x.row(r).to_vec()).collect(),
        ).unwrap();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 4,
            quantum_lr: 0.001,
            classical_lr: 0.001,
            ..TrainConfig::default()
        });
        let hist = trainer.train(&mut model, &data, None).unwrap();
        prop_assert!(hist.final_train_mse().unwrap().is_finite());
        for p in model.parameters_of(ParamGroup::Quantum) {
            prop_assert!(p.value.as_slice().iter().all(|v| v.is_finite()));
        }
        for p in model.parameters_of(ParamGroup::Classical) {
            prop_assert!(p.value.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    /// VAE sampling always yields the data width, for any latent seed.
    #[test]
    fn sampling_width_is_stable(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = models::sq_vae(16, 2, 1, &mut rng);
        let s = model.sample(3, &mut rng).unwrap();
        prop_assert_eq!(s.shape(), (3, 16));
    }
}
