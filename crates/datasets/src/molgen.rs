//! Random valid-molecule growth.
//!
//! Both synthetic molecular datasets (QM9-like and PDBbind-ligand-like) are
//! produced by the same generator: attachment growth that never exceeds
//! default valences, optional aromatic-ring seeding/insertion, and
//! ring-closure moves. Every emitted molecule is connected and
//! valence-clean by construction, mirroring the fact that the paper's
//! datasets contain only real (valid) molecules.

use rand::Rng;
use sqvae_chem::{BondOrder, Element, Molecule};

/// Parameters controlling molecule growth.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthConfig {
    /// Minimum heavy atoms.
    pub min_atoms: usize,
    /// Maximum heavy atoms (also the matrix size bound).
    pub max_atoms: usize,
    /// Element sampling weights.
    pub element_weights: Vec<(Element, f64)>,
    /// Probability of starting from an aromatic 6-ring seed.
    pub p_aromatic_seed: f64,
    /// Probability per growth step of inserting a whole aromatic ring
    /// (when at least 6 slots remain).
    pub p_ring_insert: f64,
    /// Probability of attempting a double bond when valences allow.
    pub p_double: f64,
    /// Probability of attempting a triple bond when valences allow.
    pub p_triple: f64,
    /// Number of ring-closure attempts after growth.
    pub ring_closure_attempts: usize,
}

impl GrowthConfig {
    /// QM9-like: up to 8 heavy atoms of C/N/O, mostly acyclic with
    /// occasional rings and multiple bonds.
    pub fn qm9_like() -> Self {
        GrowthConfig {
            min_atoms: 4,
            max_atoms: 8,
            element_weights: vec![(Element::C, 0.75), (Element::N, 0.12), (Element::O, 0.13)],
            p_aromatic_seed: 0.12,
            p_ring_insert: 0.0,
            p_double: 0.20,
            p_triple: 0.03,
            ring_closure_attempts: 1,
        }
    }

    /// PDBbind-ligand-like: 12–32 heavy atoms of C/N/O/F/S, ring-rich and
    /// drug-like.
    pub fn pdbbind_like() -> Self {
        GrowthConfig {
            min_atoms: 12,
            max_atoms: 32,
            element_weights: vec![
                (Element::C, 0.72),
                (Element::N, 0.12),
                (Element::O, 0.12),
                (Element::F, 0.02),
                (Element::S, 0.02),
            ],
            p_aromatic_seed: 0.75,
            p_ring_insert: 0.10,
            p_double: 0.15,
            p_triple: 0.01,
            ring_closure_attempts: 2,
        }
    }
}

/// Available valence at atom `i` under the element's *default* valence (the
/// conventional-chemistry cap used during generation).
fn available(mol: &Molecule, i: usize) -> f64 {
    mol.element(i).default_valence() as f64 - mol.explicit_valence(i)
}

fn sample_element(weights: &[(Element, f64)], rng: &mut impl Rng) -> Element {
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut t = rng.gen_range(0.0..total);
    for &(e, w) in weights {
        if t < w {
            return e;
        }
        t -= w;
    }
    weights.last().expect("non-empty weights").0
}

/// Appends an aromatic 6-ring (optionally with one pyridine-like nitrogen),
/// returning its atom indices.
fn add_aromatic_ring(mol: &mut Molecule, rng: &mut impl Rng) -> Vec<usize> {
    let n_pos = if rng.gen_bool(0.3) {
        Some(rng.gen_range(0..6))
    } else {
        None
    };
    let mut ids = Vec::with_capacity(6);
    for k in 0..6 {
        let e = if Some(k) == n_pos {
            Element::N
        } else {
            Element::C
        };
        ids.push(mol.add_atom(e));
    }
    for k in 0..6 {
        mol.add_bond(ids[k], ids[(k + 1) % 6], BondOrder::Aromatic)
            .expect("fresh ring bond");
    }
    ids
}

/// Grows one random valid molecule.
///
/// The result is connected, respects default valences, and has between
/// `min_atoms` and `max_atoms` heavy atoms (an aromatic seed may set the
/// floor at 6).
pub fn grow_molecule(cfg: &GrowthConfig, rng: &mut impl Rng) -> Molecule {
    let target = rng.gen_range(cfg.min_atoms..=cfg.max_atoms);
    let mut mol = Molecule::new();

    if target >= 6 && rng.gen_bool(cfg.p_aromatic_seed) {
        add_aromatic_ring(&mut mol, rng);
    } else {
        mol.add_atom(sample_element(&cfg.element_weights, rng));
    }

    while mol.n_atoms() < target {
        let remaining = target - mol.n_atoms();
        // Whole-ring insertion.
        if remaining >= 6 && rng.gen_bool(cfg.p_ring_insert) {
            let anchor_candidates: Vec<usize> = (0..mol.n_atoms())
                .filter(|&i| available(&mol, i) >= 1.0)
                .collect();
            if let Some(&anchor) = pick(&anchor_candidates, rng) {
                let ring = add_aromatic_ring(&mut mol, rng);
                // Ring carbons keep 1.0 spare valence; nitrogen does not.
                let attach = ring
                    .into_iter()
                    .find(|&a| available(&mol, a) >= 1.0)
                    .expect("aromatic ring has an attachable carbon");
                mol.add_bond(anchor, attach, BondOrder::Single)
                    .expect("fresh anchor bond");
                continue;
            }
        }
        // Single-atom growth.
        let e = sample_element(&cfg.element_weights, rng);
        let candidates: Vec<usize> = (0..mol.n_atoms())
            .filter(|&i| available(&mol, i) >= 1.0)
            .collect();
        let Some(&attach) = pick(&candidates, rng) else {
            break; // everything saturated (e.g. pure pyridine seed)
        };
        let idx = mol.add_atom(e);
        let room = available(&mol, attach).min(e.default_valence() as f64);
        let order =
            if room >= 3.0 && e != Element::O && e != Element::F && rng.gen_bool(cfg.p_triple) {
                BondOrder::Triple
            } else if room >= 2.0 && e != Element::F && rng.gen_bool(cfg.p_double) {
                BondOrder::Double
            } else {
                BondOrder::Single
            };
        mol.add_bond(idx, attach, order).expect("fresh growth bond");
    }

    // Ring-closure moves: connect two distant atoms with spare valence.
    for _ in 0..cfg.ring_closure_attempts {
        let open: Vec<usize> = (0..mol.n_atoms())
            .filter(|&i| available(&mol, i) >= 1.0)
            .collect();
        if open.len() < 2 {
            break;
        }
        let a = *pick(&open, rng).expect("non-empty");
        let b = *pick(&open, rng).expect("non-empty");
        if a == b || mol.bond_between(a, b).is_some() {
            continue;
        }
        // Only close reasonable ring sizes (graph distance 2..=6).
        if let Some(d) = graph_distance(&mol, a, b) {
            if (2..=6).contains(&d) {
                mol.add_bond(a, b, BondOrder::Single)
                    .expect("checked fresh");
            }
        }
    }
    mol
}

fn pick<'a, T>(v: &'a [T], rng: &mut impl Rng) -> Option<&'a T> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len())])
    }
}

fn graph_distance(mol: &Molecule, src: usize, dst: usize) -> Option<usize> {
    use std::collections::VecDeque;
    let mut dist = vec![usize::MAX; mol.n_atoms()];
    dist[src] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(u) = q.pop_front() {
        if u == dst {
            return Some(dist[u]);
        }
        for (v, _) in mol.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqvae_chem::valence;

    #[test]
    fn qm9_growth_yields_valid_small_molecules() {
        let cfg = GrowthConfig::qm9_like();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let m = grow_molecule(&cfg, &mut rng);
            assert!(m.n_atoms() <= 8, "{} atoms", m.n_atoms());
            assert!(valence::is_valid(&m), "invalid: {:?}", m);
        }
    }

    #[test]
    fn pdbbind_growth_yields_valid_ligands() {
        let cfg = GrowthConfig::pdbbind_like();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let m = grow_molecule(&cfg, &mut rng);
            assert!(m.n_atoms() <= 32);
            assert!(m.n_atoms() >= 6);
            assert!(valence::is_valid(&m));
        }
    }

    #[test]
    fn pdbbind_molecules_are_ring_rich() {
        let cfg = GrowthConfig::pdbbind_like();
        let mut rng = StdRng::seed_from_u64(3);
        let with_rings = (0..100)
            .filter(|_| {
                let m = grow_molecule(&cfg, &mut rng);
                sqvae_chem::rings::ring_count(&m) > 0
            })
            .count();
        assert!(with_rings > 60, "only {with_rings}/100 had rings");
    }

    #[test]
    fn element_distribution_roughly_matches_weights() {
        let cfg = GrowthConfig::qm9_like();
        let mut rng = StdRng::seed_from_u64(4);
        let mut carbon = 0usize;
        let mut total = 0usize;
        for _ in 0..300 {
            let m = grow_molecule(&cfg, &mut rng);
            carbon += m.count_element(Element::C);
            total += m.n_atoms();
        }
        let frac = carbon as f64 / total as f64;
        assert!(frac > 0.55 && frac < 0.95, "carbon fraction {frac}");
    }

    #[test]
    fn growth_is_deterministic_per_seed() {
        let cfg = GrowthConfig::pdbbind_like();
        let a = grow_molecule(&cfg, &mut StdRng::seed_from_u64(9));
        let b = grow_molecule(&cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
