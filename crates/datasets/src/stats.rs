//! Dataset statistics used by experiments and tests.

use sqvae_chem::{BondOrder, Element, Molecule};
use std::collections::BTreeMap;

/// Summary statistics over a set of molecules.
#[derive(Debug, Clone, PartialEq)]
pub struct MoleculeStats {
    /// Number of molecules.
    pub count: usize,
    /// Mean heavy-atom count.
    pub mean_atoms: f64,
    /// Mean bond count.
    pub mean_bonds: f64,
    /// Element frequency (fraction of all heavy atoms).
    pub element_fractions: BTreeMap<&'static str, f64>,
    /// Bond-order frequency (fraction of all bonds).
    pub bond_fractions: BTreeMap<&'static str, f64>,
    /// Fraction of molecules containing at least one ring.
    pub ring_fraction: f64,
}

/// Computes summary statistics (empty input → zeroed stats).
pub fn molecule_stats(mols: &[Molecule]) -> MoleculeStats {
    let count = mols.len();
    let mut atoms = 0usize;
    let mut bonds = 0usize;
    let mut elem: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut bord: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut ringy = 0usize;
    for m in mols {
        atoms += m.n_atoms();
        bonds += m.n_bonds();
        for e in Element::ALL {
            *elem.entry(e.symbol()).or_insert(0) += m.count_element(e);
        }
        for b in m.bonds() {
            let name = match b.order {
                BondOrder::Single => "single",
                BondOrder::Double => "double",
                BondOrder::Triple => "triple",
                BondOrder::Aromatic => "aromatic",
            };
            *bord.entry(name).or_insert(0) += 1;
        }
        if sqvae_chem::rings::ring_count(m) > 0 {
            ringy += 1;
        }
    }
    let denom_atoms = atoms.max(1) as f64;
    let denom_bonds = bonds.max(1) as f64;
    MoleculeStats {
        count,
        mean_atoms: atoms as f64 / count.max(1) as f64,
        mean_bonds: bonds as f64 / count.max(1) as f64,
        element_fractions: elem
            .into_iter()
            .map(|(k, v)| (k, v as f64 / denom_atoms))
            .collect(),
        bond_fractions: bord
            .into_iter()
            .map(|(k, v)| (k, v as f64 / denom_bonds))
            .collect(),
        ring_fraction: ringy as f64 / count.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molgen::{grow_molecule, GrowthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_on_generated_qm9() {
        let cfg = GrowthConfig::qm9_like();
        let mut rng = StdRng::seed_from_u64(1);
        let mols: Vec<Molecule> = (0..200).map(|_| grow_molecule(&cfg, &mut rng)).collect();
        let s = molecule_stats(&mols);
        assert_eq!(s.count, 200);
        assert!(s.mean_atoms >= 4.0 && s.mean_atoms <= 8.0);
        let c_frac = s.element_fractions["C"];
        assert!(c_frac > 0.5, "carbon fraction {c_frac}");
        let single = s.bond_fractions.get("single").copied().unwrap_or(0.0);
        assert!(single > 0.4, "single-bond fraction {single}");
    }

    #[test]
    fn empty_input_is_zeroed() {
        let s = molecule_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_atoms, 0.0);
        assert_eq!(s.ring_fraction, 0.0);
    }
}
