//! Dataset container, splitting, and batching.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An in-memory dataset of flat feature vectors of uniform width.
///
/// # Examples
///
/// ```
/// use sqvae_datasets::Dataset;
///
/// let ds = Dataset::from_samples(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.width(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    samples: Vec<Vec<f64>>,
    width: usize,
}

impl Dataset {
    /// Builds a dataset, validating uniform sample width.
    ///
    /// Returns `None` when `samples` is empty or widths are ragged.
    pub fn from_samples(samples: Vec<Vec<f64>>) -> Option<Self> {
        let width = samples.first()?.len();
        if width == 0 || samples.iter().any(|s| s.len() != width) {
            return None;
        }
        Some(Dataset { samples, width })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature-vector width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Borrow of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn sample(&self, i: usize) -> &[f64] {
        &self.samples[i]
    }

    /// All samples.
    pub fn samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// Deterministic shuffled train/test split (the paper uses 85%/15% for
    /// PDBbind, §IV-A).
    ///
    /// # Panics
    ///
    /// Panics when `train_fraction` is outside `(0, 1]`.
    pub fn shuffle_split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction <= 1.0,
            "train_fraction must be in (0, 1]"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_train = ((self.len() as f64) * train_fraction).round() as usize;
        let n_train = n_train.clamp(1, self.len());
        let take = |ids: &[usize]| Dataset {
            samples: ids.iter().map(|&i| self.samples[i].clone()).collect(),
            width: self.width,
        };
        (take(&idx[..n_train]), take(&idx[n_train..]))
    }

    /// Mini-batches of row slices in order; the final batch may be short.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> Vec<Vec<&[f64]>> {
        assert!(batch_size > 0, "batch size must be positive");
        self.samples
            .chunks(batch_size)
            .map(|chunk| chunk.iter().map(|s| s.as_slice()).collect())
            .collect()
    }

    /// A deterministically shuffled copy (fresh epoch order).
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut samples = self.samples.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        samples.shuffle(&mut rng);
        Dataset {
            samples,
            width: self.width,
        }
    }

    /// The first `n` samples (or all, if fewer).
    pub fn take(&self, n: usize) -> Dataset {
        Dataset {
            samples: self.samples.iter().take(n).cloned().collect(),
            width: self.width,
        }
    }

    /// Applies L1 normalization per sample ("directly dividing each
    /// non-negative feature value by their sum", §III-B of the paper).
    /// Zero-norm samples are left untouched.
    pub fn l1_normalized(&self) -> Dataset {
        let samples = self
            .samples
            .iter()
            .map(|s| {
                let norm: f64 = s.iter().map(|x| x.abs()).sum();
                if norm == 0.0 {
                    s.clone()
                } else {
                    s.iter().map(|x| x / norm).collect()
                }
            })
            .collect();
        Dataset {
            samples,
            width: self.width,
        }
    }

    /// Rescales every feature by `1/scale` (e.g. images 0..16 → 0..1).
    pub fn scaled(&self, scale: f64) -> Dataset {
        Dataset {
            samples: self
                .samples
                .iter()
                .map(|s| s.iter().map(|x| x / scale).collect())
                .collect(),
            width: self.width,
        }
    }

    /// Per-feature mean vector.
    pub fn feature_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.width];
        for s in &self.samples {
            for (m, &x) in means.iter_mut().zip(s) {
                *m += x;
            }
        }
        let n = self.len().max(1) as f64;
        means.iter_mut().for_each(|m| *m /= n);
        means
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        Dataset::from_samples((0..n).map(|i| vec![i as f64, 1.0]).collect()).unwrap()
    }

    #[test]
    fn from_samples_validates() {
        assert!(Dataset::from_samples(vec![]).is_none());
        assert!(Dataset::from_samples(vec![vec![]]).is_none());
        assert!(Dataset::from_samples(vec![vec![1.0], vec![1.0, 2.0]]).is_none());
        assert!(Dataset::from_samples(vec![vec![1.0], vec![2.0]]).is_some());
    }

    #[test]
    fn split_ratio_and_determinism() {
        let ds = toy(100);
        let (train, test) = ds.shuffle_split(0.85, 7);
        assert_eq!(train.len(), 85);
        assert_eq!(test.len(), 15);
        let (train2, _) = ds.shuffle_split(0.85, 7);
        assert_eq!(train, train2);
        let (train3, _) = ds.shuffle_split(0.85, 8);
        assert_ne!(train, train3);
    }

    #[test]
    fn split_is_a_partition() {
        let ds = toy(20);
        let (train, test) = ds.shuffle_split(0.7, 1);
        let mut all: Vec<f64> = train
            .samples()
            .iter()
            .chain(test.samples())
            .map(|s| s[0])
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn batching_covers_everything() {
        let ds = toy(10);
        let batches = ds.batches(3);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].len(), 3);
        assert_eq!(batches[3].len(), 1);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn l1_normalization_sums_to_one() {
        let ds = Dataset::from_samples(vec![vec![2.0, 2.0], vec![0.0, 0.0]]).unwrap();
        let n = ds.l1_normalized();
        assert_eq!(n.sample(0), &[0.5, 0.5]);
        assert_eq!(n.sample(1), &[0.0, 0.0]); // zero-norm untouched
    }

    #[test]
    fn scaling() {
        let ds = Dataset::from_samples(vec![vec![16.0, 8.0]]).unwrap();
        assert_eq!(ds.scaled(16.0).sample(0), &[1.0, 0.5]);
    }

    #[test]
    fn shuffled_is_permutation() {
        let ds = toy(12);
        let sh = ds.shuffled(3);
        assert_ne!(ds.samples(), sh.samples());
        let mut a: Vec<f64> = ds.samples().iter().map(|s| s[0]).collect();
        let mut b: Vec<f64> = sh.samples().iter().map(|s| s[0]).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn take_truncates() {
        let ds = toy(5);
        assert_eq!(ds.take(3).len(), 3);
        assert_eq!(ds.take(99).len(), 5);
    }

    #[test]
    fn feature_means() {
        let ds = Dataset::from_samples(vec![vec![1.0, 3.0], vec![3.0, 5.0]]).unwrap();
        assert_eq!(ds.feature_means(), vec![2.0, 4.0]);
    }
}
