//! Synthetic 32×32 grayscale image dataset.
//!
//! **Substitution note** (DESIGN.md §3): stands in for grayscale CIFAR-10
//! (paper Fig. 8(b–c)). Ten procedural texture classes (gradients, stripes,
//! blobs, rings, checkers, …) provide class-conditional 32×32 intensity
//! structure in `[0, 1]`, which is all the reconstruction-loss experiments
//! consume.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::f64::consts::PI;

/// Image side length.
pub const IMAGE_SIZE: usize = 32;

/// Configuration for the grayscale-image generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CifarGrayConfig {
    /// Number of images (classes cycle 0..9).
    pub n_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CifarGrayConfig {
    fn default() -> Self {
        CifarGrayConfig {
            n_samples: 500,
            seed: 31,
        }
    }
}

/// Renders one image of the given class; values in `[0, 1]`.
pub fn render_image(class: usize, rng: &mut impl Rng) -> Vec<f64> {
    assert!(class < 10, "image class must be 0..10");
    let n = IMAGE_SIZE;
    let phase: f64 = rng.gen_range(0.0..(2.0 * PI));
    let freq: f64 = rng.gen_range(1.0..3.0);
    let cx: f64 = rng.gen_range(10.0..22.0);
    let cy: f64 = rng.gen_range(10.0..22.0);
    let spread: f64 = rng.gen_range(4.0..9.0);
    let mut img = Vec::with_capacity(n * n);
    for r in 0..n {
        for c in 0..n {
            let x = c as f64;
            let y = r as f64;
            let u = x / (n - 1) as f64;
            let v = y / (n - 1) as f64;
            let value = match class {
                0 => u,                                                     // horizontal gradient
                1 => v,                                                     // vertical gradient
                2 => 0.5 + 0.5 * ((u + v) * freq * PI * 2.0 + phase).sin(), // diagonal stripes
                3 => {
                    // checkerboard
                    let k = (freq * 2.0).round().max(2.0);
                    let s = ((u * k).floor() + (v * k).floor()) as i64;
                    if s % 2 == 0 {
                        0.85
                    } else {
                        0.15
                    }
                }
                4 => {
                    // centered blob
                    let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                    (-d2 / (2.0 * spread * spread)).exp()
                }
                5 => {
                    // two blobs
                    let d1 = (x - cx).powi(2) + (y - cy).powi(2);
                    let d2 = (x - (n as f64 - cx)).powi(2) + (y - (n as f64 - cy)).powi(2);
                    ((-d1 / (2.0 * spread * spread)).exp() + (-d2 / (2.0 * spread * spread)).exp())
                        .min(1.0)
                }
                6 => {
                    // concentric rings
                    let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
                    0.5 + 0.5 * (d / spread * PI + phase).sin()
                }
                7 => 0.5 + 0.5 * (v * freq * PI * 4.0 + phase).sin(), // horizontal bands
                8 => {
                    // radial gradient
                    let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt();
                    (1.0 - d / (n as f64 * 0.75)).clamp(0.0, 1.0)
                }
                _ => {
                    // smooth low-frequency noise field
                    0.5 + 0.25 * (u * freq * PI * 2.0 + phase).sin()
                        + 0.25 * (v * (freq + 1.0) * PI * 2.0 - phase).cos()
                }
            };
            img.push(value.clamp(0.0, 1.0));
        }
    }
    // Pixel noise.
    for p in &mut img {
        let noise: f64 = rng.gen_range(-0.04..0.04);
        *p = (*p + noise).clamp(0.0, 1.0);
    }
    img
}

/// Generates the dataset (classes cycle deterministically through 0..9).
///
/// # Examples
///
/// ```
/// use sqvae_datasets::cifar_gray::{generate, CifarGrayConfig};
///
/// let ds = generate(&CifarGrayConfig { n_samples: 10, seed: 0 });
/// assert_eq!(ds.width(), 1024);
/// ```
pub fn generate(cfg: &CifarGrayConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let samples = (0..cfg.n_samples)
        .map(|i| render_image(i % 10, &mut rng))
        .collect();
    Dataset::from_samples(samples).expect("n_samples > 0 produces a dataset")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let ds = generate(&CifarGrayConfig {
            n_samples: 20,
            seed: 1,
        });
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.width(), 1024);
        for s in ds.samples() {
            for &v in s {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn classes_have_distinct_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        // Horizontal vs vertical gradient: column-mean profile differs.
        let h = render_image(0, &mut rng);
        let v = render_image(1, &mut rng);
        let col_slope = |img: &[f64]| {
            let first: f64 = (0..IMAGE_SIZE).map(|r| img[r * IMAGE_SIZE]).sum::<f64>();
            let last: f64 = (0..IMAGE_SIZE)
                .map(|r| img[r * IMAGE_SIZE + IMAGE_SIZE - 1])
                .sum::<f64>();
            last - first
        };
        assert!(col_slope(&h) > 10.0, "horizontal gradient should rise");
        assert!(
            col_slope(&v).abs() < 5.0,
            "vertical gradient is flat by column"
        );
    }

    #[test]
    fn every_class_renders() {
        let mut rng = StdRng::seed_from_u64(3);
        for class in 0..10 {
            let img = render_image(class, &mut rng);
            let mean: f64 = img.iter().sum::<f64>() / img.len() as f64;
            assert!(
                mean > 0.01 && mean < 0.99,
                "class {class} degenerate: {mean}"
            );
        }
    }

    #[test]
    fn determinism() {
        let cfg = CifarGrayConfig {
            n_samples: 6,
            seed: 7,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    #[should_panic(expected = "image class")]
    fn rejects_bad_class() {
        let mut rng = StdRng::seed_from_u64(0);
        render_image(11, &mut rng);
    }
}
