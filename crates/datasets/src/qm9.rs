//! Synthetic QM9-like dataset (8×8 molecule matrices).
//!
//! **Substitution note** (DESIGN.md §3): the real QM9 [Ramakrishnan et al.
//! 2014] is 134k DFT-computed small molecules. The autoencoder experiments
//! only consume 8×8 molecule matrices over C/N/O, so a seeded random-growth
//! generator with QM9-like size/element/bond marginals exercises the
//! identical code path.

use crate::dataset::Dataset;
use crate::molgen::{grow_molecule, GrowthConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_chem::{Molecule, MoleculeMatrix};

/// Matrix size for QM9-like molecules (the paper's "8x8 QM9").
pub const QM9_MATRIX_SIZE: usize = 8;

/// Configuration for the QM9-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Qm9Config {
    /// Number of molecules to generate.
    pub n_samples: usize,
    /// RNG seed (all outputs are deterministic given this).
    pub seed: u64,
}

impl Default for Qm9Config {
    fn default() -> Self {
        Qm9Config {
            n_samples: 1000,
            seed: 17,
        }
    }
}

/// Generates QM9-like molecules.
pub fn generate_molecules(cfg: &Qm9Config) -> Vec<Molecule> {
    let growth = GrowthConfig::qm9_like();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.n_samples)
        .map(|_| grow_molecule(&growth, &mut rng))
        .collect()
}

/// Generates the dataset of flattened 8×8 molecule-matrix features.
///
/// # Examples
///
/// ```
/// use sqvae_datasets::qm9::{generate, Qm9Config};
///
/// let ds = generate(&Qm9Config { n_samples: 10, seed: 1 });
/// assert_eq!(ds.len(), 10);
/// assert_eq!(ds.width(), 64);
/// ```
pub fn generate(cfg: &Qm9Config) -> Dataset {
    let samples = generate_molecules(cfg)
        .iter()
        .map(|m| {
            MoleculeMatrix::encode(m, QM9_MATRIX_SIZE)
                .expect("growth bounded by 8 atoms")
                .into_features()
        })
        .collect();
    Dataset::from_samples(samples).expect("n_samples > 0 produces a dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqvae_chem::valence;

    #[test]
    fn dataset_shape() {
        let ds = generate(&Qm9Config {
            n_samples: 25,
            seed: 3,
        });
        assert_eq!(ds.len(), 25);
        assert_eq!(ds.width(), 64);
    }

    #[test]
    fn determinism() {
        let cfg = Qm9Config {
            n_samples: 5,
            seed: 11,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = Qm9Config {
            n_samples: 5,
            seed: 12,
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn features_decode_to_valid_molecules() {
        let ds = generate(&Qm9Config {
            n_samples: 30,
            seed: 5,
        });
        for s in ds.samples() {
            let m = MoleculeMatrix::from_values(8, s.clone()).unwrap().decode();
            assert!(valence::is_valid(&m));
            assert!(m.n_atoms() >= 4 && m.n_atoms() <= 8);
        }
    }

    #[test]
    fn feature_values_are_codes() {
        let ds = generate(&Qm9Config {
            n_samples: 10,
            seed: 1,
        });
        for s in ds.samples() {
            for &v in s {
                assert!((0.0..=5.0).contains(&v));
                assert_eq!(v, v.round());
            }
        }
    }
}
