//! # sqvae-datasets
//!
//! Deterministic synthetic stand-ins for the four datasets of the DATE 2022
//! SQ-VAE paper, plus splitting/batching/normalization utilities. Each
//! generator module documents how it substitutes for the real data
//! (DESIGN.md §3 has the full table):
//!
//! | paper dataset | module | shape |
//! |---|---|---|
//! | QM9 (8×8 molecule matrices) | [`qm9`] | 64 features |
//! | PDBbind 2019 ligands (32×32) | [`pdbbind`] | 1024 features |
//! | scikit-learn Digits | [`digits`] | 64 features, 0–16 gray |
//! | grayscale CIFAR-10 | [`cifar_gray`] | 1024 features, [0,1] |
//!
//! Everything is seeded: the same configuration always yields the same
//! dataset, so every experiment in the reproduction is replayable.
//!
//! ## Example
//!
//! ```
//! use sqvae_datasets::pdbbind::{generate, PdbbindConfig};
//!
//! let ligands = generate(&PdbbindConfig { n_samples: 20, seed: 1 });
//! let (train, test) = ligands.shuffle_split(0.85, 0); // the paper's split
//! assert_eq!(train.len() + test.len(), 20);
//! ```

#![warn(missing_docs)]

mod dataset;

pub mod cifar_gray;
pub mod digits;
pub mod molgen;
pub mod pdbbind;
pub mod qm9;
pub mod stats;

pub use dataset::Dataset;
