//! Synthetic 8×8 digits dataset.
//!
//! **Substitution note** (DESIGN.md §3): stands in for scikit-learn's
//! `load_digits` (used by the paper's Fig. 4 image experiments). Ten glyph
//! templates are rendered at 8×8 with per-sample jitter (±1 px shifts),
//! intensity scaling, and background noise, producing the same 0–16 gray
//! scale and class structure.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Image side length.
pub const DIGIT_SIZE: usize = 8;
/// Maximum intensity (scikit-learn digits use 0..16).
pub const MAX_INTENSITY: f64 = 16.0;

/// Glyph templates: `#` marks foreground pixels.
const GLYPHS: [[&str; 8]; 10] = [
    [
        "..####..", ".##..##.", ".##..##.", ".##..##.", ".##..##.", ".##..##.", "..####..",
        "........",
    ],
    [
        "...##...", "..###...", ".####...", "...##...", "...##...", "...##...", ".######.",
        "........",
    ],
    [
        "..####..", ".##..##.", ".....##.", "....##..", "...##...", "..##....", ".######.",
        "........",
    ],
    [
        "..####..", ".##..##.", ".....##.", "...###..", ".....##.", ".##..##.", "..####..",
        "........",
    ],
    [
        "....##..", "...###..", "..####..", ".##.##..", ".######.", "....##..", "....##..",
        "........",
    ],
    [
        ".######.", ".##.....", ".#####..", ".....##.", ".....##.", ".##..##.", "..####..",
        "........",
    ],
    [
        "..####..", ".##.....", ".##.....", ".#####..", ".##..##.", ".##..##.", "..####..",
        "........",
    ],
    [
        ".######.", ".....##.", "....##..", "...##...", "..##....", "..##....", "..##....",
        "........",
    ],
    [
        "..####..", ".##..##.", ".##..##.", "..####..", ".##..##.", ".##..##.", "..####..",
        "........",
    ],
    [
        "..####..", ".##..##.", ".##..##.", "..#####.", ".....##.", ".....##.", "..####..",
        "........",
    ],
];

/// Configuration for the digits generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitsConfig {
    /// Number of images (classes cycle 0..9).
    pub n_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DigitsConfig {
    fn default() -> Self {
        DigitsConfig {
            n_samples: 500,
            seed: 29,
        }
    }
}

/// Renders one digit image with jitter and noise; values in `0..=16`.
pub fn render_digit(class: usize, rng: &mut impl Rng) -> Vec<f64> {
    assert!(class < 10, "digit class must be 0..10");
    let glyph = &GLYPHS[class];
    let dx: isize = rng.gen_range(-1..=1);
    let dy: isize = rng.gen_range(-1..=1);
    let peak: f64 = rng.gen_range(11.0..=MAX_INTENSITY);
    let mut img = vec![0.0f64; DIGIT_SIZE * DIGIT_SIZE];
    for (r, row) in glyph.iter().enumerate() {
        for (c, ch) in row.bytes().enumerate() {
            if ch == b'#' {
                let rr = r as isize + dy;
                let cc = c as isize + dx;
                if (0..DIGIT_SIZE as isize).contains(&rr) && (0..DIGIT_SIZE as isize).contains(&cc)
                {
                    let fade: f64 = rng.gen_range(0.75..=1.0);
                    img[rr as usize * DIGIT_SIZE + cc as usize] = (peak * fade).round();
                }
            }
        }
    }
    for v in &mut img {
        if *v == 0.0 && rng.gen_bool(0.06) {
            *v = rng.gen_range(1.0..=3.0f64).round();
        }
    }
    img
}

/// Generates the dataset (labels cycle deterministically through 0..9).
///
/// # Examples
///
/// ```
/// use sqvae_datasets::digits::{generate, DigitsConfig};
///
/// let ds = generate(&DigitsConfig { n_samples: 20, seed: 0 });
/// assert_eq!(ds.width(), 64);
/// ```
pub fn generate(cfg: &DigitsConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let samples = (0..cfg.n_samples)
        .map(|i| render_digit(i % 10, &mut rng))
        .collect();
    Dataset::from_samples(samples).expect("n_samples > 0 produces a dataset")
}

/// The class label of sample `i` under [`generate`]'s cycling order.
pub fn label_of(index: usize) -> usize {
    index % 10
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let ds = generate(&DigitsConfig {
            n_samples: 30,
            seed: 1,
        });
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.width(), 64);
        for s in ds.samples() {
            for &v in s {
                assert!((0.0..=MAX_INTENSITY).contains(&v));
            }
        }
    }

    #[test]
    fn digits_have_foreground() {
        let mut rng = StdRng::seed_from_u64(2);
        for class in 0..10 {
            let img = render_digit(class, &mut rng);
            let lit = img.iter().filter(|&&v| v > 5.0).count();
            assert!(lit >= 10, "class {class} only lit {lit} pixels");
        }
    }

    #[test]
    fn classes_are_distinguishable() {
        // Mean images of distinct classes should differ substantially.
        let mut rng = StdRng::seed_from_u64(3);
        let mean_img = |class: usize, rng: &mut StdRng| {
            let mut acc = vec![0.0; 64];
            for _ in 0..20 {
                for (a, v) in acc.iter_mut().zip(render_digit(class, rng)) {
                    *a += v / 20.0;
                }
            }
            acc
        };
        let m0 = mean_img(0, &mut rng);
        let m1 = mean_img(1, &mut rng);
        let dist: f64 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 10.0, "classes 0 and 1 too similar: {dist}");
    }

    #[test]
    fn determinism_and_labels() {
        let cfg = DigitsConfig {
            n_samples: 12,
            seed: 4,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        assert_eq!(label_of(0), 0);
        assert_eq!(label_of(13), 3);
    }

    #[test]
    #[should_panic(expected = "digit class")]
    fn render_rejects_bad_class() {
        let mut rng = StdRng::seed_from_u64(0);
        render_digit(10, &mut rng);
    }
}
