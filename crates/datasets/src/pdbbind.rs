//! Synthetic PDBbind-ligand-like dataset (32×32 molecule matrices).
//!
//! **Substitution note** (DESIGN.md §3): the refined PDBbind 2019 set holds
//! 4852 protein-ligand complexes; the paper filters to 2492 ligands with at
//! most 32 heavy atoms of C/N/O/F/S. This generator grows ring-rich,
//! drug-like graphs with the same element/bond vocabulary, the same size
//! window, and the paper's dataset cardinality, so the 32×32 learning task
//! has the same sparsity and value statistics.

use crate::dataset::Dataset;
use crate::molgen::{grow_molecule, GrowthConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_chem::{Molecule, MoleculeMatrix};

/// Matrix size for ligand molecules (the paper's 32×32).
pub const PDBBIND_MATRIX_SIZE: usize = 32;

/// Number of ligands the paper retains after filtering (§IV-A).
pub const PAPER_LIGAND_COUNT: usize = 2492;

/// Configuration for the PDBbind-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct PdbbindConfig {
    /// Number of ligands to generate.
    pub n_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PdbbindConfig {
    fn default() -> Self {
        PdbbindConfig {
            n_samples: PAPER_LIGAND_COUNT,
            seed: 23,
        }
    }
}

/// Generates ligand-like molecules.
pub fn generate_molecules(cfg: &PdbbindConfig) -> Vec<Molecule> {
    let growth = GrowthConfig::pdbbind_like();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.n_samples)
        .map(|_| grow_molecule(&growth, &mut rng))
        .collect()
}

/// Generates the dataset of flattened 32×32 molecule-matrix features.
///
/// # Examples
///
/// ```
/// use sqvae_datasets::pdbbind::{generate, PdbbindConfig};
///
/// let ds = generate(&PdbbindConfig { n_samples: 8, seed: 2 });
/// assert_eq!(ds.width(), 1024);
/// ```
pub fn generate(cfg: &PdbbindConfig) -> Dataset {
    let samples = generate_molecules(cfg)
        .iter()
        .map(|m| {
            MoleculeMatrix::encode(m, PDBBIND_MATRIX_SIZE)
                .expect("growth bounded by 32 atoms")
                .into_features()
        })
        .collect();
    Dataset::from_samples(samples).expect("n_samples > 0 produces a dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqvae_chem::{valence, Element};

    #[test]
    fn dataset_shape_and_paper_count() {
        let cfg = PdbbindConfig {
            n_samples: 40,
            seed: 6,
        };
        let ds = generate(&cfg);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.width(), 1024);
        assert_eq!(PdbbindConfig::default().n_samples, 2492);
    }

    #[test]
    fn ligands_are_valid_and_in_size_window() {
        for m in generate_molecules(&PdbbindConfig {
            n_samples: 50,
            seed: 9,
        }) {
            assert!(valence::is_valid(&m));
            assert!(m.n_atoms() >= 6 && m.n_atoms() <= 32, "{}", m.n_atoms());
        }
    }

    #[test]
    fn all_five_elements_appear_across_the_set() {
        let mols = generate_molecules(&PdbbindConfig {
            n_samples: 300,
            seed: 10,
        });
        for e in Element::ALL {
            let total: usize = mols.iter().map(|m| m.count_element(e)).sum();
            assert!(total > 0, "element {e} never generated");
        }
    }

    #[test]
    fn eighty_five_fifteen_split_matches_paper() {
        let ds = generate(&PdbbindConfig {
            n_samples: 100,
            seed: 4,
        });
        let (train, test) = ds.shuffle_split(0.85, 0);
        assert_eq!(train.len(), 85);
        assert_eq!(test.len(), 15);
    }

    #[test]
    fn determinism() {
        let cfg = PdbbindConfig {
            n_samples: 5,
            seed: 42,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }
}
