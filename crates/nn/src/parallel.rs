//! Row-sharded parallel execution across OS threads.
//!
//! Every quantum layer simulates batch rows independently, so the batch
//! dimension is an embarrassingly parallel axis. [`map_rows`] shards a row
//! range across scoped OS threads (`std::thread::scope`; no external
//! dependencies, matching the offline build environment) and writes each
//! row's result into its own preallocated slot. Because results land in row
//! order — never in thread-arrival order — and callers accumulate any
//! reductions over the returned `Vec` in fixed row order, the parallel path
//! is **bit-identical** to the sequential one.

use std::str::FromStr;

/// Name of the environment variable read by [`Threads::from_env`].
pub const THREADS_ENV_VAR: &str = "SQVAE_THREADS";

/// Row-parallelism policy for layers that shard batch rows across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// One worker per available CPU (capped by the number of rows).
    Auto,
    /// Exactly `n` workers (capped by the number of rows); `Fixed(0)` and
    /// `Fixed(1)` run sequentially.
    Fixed(usize),
    /// Sequential execution on the calling thread: the conservative
    /// construction-time default (environment-driven callers use
    /// [`Threads::from_env`], which defaults to [`Threads::Auto`]).
    #[default]
    Off,
}

impl Threads {
    /// Reads the policy from the `SQVAE_THREADS` environment variable:
    /// unset, empty, or `auto` → [`Threads::Auto`]; `0` or `off` →
    /// [`Threads::Off`]; a positive integer `n` → [`Threads::Fixed`]`(n)`.
    /// Unparseable values fall back to [`Threads::Auto`] after a one-time
    /// stderr warning (see [`Threads::from_env_spec`]).
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV_VAR) {
            Ok(v) => Self::from_env_spec(&v),
            Err(_) => Threads::Auto,
        }
    }

    /// Parses an environment-supplied spec, falling back to
    /// [`Threads::Auto`] on an unparseable value — but **warning once** on
    /// stderr, naming the bad value and the accepted ones, instead of
    /// silently ignoring a typo like `SQVAE_THREADS=of`.
    pub fn from_env_spec(raw: &str) -> Self {
        raw.parse().unwrap_or_else(|err| {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("warning: {THREADS_ENV_VAR}: {err}; falling back to 'auto'");
            });
            Threads::Auto
        })
    }

    /// Number of worker threads to use for `n_rows` independent rows.
    pub fn resolve(self, n_rows: usize) -> usize {
        let cap = match self {
            Threads::Off => 1,
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
        };
        cap.min(n_rows.max(1))
    }
}

impl FromStr for Threads {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "" | "auto" => Ok(Threads::Auto),
            "0" | "off" => Ok(Threads::Off),
            other => other
                .parse::<usize>()
                .map(Threads::Fixed)
                .map_err(|_| format!("invalid thread spec '{other}' (want auto, off, or a count)")),
        }
    }
}

/// Computes `f(0), …, f(n_rows - 1)` with rows sharded across scoped OS
/// threads, returning the results **in row order**.
///
/// Each worker owns a contiguous chunk of preallocated output slots, so no
/// result is ever placed by arrival order and the output is bit-identical to
/// the sequential `(0..n_rows).map(f)`. With one resolved worker (or fewer
/// than two rows) no thread is spawned at all.
///
/// # Panics
///
/// Propagates any panic raised by `f` on a worker thread.
pub fn map_rows<R, F>(n_rows: usize, threads: Threads, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.resolve(n_rows);
    if workers <= 1 || n_rows <= 1 {
        return (0..n_rows).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n_rows).map(|_| None).collect();
    let chunk = n_rows.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, block) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in block.iter_mut().enumerate() {
                    *slot = Some(f(w * chunk + i));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every row slot is filled by its worker"))
        .collect()
}

/// Fills the row-major buffer `out` (`out.len() / row_len` rows of
/// `row_len` values) by calling `f(row, scratch, slot)` for every row, with
/// rows sharded across scoped OS threads exactly like [`map_rows`].
///
/// Unlike [`map_rows`], results are written straight into the caller's
/// preallocated storage — no per-row `Vec` is ever allocated — and each
/// worker builds one `scratch` value with `init` and reuses it across every
/// row of its contiguous chunk, so per-row working buffers amortize to one
/// allocation per worker. Row order is still deterministic: each slot is
/// written by exactly one worker, so the output is bit-identical to the
/// sequential loop.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `row_len`, and propagates any
/// panic raised by `f` on a worker thread.
pub fn fill_rows<S, F, G>(out: &mut [f64], row_len: usize, threads: Threads, init: G, f: F)
where
    S: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut S, &mut [f64]) + Sync,
{
    if row_len == 0 {
        assert!(out.is_empty(), "zero-width rows with non-empty output");
        return;
    }
    assert_eq!(out.len() % row_len, 0, "output is not whole rows");
    let n_rows = out.len() / row_len;
    let workers = threads.resolve(n_rows);
    if workers <= 1 || n_rows <= 1 {
        let mut scratch = init();
        for (r, slot) in out.chunks_mut(row_len).enumerate() {
            f(r, &mut scratch, slot);
        }
        return;
    }
    let chunk = n_rows.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, block) in out.chunks_mut(chunk * row_len).enumerate() {
            let f = &f;
            let init = &init;
            scope.spawn(move || {
                let mut scratch = init();
                for (i, slot) in block.chunks_mut(row_len).enumerate() {
                    f(w * chunk + i, &mut scratch, slot);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_every_policy() {
        let expected: Vec<usize> = (0..37).map(|r| r * r).collect();
        for threads in [
            Threads::Off,
            Threads::Auto,
            Threads::Fixed(1),
            Threads::Fixed(3),
            Threads::Fixed(64),
        ] {
            assert_eq!(map_rows(37, threads, |r| r * r), expected, "{threads:?}");
        }
    }

    #[test]
    fn empty_and_single_row() {
        assert_eq!(map_rows(0, Threads::Fixed(4), |r| r), Vec::<usize>::new());
        assert_eq!(map_rows(1, Threads::Fixed(4), |r| r + 10), vec![10]);
    }

    #[test]
    fn resolve_caps_by_rows_and_floor_is_one() {
        assert_eq!(Threads::Off.resolve(100), 1);
        assert_eq!(Threads::Fixed(0).resolve(100), 1);
        assert_eq!(Threads::Fixed(4).resolve(2), 2);
        assert_eq!(Threads::Fixed(4).resolve(100), 4);
        assert!(Threads::Auto.resolve(100) >= 1);
        assert_eq!(Threads::Auto.resolve(0), 1);
    }

    #[test]
    fn parses_thread_specs() {
        assert_eq!("auto".parse::<Threads>(), Ok(Threads::Auto));
        assert_eq!("".parse::<Threads>(), Ok(Threads::Auto));
        assert_eq!("off".parse::<Threads>(), Ok(Threads::Off));
        assert_eq!("0".parse::<Threads>(), Ok(Threads::Off));
        assert_eq!("6".parse::<Threads>(), Ok(Threads::Fixed(6)));
        assert!("six".parse::<Threads>().is_err());
    }

    #[test]
    fn env_spec_typo_falls_back_to_auto() {
        // The warning is emitted once on stderr; the value still resolves.
        assert_eq!(Threads::from_env_spec("of"), Threads::Auto);
        assert_eq!(Threads::from_env_spec("3"), Threads::Fixed(3));
        assert_eq!(Threads::from_env_spec("off"), Threads::Off);
    }

    #[test]
    fn fill_rows_matches_sequential_and_reuses_scratch() {
        let row_len = 3;
        let expected: Vec<f64> = (0..13 * row_len)
            .map(|i| (i / row_len + i % row_len) as f64)
            .collect();
        for threads in [
            Threads::Off,
            Threads::Fixed(1),
            Threads::Fixed(4),
            Threads::Fixed(64),
        ] {
            let mut out = vec![0.0; 13 * row_len];
            fill_rows(
                &mut out,
                row_len,
                threads,
                Vec::<f64>::new,
                |r, scratch, slot| {
                    // The scratch persists across a worker's rows: grow it once
                    // and fill from it, as the probability readout path does.
                    scratch.clear();
                    scratch.extend((0..row_len).map(|c| (r + c) as f64));
                    slot.copy_from_slice(scratch);
                },
            );
            assert_eq!(out, expected, "{threads:?}");
        }
    }

    #[test]
    fn fill_rows_handles_empty_output() {
        let mut out: Vec<f64> = Vec::new();
        fill_rows(&mut out, 4, Threads::Fixed(4), || (), |_, (), _| {});
        fill_rows(&mut out, 0, Threads::Off, || (), |_, (), _| {});
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "not whole rows")]
    fn fill_rows_rejects_ragged_output() {
        let mut out = vec![0.0; 5];
        fill_rows(&mut out, 3, Threads::Off, || (), |_, (), _| {});
    }

    #[test]
    fn rows_collect_in_order_not_arrival_order() {
        // Later rows finish first (they sleep less), yet results stay ordered.
        let out = map_rows(8, Threads::Fixed(4), |r| {
            std::thread::sleep(std::time::Duration::from_millis(8 - r as u64));
            r
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
