//! Row-sharded parallel execution across OS threads.
//!
//! Every quantum layer simulates batch rows independently, so the batch
//! dimension is an embarrassingly parallel axis. [`map_rows`] shards a row
//! range across scoped OS threads (`std::thread::scope`; no external
//! dependencies, matching the offline build environment) and writes each
//! row's result into its own preallocated slot. Because results land in row
//! order — never in thread-arrival order — and callers accumulate any
//! reductions over the returned `Vec` in fixed row order, the parallel path
//! is **bit-identical** to the sequential one.

use std::str::FromStr;

/// Name of the environment variable read by [`Threads::from_env`].
pub const THREADS_ENV_VAR: &str = "SQVAE_THREADS";

/// Row-parallelism policy for layers that shard batch rows across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// One worker per available CPU (capped by the number of rows).
    Auto,
    /// Exactly `n` workers (capped by the number of rows); `Fixed(0)` and
    /// `Fixed(1)` run sequentially.
    Fixed(usize),
    /// Sequential execution on the calling thread: the conservative
    /// construction-time default (environment-driven callers use
    /// [`Threads::from_env`], which defaults to [`Threads::Auto`]).
    #[default]
    Off,
}

impl Threads {
    /// Reads the policy from the `SQVAE_THREADS` environment variable:
    /// unset, empty, or `auto` → [`Threads::Auto`]; `0` or `off` →
    /// [`Threads::Off`]; a positive integer `n` → [`Threads::Fixed`]`(n)`.
    /// Unparseable values fall back to [`Threads::Auto`] after a one-time
    /// stderr warning (see [`Threads::from_env_spec`]).
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV_VAR) {
            Ok(v) => Self::from_env_spec(&v),
            Err(_) => Threads::Auto,
        }
    }

    /// Parses an environment-supplied spec, falling back to
    /// [`Threads::Auto`] on an unparseable value — but **warning once** on
    /// stderr, naming the bad value and the accepted ones, instead of
    /// silently ignoring a typo like `SQVAE_THREADS=of`.
    pub fn from_env_spec(raw: &str) -> Self {
        raw.parse().unwrap_or_else(|err| {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("warning: {THREADS_ENV_VAR}: {err}; falling back to 'auto'");
            });
            Threads::Auto
        })
    }

    /// Number of worker threads to use for `n_rows` independent rows.
    pub fn resolve(self, n_rows: usize) -> usize {
        let cap = match self {
            Threads::Off => 1,
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
        };
        cap.min(n_rows.max(1))
    }
}

impl FromStr for Threads {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "" | "auto" => Ok(Threads::Auto),
            "0" | "off" => Ok(Threads::Off),
            other => other
                .parse::<usize>()
                .map(Threads::Fixed)
                .map_err(|_| format!("invalid thread spec '{other}' (want auto, off, or a count)")),
        }
    }
}

/// Computes `f(0), …, f(n_rows - 1)` with rows sharded across scoped OS
/// threads, returning the results **in row order**.
///
/// Each worker owns a contiguous chunk of preallocated output slots, so no
/// result is ever placed by arrival order and the output is bit-identical to
/// the sequential `(0..n_rows).map(f)`. With one resolved worker (or fewer
/// than two rows) no thread is spawned at all.
///
/// # Panics
///
/// Propagates any panic raised by `f` on a worker thread.
pub fn map_rows<R, F>(n_rows: usize, threads: Threads, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.resolve(n_rows);
    if workers <= 1 || n_rows <= 1 {
        return (0..n_rows).map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n_rows).map(|_| None).collect();
    let chunk = n_rows.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, block) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in block.iter_mut().enumerate() {
                    *slot = Some(f(w * chunk + i));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every row slot is filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_every_policy() {
        let expected: Vec<usize> = (0..37).map(|r| r * r).collect();
        for threads in [
            Threads::Off,
            Threads::Auto,
            Threads::Fixed(1),
            Threads::Fixed(3),
            Threads::Fixed(64),
        ] {
            assert_eq!(map_rows(37, threads, |r| r * r), expected, "{threads:?}");
        }
    }

    #[test]
    fn empty_and_single_row() {
        assert_eq!(map_rows(0, Threads::Fixed(4), |r| r), Vec::<usize>::new());
        assert_eq!(map_rows(1, Threads::Fixed(4), |r| r + 10), vec![10]);
    }

    #[test]
    fn resolve_caps_by_rows_and_floor_is_one() {
        assert_eq!(Threads::Off.resolve(100), 1);
        assert_eq!(Threads::Fixed(0).resolve(100), 1);
        assert_eq!(Threads::Fixed(4).resolve(2), 2);
        assert_eq!(Threads::Fixed(4).resolve(100), 4);
        assert!(Threads::Auto.resolve(100) >= 1);
        assert_eq!(Threads::Auto.resolve(0), 1);
    }

    #[test]
    fn parses_thread_specs() {
        assert_eq!("auto".parse::<Threads>(), Ok(Threads::Auto));
        assert_eq!("".parse::<Threads>(), Ok(Threads::Auto));
        assert_eq!("off".parse::<Threads>(), Ok(Threads::Off));
        assert_eq!("0".parse::<Threads>(), Ok(Threads::Off));
        assert_eq!("6".parse::<Threads>(), Ok(Threads::Fixed(6)));
        assert!("six".parse::<Threads>().is_err());
    }

    #[test]
    fn env_spec_typo_falls_back_to_auto() {
        // The warning is emitted once on stderr; the value still resolves.
        assert_eq!(Threads::from_env_spec("of"), Threads::Auto);
        assert_eq!(Threads::from_env_spec("3"), Threads::Fixed(3));
        assert_eq!(Threads::from_env_spec("off"), Threads::Off);
    }

    #[test]
    fn rows_collect_in_order_not_arrival_order() {
        // Later rows finish first (they sleep less), yet results stay ordered.
        let out = map_rows(8, Threads::Fixed(4), |r| {
            std::thread::sleep(std::time::Duration::from_millis(8 - r as u64));
            r
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
