//! Dense row-major `f64` matrix.
//!
//! The only tensor type the classical layers need: mini-batches are
//! `[batch, features]` matrices and parameters are `[in, out]` matrices.

use crate::error::{NnError, Result};
use std::fmt;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use sqvae_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b)?, a);
/// # Ok::<(), sqvae_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `data.len() != rows·cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                expected: (rows, cols),
                actual: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when rows have unequal lengths or
    /// `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(NnError::ShapeMismatch {
                expected: (1, 1),
                actual: (0, 0),
            });
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(NnError::ShapeMismatch {
                    expected: (nrows, ncols),
                    actual: (nrows, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// A `1 × n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    fn check_same_shape(&self, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(NnError::ShapeMismatch {
                expected: self.shape(),
                actual: other.shape(),
            });
        }
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for different shapes.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other)?;
        Ok(self.zip_map(other, |a, b| a + b))
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for different shapes.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other)?;
        Ok(self.zip_map(other, |a, b| a - b))
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for different shapes.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other)?;
        Ok(self.zip_map(other, |a, b| a * b))
    }

    /// In-place `self += scale · other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for different shapes.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) -> Result<()> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Applies `f` element-wise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two equal-shaped matrices element-wise.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ (internal callers validate first).
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                expected: (self.cols, other.cols),
                actual: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when row counts disagree.
    pub fn transpose_matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                expected: (self.rows, other.cols),
                actual: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when column counts disagree.
    pub fn matmul_transpose(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                expected: (self.rows, other.rows),
                actual: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                out.data[i * other.rows + j] = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
            }
        }
        Ok(out)
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Adds a `1 × cols` row vector to every row (bias broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the vector width differs.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Result<Matrix> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(NnError::ShapeMismatch {
                expected: (1, self.cols),
                actual: row.shape(),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Column sums as a `1 × cols` row vector (bias gradient).
    pub fn column_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Sum of every element.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of every element (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Stacks row-vectors `rows` (each `1 × cols`) into one matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for empty input or ragged widths.
    pub fn vstack(rows: &[Matrix]) -> Result<Matrix> {
        if rows.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected: (1, 1),
                actual: (0, 0),
            });
        }
        let cols = rows[0].cols;
        let mut data = Vec::with_capacity(rows.iter().map(|m| m.len()).sum());
        let mut total_rows = 0;
        for m in rows {
            if m.cols != cols {
                return Err(NnError::ShapeMismatch {
                    expected: (m.rows, cols),
                    actual: m.shape(),
                });
            }
            data.extend_from_slice(&m.data);
            total_rows += m.rows;
        }
        Ok(Matrix {
            rows: total_rows,
            cols,
            data,
        })
    }

    /// Horizontal slice: columns `start..end` of every row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for an invalid range.
    pub fn columns(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.cols {
            return Err(NnError::ShapeMismatch {
                expected: (self.rows, self.cols),
                actual: (start, end),
            });
        }
        let width = end - start;
        let mut data = Vec::with_capacity(self.rows * width);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[start..end]);
        }
        Ok(Matrix {
            rows: self.rows,
            cols: width,
            data,
        })
    }

    /// Concatenates matrices side by side (equal row counts).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for empty input or ragged heights.
    pub fn hstack(parts: &[Matrix]) -> Result<Matrix> {
        if parts.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected: (1, 1),
                actual: (0, 0),
            });
        }
        let rows = parts[0].rows;
        for m in parts {
            if m.rows != rows {
                return Err(NnError::ShapeMismatch {
                    expected: (rows, m.cols),
                    actual: m.shape(),
                });
            }
        }
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let orow = out.row_mut(r);
            let mut off = 0;
            for m in parts {
                orow[off..off + m.cols].copy_from_slice(m.row(r));
                off += m.cols;
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);
        let f = Matrix::filled(2, 2, 1.5);
        assert_eq!(f.sum(), 6.0);
        let i = Matrix::identity(3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_matmul_equals_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| (r + c) as f64 * 0.5);
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_transpose_equals_explicit_transpose() {
        let a = Matrix::from_fn(2, 3, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.25);
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn broadcast_and_column_sums_are_adjoint() {
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b).unwrap();
        assert_eq!(y.get(2, 1), 5.0 + 20.0);
        let sums = y.column_sums();
        assert_eq!(sums.shape(), (1, 2));
        assert_eq!(sums.get(0, 0), 0.0 + 2.0 + 4.0 + 30.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert_eq!(
            a.add(&b).unwrap(),
            Matrix::from_rows(&[&[4.0, 2.0]]).unwrap()
        );
        assert_eq!(
            a.sub(&b).unwrap(),
            Matrix::from_rows(&[&[-2.0, -6.0]]).unwrap()
        );
        assert_eq!(
            a.hadamard(&b).unwrap(),
            Matrix::from_rows(&[&[3.0, -8.0]]).unwrap()
        );
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, -4.0]]).unwrap());
        let mut c = a.clone();
        c.add_scaled(&b, 0.5).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[2.5, 0.0]]).unwrap());
    }

    #[test]
    fn stats() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn vstack_and_hstack() {
        let a = Matrix::row_vector(&[1.0, 2.0]);
        let b = Matrix::row_vector(&[3.0, 4.0]);
        let v = Matrix::vstack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.get(1, 0), 3.0);
        let h = Matrix::hstack(&[v.clone(), v.clone()]).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.get(1, 2), 3.0);
        assert!(Matrix::vstack(&[]).is_err());
        assert!(Matrix::hstack(&[a, Matrix::zeros(3, 1)]).is_err());
    }

    #[test]
    fn columns_slice() {
        let m = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f64);
        let s = m.columns(1, 3).unwrap();
        assert_eq!(s, Matrix::from_rows(&[&[1.0, 2.0], &[5.0, 6.0]]).unwrap());
        assert!(m.columns(3, 2).is_err());
        assert!(m.columns(0, 5).is_err());
    }

    #[test]
    fn display_renders_all_rows() {
        let m = Matrix::identity(2);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
