//! Simulator-backend selection policy.
//!
//! The quantum substrate (`sqvae-quantum`) exposes a `Backend` trait with
//! multiple register implementations; *which* one a model's quantum layers
//! use is a training-time policy, exactly like the [`crate::Threads`]
//! row-parallelism policy that lives next door. [`BackendKind`] names the
//! available choices, parses from the `SQVAE_BACKEND` environment variable
//! and `--backend` experiment flags, and travels through
//! [`crate::Module::set_backend`] from the trainer down to every quantum
//! stage. Layers without a simulator inside simply ignore it.
//!
//! Every backend computes the same quantities; selections differ only in
//! wall-clock (and, at the ~1e-15 level, in floating-point rounding, since
//! fused kernels reorder arithmetic). For a fixed selection, results are
//! fully deterministic.

use std::fmt;
use std::str::FromStr;

/// Name of the environment variable read by [`BackendKind::from_env`].
pub const BACKEND_ENV_VAR: &str = "SQVAE_BACKEND";

/// Which simulator backend the quantum layers execute on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The dense reference statevector kernels (one pass per gate).
    #[default]
    Dense,
    /// Dense amplitudes behind fused kernels: adjacent single-qubit gates
    /// on one wire collapse into a single 2×2 pass, CNOT runs into one
    /// permutation pass, and controlled kernels skip the control-clear
    /// half-space.
    Fused,
    /// Structure-of-arrays dense amplitudes: split re/im `f64` planes whose
    /// branch-free unit-stride kernels autovectorize into packed FMA, with
    /// cache-blocked tape execution — the fastest choice for large
    /// registers (≥ ~10 qubits).
    Soa,
}

impl BackendKind {
    /// Reads the policy from the `SQVAE_BACKEND` environment variable:
    /// unset, empty, or `dense` → [`BackendKind::Dense`]; `fused` →
    /// [`BackendKind::Fused`]; `soa` → [`BackendKind::Soa`]. Unparseable
    /// values fall back to the default
    /// (dense) after a one-time stderr warning (see
    /// [`BackendKind::from_env_spec`]).
    pub fn from_env() -> Self {
        match std::env::var(BACKEND_ENV_VAR) {
            Ok(v) => Self::from_env_spec(&v),
            Err(_) => BackendKind::default(),
        }
    }

    /// Parses an environment-supplied spec, falling back to the default
    /// (dense) on an unparseable value — but **warning once** on stderr,
    /// naming the bad value and the accepted ones, instead of silently
    /// running a typo like `SQVAE_BACKEND=fusd` on the dense backend.
    pub fn from_env_spec(raw: &str) -> Self {
        raw.parse().unwrap_or_else(|err| {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("warning: {BACKEND_ENV_VAR}: {err}; falling back to 'dense'");
            });
            BackendKind::default()
        })
    }

    /// Short lowercase name (`dense` / `fused` / `soa`), matching what
    /// [`FromStr`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Fused => "fused",
            BackendKind::Soa => "soa",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "" | "dense" => Ok(BackendKind::Dense),
            "fused" => Ok(BackendKind::Fused),
            "soa" => Ok(BackendKind::Soa),
            other => Err(format!(
                "invalid backend spec '{other}' (want dense, fused, or soa)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_backend_specs() {
        assert_eq!("dense".parse::<BackendKind>(), Ok(BackendKind::Dense));
        assert_eq!("".parse::<BackendKind>(), Ok(BackendKind::Dense));
        assert_eq!("fused".parse::<BackendKind>(), Ok(BackendKind::Fused));
        assert_eq!(" fused ".parse::<BackendKind>(), Ok(BackendKind::Fused));
        assert_eq!("soa".parse::<BackendKind>(), Ok(BackendKind::Soa));
        let err = "gpu".parse::<BackendKind>().unwrap_err();
        assert!(err.contains("soa"), "typo warning must list soa: {err}");
    }

    #[test]
    fn default_is_dense() {
        assert_eq!(BackendKind::default(), BackendKind::Dense);
    }

    #[test]
    fn env_spec_typo_falls_back_to_dense() {
        // The warning is emitted once on stderr; the value still resolves.
        assert_eq!(BackendKind::from_env_spec("fusd"), BackendKind::Dense);
        assert_eq!(BackendKind::from_env_spec("fused"), BackendKind::Fused);
        assert_eq!(BackendKind::from_env_spec("soa"), BackendKind::Soa);
        assert_eq!(BackendKind::from_env_spec(""), BackendKind::Dense);
    }

    #[test]
    fn names_round_trip() {
        for kind in [BackendKind::Dense, BackendKind::Fused, BackendKind::Soa] {
            assert_eq!(kind.name().parse::<BackendKind>(), Ok(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
    }
}
