//! The layer abstraction: explicit forward/backward modules.
//!
//! Instead of a tape-based autograd, every layer caches what it needs in
//! `forward` and produces input gradients in `backward`, accumulating
//! parameter gradients into its [`ParamTensor`]s. This mirrors how the hybrid
//! quantum-classical pipeline composes: the quantum layers implement the same
//! contract with adjoint differentiation inside.

use crate::backend::BackendKind;
use crate::error::Result;
use crate::exec::ExecPolicy;
use crate::matrix::Matrix;
use crate::parallel::Threads;

/// A trainable tensor: value and accumulated gradient of identical shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamTensor {
    /// Current parameter values.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
}

impl ParamTensor {
    /// Wraps an initial value with a zero gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        ParamTensor { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A differentiable layer mapping `[batch, in]` to `[batch, out]`.
///
/// Contract: `backward` must be called after `forward` with an upstream
/// gradient of the same shape as the forward output, and returns the
/// gradient with respect to the forward input. Parameter gradients
/// *accumulate* across calls until [`Module::zero_grad`].
pub trait Module {
    /// Forward pass over a mini-batch.
    ///
    /// # Errors
    ///
    /// Returns shape errors when the input width does not match the layer.
    fn forward(&mut self, input: &Matrix) -> Result<Matrix>;

    /// Backward pass: consumes `dL/d(output)`, returns `dL/d(input)`, and
    /// accumulates `dL/d(params)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] when no forward
    /// activation is cached, or shape errors.
    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix>;

    /// Mutable access to every trainable tensor (possibly none).
    fn parameters(&mut self) -> Vec<&mut ParamTensor>;

    /// Total scalar parameter count.
    fn parameter_count(&mut self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }

    /// Zeros every parameter gradient.
    fn zero_grad(&mut self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }

    /// Sets the unified execution policy — batch-row parallelism and
    /// simulator backend in one value. Quantum stages apply both knobs;
    /// purely classical layers ignore it; containers forward it to
    /// children.
    ///
    /// The default routes through the deprecated per-knob setters so
    /// existing layer implementations keep working unchanged; new layers
    /// should override this method instead.
    fn set_exec_policy(&mut self, policy: ExecPolicy) {
        #[allow(deprecated)]
        {
            self.set_threads(policy.threads);
            self.set_backend(policy.backend);
        }
    }

    /// Sets the batch-row parallelism policy. Layers that simulate rows
    /// independently (the quantum stages) shard work accordingly; purely
    /// classical layers ignore it, and containers forward it to children.
    #[deprecated(note = "use `Module::set_exec_policy` with an `ExecPolicy`")]
    fn set_threads(&mut self, _threads: Threads) {}

    /// Sets the simulator backend the layer's quantum circuits execute on.
    /// Purely classical layers ignore it; containers forward it to children
    /// — the same contract as [`Module::set_threads`].
    #[deprecated(note = "use `Module::set_exec_policy` with an `ExecPolicy`")]
    fn set_backend(&mut self, _backend: BackendKind) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_tensor_zero_grad() {
        let mut p = ParamTensor::new(Matrix::filled(2, 2, 1.0));
        p.grad.fill(3.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }
}
