//! Fully connected layer.

use crate::error::{NnError, Result};
use crate::init;
use crate::matrix::Matrix;
use crate::module::{Module, ParamTensor};
use rand::Rng;

/// A dense affine layer `y = x·W + b` with `W: [in, out]`, `b: [1, out]`.
///
/// # Examples
///
/// ```
/// use sqvae_nn::{Linear, Matrix, Module};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut layer = Linear::new(4, 2, &mut rng);
/// let x = Matrix::zeros(8, 4);
/// let y = layer.forward(&x)?;
/// assert_eq!(y.shape(), (8, 2));
/// # Ok::<(), sqvae_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamTensor,
    bias: ParamTensor,
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: ParamTensor::new(init::xavier_uniform(in_features, out_features, rng)),
            bias: ParamTensor::new(Matrix::zeros(1, out_features)),
            cached_input: None,
        }
    }

    /// Creates a layer from explicit weight and bias values (for tests).
    ///
    /// # Errors
    ///
    /// Returns a shape error when `bias` is not `1 × weight.cols()`.
    pub fn from_parts(weight: Matrix, bias: Matrix) -> Result<Self> {
        if bias.rows() != 1 || bias.cols() != weight.cols() {
            return Err(NnError::ShapeMismatch {
                expected: (1, weight.cols()),
                actual: bias.shape(),
            });
        }
        Ok(Linear {
            weight: ParamTensor::new(weight),
            bias: ParamTensor::new(bias),
            cached_input: None,
        })
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.value.cols()
    }

    /// Borrow of the weight tensor.
    pub fn weight(&self) -> &ParamTensor {
        &self.weight
    }

    /// Borrow of the bias tensor.
    pub fn bias(&self) -> &ParamTensor {
        &self.bias
    }
}

impl Module for Linear {
    fn forward(&mut self, input: &Matrix) -> Result<Matrix> {
        let out = input
            .matmul(&self.weight.value)?
            .add_row_broadcast(&self.bias.value)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        // dW = xᵀ · g ; db = column sums of g ; dx = g · Wᵀ.
        let grad_w = input.transpose_matmul(grad_output)?;
        self.weight.grad.add_scaled(&grad_w, 1.0)?;
        self.bias.grad.add_scaled(&grad_output.column_sums(), 1.0)?;
        grad_output.matmul_transpose(&self.weight.value)
    }

    fn parameters(&mut self) -> Vec<&mut ParamTensor> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixed_layer() -> Linear {
        Linear::from_parts(
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap(),
            Matrix::row_vector(&[0.5, -0.5]),
        )
        .unwrap()
    }

    #[test]
    fn forward_is_affine() {
        let mut l = fixed_layer();
        let x = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 1.0]]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y, Matrix::from_rows(&[&[1.5, 1.5], &[8.5, 9.5]]).unwrap());
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(64, 32, &mut rng);
        assert_eq!(l.parameter_count(), 64 * 32 + 32);
        assert_eq!(l.in_features(), 64);
        assert_eq!(l.out_features(), 32);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = fixed_layer();
        assert_eq!(
            l.backward(&Matrix::zeros(1, 2)).unwrap_err(),
            NnError::BackwardBeforeForward
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.25, -0.75]]).unwrap();
        // Loss = sum of outputs → upstream gradient of ones.
        let ones = Matrix::filled(2, 2, 1.0);
        let y = l.forward(&x).unwrap();
        let grad_x = l.backward(&ones).unwrap();
        let base: f64 = y.sum();
        let eps = 1e-6;

        // Check dL/dW numerically for a few entries.
        for (r, c) in [(0, 0), (2, 1), (1, 0)] {
            let mut lp = l.clone();
            let v = lp.weight.value.get(r, c);
            lp.weight.value.set(r, c, v + eps);
            let fp = lp.forward(&x).unwrap().sum();
            let fd = (fp - base) / eps;
            assert!(
                (l.weight.grad.get(r, c) - fd).abs() < 1e-4,
                "dW[{r},{c}]: {} vs {fd}",
                l.weight.grad.get(r, c)
            );
        }
        // Check dL/dx numerically.
        for (r, c) in [(0, 0), (1, 2)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut lf = l.clone();
            lf.cached_input = None;
            let fp = lf.forward(&xp).unwrap().sum();
            let fd = (fp - base) / eps;
            assert!((grad_x.get(r, c) - fd).abs() < 1e-4);
        }
        // Bias gradient: dL/db_j = batch size (2) for a sum loss.
        assert!((l.bias.grad.get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = fixed_layer();
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]).unwrap();
        let g = Matrix::filled(1, 2, 1.0);
        l.forward(&x).unwrap();
        l.backward(&g).unwrap();
        let first = l.weight.grad.clone();
        l.forward(&x).unwrap();
        l.backward(&g).unwrap();
        assert_eq!(l.weight.grad, first.scale(2.0));
        l.zero_grad();
        assert_eq!(l.weight.grad.sum(), 0.0);
    }

    #[test]
    fn from_parts_validates_bias_shape() {
        assert!(Linear::from_parts(Matrix::zeros(3, 2), Matrix::zeros(1, 3)).is_err());
    }
}
