//! Error type for the neural-network substrate.

use std::error::Error;
use std::fmt;

/// Errors raised by matrix operations and layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Shape the operation required.
        expected: (usize, usize),
        /// Shape that was provided.
        actual: (usize, usize),
    },
    /// A layer was asked to run backward before any forward pass.
    BackwardBeforeForward,
    /// An optimizer was stepped over a different number of parameter tensors
    /// than it was first used with.
    OptimizerStateMismatch {
        /// Tensors tracked by the optimizer.
        expected: usize,
        /// Tensors supplied to this step.
        actual: usize,
    },
    /// Training diverged: non-finite losses or gradients kept appearing
    /// after the guard rail exhausted its rollback budget (see
    /// `sqvae_core::TrainConfig::nan_guard`).
    NonFinite {
        /// Epoch (0-based) of the final, unrecoverable event.
        epoch: usize,
        /// Rollbacks the guard attempted before giving up.
        recoveries: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            NnError::BackwardBeforeForward => {
                write!(f, "backward called before forward")
            }
            NnError::OptimizerStateMismatch { expected, actual } => write!(
                f,
                "optimizer state mismatch: tracking {expected} tensors, got {actual}"
            ),
            NnError::NonFinite { epoch, recoveries } => write!(
                f,
                "training diverged at epoch {epoch}: non-finite loss/gradients persisted \
                 after {recoveries} rollback(s)"
            ),
        }
    }
}

impl Error for NnError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NnError::ShapeMismatch {
            expected: (2, 3),
            actual: (3, 2),
        };
        assert_eq!(e.to_string(), "shape mismatch: expected 2x3, got 3x2");
        assert!(NnError::BackwardBeforeForward
            .to_string()
            .contains("backward"));
    }
}
