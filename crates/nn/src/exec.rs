//! Unified execution policy for quantum-bearing models.
//!
//! PRs 2 and 4 grew two parallel plumbing paths — `Module::set_threads` for
//! row parallelism and `Module::set_backend` for simulator selection —
//! through every container, layer, trainer config, and experiment flag.
//! [`ExecPolicy`] bundles both knobs into one value with one setter
//! ([`crate::Module::set_exec_policy`]), so adding the next execution knob
//! (e.g. a tape-cache policy) touches one struct instead of six types. The
//! old setters survive as deprecated thin wrappers; no call site breaks.

use crate::backend::BackendKind;
use crate::parallel::Threads;

/// How a model executes its quantum workload: batch-row parallelism plus
/// simulator backend, carried as one value from `TrainConfig` / `ExpArgs`
/// down to every quantum stage.
///
/// The default matches layer construction defaults (sequential, dense);
/// [`ExecPolicy::from_env`] matches the trainer's environment-driven
/// defaults (`SQVAE_THREADS`, `SQVAE_BACKEND`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecPolicy {
    /// Batch-row parallelism policy.
    pub threads: Threads,
    /// Simulator backend selection.
    pub backend: BackendKind,
}

impl ExecPolicy {
    /// Creates a policy from both knobs.
    pub fn new(threads: Threads, backend: BackendKind) -> Self {
        ExecPolicy { threads, backend }
    }

    /// Reads both knobs from the environment (`SQVAE_THREADS`,
    /// `SQVAE_BACKEND`), warning once on stderr about unparseable values.
    pub fn from_env() -> Self {
        ExecPolicy {
            threads: Threads::from_env(),
            backend: BackendKind::from_env(),
        }
    }

    /// Returns the policy with a different thread setting.
    #[must_use]
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the policy with a different backend selection.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_layer_construction_defaults() {
        let p = ExecPolicy::default();
        assert_eq!(p.threads, Threads::Off);
        assert_eq!(p.backend, BackendKind::Dense);
    }

    #[test]
    fn builders_set_each_knob() {
        let p = ExecPolicy::default()
            .with_threads(Threads::Fixed(3))
            .with_backend(BackendKind::Fused);
        assert_eq!(p, ExecPolicy::new(Threads::Fixed(3), BackendKind::Fused));
    }
}
