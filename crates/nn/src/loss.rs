//! Loss functions with analytic gradients.
//!
//! The paper's objective is the negative ELBO: an MSE reconstruction term
//! plus (for VAEs) the KL divergence between the approximate Gaussian
//! posterior and the standard-normal prior (§II-B).

use crate::error::{NnError, Result};
use crate::matrix::Matrix;

/// Mean-squared-error loss and its gradient with respect to `pred`.
///
/// The mean is taken over every element (batch × features), matching the
/// paper's reported "train MSE loss" curves.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for different shapes.
///
/// # Examples
///
/// ```
/// use sqvae_nn::{loss, Matrix};
///
/// let pred = Matrix::from_rows(&[&[1.0, 2.0]])?;
/// let target = Matrix::from_rows(&[&[0.0, 4.0]])?;
/// let (l, grad) = loss::mse(&pred, &target)?;
/// assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-12);
/// assert_eq!(grad.shape(), (1, 2));
/// # Ok::<(), sqvae_nn::NnError>(())
/// ```
pub fn mse(pred: &Matrix, target: &Matrix) -> Result<(f64, Matrix)> {
    if pred.shape() != target.shape() {
        return Err(NnError::ShapeMismatch {
            expected: pred.shape(),
            actual: target.shape(),
        });
    }
    let n = pred.len() as f64;
    let diff = pred.sub(target)?;
    let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

/// KL divergence `D_KL(N(μ, σ²) ‖ N(0, I))`, mean over the batch, with
/// gradients with respect to `mu` and `logvar`.
///
/// Per sample: `-½ Σ_j (1 + logvar_j − μ_j² − e^{logvar_j})`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for different shapes.
pub fn gaussian_kl(mu: &Matrix, logvar: &Matrix) -> Result<(f64, Matrix, Matrix)> {
    if mu.shape() != logvar.shape() {
        return Err(NnError::ShapeMismatch {
            expected: mu.shape(),
            actual: logvar.shape(),
        });
    }
    let batch = mu.rows().max(1) as f64;
    let mut total = 0.0;
    for (m, lv) in mu.as_slice().iter().zip(logvar.as_slice()) {
        total += -0.5 * (1.0 + lv - m * m - lv.exp());
    }
    let loss = total / batch;
    let grad_mu = mu.scale(1.0 / batch);
    let grad_logvar = logvar.map(|lv| 0.5 * (lv.exp() - 1.0) / batch);
    Ok((loss, grad_mu, grad_logvar))
}

/// Binary cross-entropy with logits clamped for numerical stability; returns
/// the loss and its gradient with respect to `pred` (probabilities).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for different shapes.
pub fn binary_cross_entropy(pred: &Matrix, target: &Matrix) -> Result<(f64, Matrix)> {
    if pred.shape() != target.shape() {
        return Err(NnError::ShapeMismatch {
            expected: pred.shape(),
            actual: target.shape(),
        });
    }
    const EPS: f64 = 1e-12;
    let n = pred.len() as f64;
    let mut total = 0.0;
    for (p, t) in pred.as_slice().iter().zip(target.as_slice()) {
        let p = p.clamp(EPS, 1.0 - EPS);
        total += -(t * p.ln() + (1.0 - t) * (1.0 - p).ln());
    }
    let grad = pred.zip_map(target, |p, t| {
        let p = p.clamp(EPS, 1.0 - EPS);
        ((1.0 - t) / (1.0 - p) - t / p) / n
    });
    Ok((total / n, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_equal_inputs() {
        let a = Matrix::filled(2, 3, 1.5);
        let (l, g) = mse(&a, &a).unwrap();
        assert_eq!(l, 0.0);
        assert_eq!(g.frobenius_norm(), 0.0);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[&[0.3, -0.7], &[1.2, 0.1]]).unwrap();
        let target = Matrix::from_rows(&[&[0.0, 0.5], &[1.0, -0.2]]).unwrap();
        let (base, grad) = mse(&pred, &target).unwrap();
        let eps = 1e-7;
        for (r, c) in [(0, 0), (1, 1)] {
            let mut p = pred.clone();
            p.set(r, c, pred.get(r, c) + eps);
            let (lp, _) = mse(&p, &target).unwrap();
            assert!((grad.get(r, c) - (lp - base) / eps).abs() < 1e-5);
        }
    }

    #[test]
    fn mse_shape_mismatch() {
        assert!(mse(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn kl_zero_at_standard_normal() {
        // μ = 0, logvar = 0 → σ = 1 → KL = 0.
        let mu = Matrix::zeros(4, 3);
        let lv = Matrix::zeros(4, 3);
        let (l, gm, glv) = gaussian_kl(&mu, &lv).unwrap();
        assert!(l.abs() < 1e-15);
        assert_eq!(gm.frobenius_norm(), 0.0);
        assert_eq!(glv.frobenius_norm(), 0.0);
    }

    #[test]
    fn kl_is_positive_away_from_prior() {
        let mu = Matrix::filled(2, 2, 1.0);
        let lv = Matrix::filled(2, 2, 0.5);
        let (l, _, _) = gaussian_kl(&mu, &lv).unwrap();
        assert!(l > 0.0);
    }

    #[test]
    fn kl_gradients_match_finite_difference() {
        let mu = Matrix::from_rows(&[&[0.5, -0.3], &[0.1, 0.8]]).unwrap();
        let lv = Matrix::from_rows(&[&[0.2, -0.4], &[-0.1, 0.3]]).unwrap();
        let (base, gm, glv) = gaussian_kl(&mu, &lv).unwrap();
        let eps = 1e-7;
        let mut mp = mu.clone();
        mp.set(1, 1, mu.get(1, 1) + eps);
        let (lp, _, _) = gaussian_kl(&mp, &lv).unwrap();
        assert!((gm.get(1, 1) - (lp - base) / eps).abs() < 1e-5);
        let mut lvp = lv.clone();
        lvp.set(0, 1, lv.get(0, 1) + eps);
        let (lp, _, _) = gaussian_kl(&mu, &lvp).unwrap();
        assert!((glv.get(0, 1) - (lp - base) / eps).abs() < 1e-5);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let pred = Matrix::from_rows(&[&[0.3, 0.8]]).unwrap();
        let target = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let (base, grad) = binary_cross_entropy(&pred, &target).unwrap();
        let eps = 1e-7;
        for c in 0..2 {
            let mut p = pred.clone();
            p.set(0, c, pred.get(0, c) + eps);
            let (lp, _) = binary_cross_entropy(&p, &target).unwrap();
            assert!((grad.get(0, c) - (lp - base) / eps).abs() < 1e-4);
        }
    }

    #[test]
    fn bce_survives_saturated_probabilities() {
        let pred = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let target = Matrix::from_rows(&[&[0.0, 1.0]]).unwrap();
        let (l, g) = binary_cross_entropy(&pred, &target).unwrap();
        assert!(l.is_finite());
        assert!(g.as_slice().iter().all(|x| x.is_finite()));
    }
}
