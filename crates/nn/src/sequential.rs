//! Composition of layers.

use crate::error::Result;
use crate::matrix::Matrix;
use crate::module::{Module, ParamTensor};

/// A stack of modules applied in order; the building block for the paper's
/// 3-hidden-layer classical encoders/decoders.
///
/// # Examples
///
/// ```
/// use sqvae_nn::{Activation, ActivationKind, Linear, Matrix, Module, Sequential};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// // The paper's classical encoder: 64 → 32 → 16 → 6 with ReLU.
/// let mut encoder = Sequential::new();
/// encoder.push(Linear::new(64, 32, &mut rng));
/// encoder.push(Activation::new(ActivationKind::Relu));
/// encoder.push(Linear::new(32, 16, &mut rng));
/// encoder.push(Activation::new(ActivationKind::Relu));
/// encoder.push(Linear::new(16, 6, &mut rng));
/// let z = encoder.forward(&Matrix::zeros(4, 64))?;
/// assert_eq!(z.shape(), (4, 6));
/// # Ok::<(), sqvae_nn::NnError>(())
/// ```
///
/// Layers are boxed as `dyn Module + Send`, so a built stack can move onto
/// a worker thread (the inference service serves warm models that way).
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Module + Send>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("n_layers", &self.layers.len())
            .finish()
    }
}

impl Sequential {
    /// An empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Module + Send + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer (for dynamically built stacks).
    pub fn push_boxed(&mut self, layer: Box<dyn Module + Send>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&mut self, input: &Matrix) -> Result<Matrix> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn parameters(&mut self) -> Vec<&mut ParamTensor> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.parameters())
            .collect()
    }

    fn set_exec_policy(&mut self, policy: crate::exec::ExecPolicy) {
        for layer in &mut self.layers {
            layer.set_exec_policy(policy);
        }
    }

    #[allow(deprecated)]
    fn set_threads(&mut self, threads: crate::parallel::Threads) {
        for layer in &mut self.layers {
            layer.set_threads(threads);
        }
    }

    #[allow(deprecated)]
    fn set_backend(&mut self, backend: crate::backend::BackendKind) {
        for layer in &mut self.layers {
            layer.set_backend(backend);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Activation, ActivationKind};
    use crate::linear::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Sequential::new();
        s.push(Linear::new(4, 8, &mut rng));
        s.push(Activation::new(ActivationKind::Tanh));
        s.push(Linear::new(8, 3, &mut rng));
        s
    }

    #[test]
    fn forward_chains_layers() {
        let mut m = mlp(1);
        let y = m.forward(&Matrix::zeros(5, 4)).unwrap();
        assert_eq!(y.shape(), (5, 3));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn parameter_count_sums_layers() {
        let mut m = mlp(1);
        assert_eq!(m.parameter_count(), (4 * 8 + 8) + (8 * 3 + 3));
    }

    #[test]
    fn end_to_end_gradient_matches_finite_difference() {
        let mut m = mlp(11);
        let x = Matrix::from_rows(&[&[0.2, -0.4, 0.6, 1.0], &[-0.5, 0.3, 0.0, -1.0]]).unwrap();
        let y = m.forward(&x).unwrap();
        let base = y.sum();
        let grad_in = m.backward(&Matrix::filled(2, 3, 1.0)).unwrap();

        let eps = 1e-6;
        for (r, c) in [(0, 0), (1, 3), (0, 2)] {
            let mut m2 = mlp(11);
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let fp = m2.forward(&xp).unwrap().sum();
            let fd = (fp - base) / eps;
            assert!(
                (grad_in.get(r, c) - fd).abs() < 1e-4,
                "dx[{r},{c}]: {} vs {fd}",
                grad_in.get(r, c)
            );
        }

        // Spot-check a weight gradient through the whole stack.
        let mut m2 = mlp(11);
        {
            let params = m2.parameters();
            // params[0] is the first linear's weight.
            let w = &mut params.into_iter().next().unwrap().value;
            w.set(1, 2, w.get(1, 2) + eps);
        }
        let fp = m2.forward(&x).unwrap().sum();
        let fd = (fp - base) / eps;
        let mut m3 = mlp(11);
        m3.forward(&x).unwrap();
        m3.backward(&Matrix::filled(2, 3, 1.0)).unwrap();
        let g = m3.parameters().into_iter().next().unwrap().grad.get(1, 2);
        assert!((g - fd).abs() < 1e-4, "dW: {g} vs {fd}");
    }

    #[test]
    fn zero_grad_clears_all_layers() {
        let mut m = mlp(2);
        m.forward(&Matrix::filled(1, 4, 1.0)).unwrap();
        m.backward(&Matrix::filled(1, 3, 1.0)).unwrap();
        assert!(m.parameters().iter().any(|p| p.grad.frobenius_norm() > 0.0));
        m.zero_grad();
        assert!(m
            .parameters()
            .iter()
            .all(|p| p.grad.frobenius_norm() == 0.0));
    }
}
