//! Weight initialization.
//!
//! All initializers take an explicit RNG so every experiment in the
//! reproduction is deterministic given its seed.

use crate::matrix::Matrix;
use rand::Rng;

/// Uniform initialization over `[-limit, limit]`.
pub fn uniform(rows: usize, cols: usize, limit: f64, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

/// Xavier/Glorot uniform initialization: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// Used for the classical linear layers (the PyTorch default family the
/// paper's classical baselines rely on).
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    uniform(fan_in, fan_out, limit, rng)
}

/// He/Kaiming uniform initialization: `limit = sqrt(6 / fan_in)` (for ReLU
/// stacks).
pub fn he_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / fan_in as f64).sqrt();
    uniform(fan_in, fan_out, limit, rng)
}

/// Quantum rotation-angle initialization: uniform over `[-π, π]`, the full
/// parameter range the paper contrasts with the "much more vast" classical
/// parameter space (§III-C).
pub fn angle_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    uniform(rows, cols, std::f64::consts::PI, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(64, 32, &mut rng);
        let limit = (6.0 / 96.0f64).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
        assert_eq!(m.shape(), (64, 32));
    }

    #[test]
    fn he_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = he_uniform(16, 8, &mut rng);
        let limit = (6.0 / 16.0f64).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn angle_uniform_covers_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = angle_uniform(40, 25, &mut rng);
        let max = m.as_slice().iter().cloned().fold(f64::MIN, f64::max);
        let min = m.as_slice().iter().cloned().fold(f64::MAX, f64::min);
        assert!(max <= std::f64::consts::PI && min >= -std::f64::consts::PI);
        // With 1000 samples we should see values beyond ±π/2.
        assert!(max > std::f64::consts::FRAC_PI_2);
        assert!(min < -std::f64::consts::FRAC_PI_2);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
