//! First-order optimizers.
//!
//! Heterogeneous quantum/classical learning rates (§III-C, Fig. 7 of the
//! paper) are realized by instantiating one optimizer per parameter group —
//! e.g. `Adam::new(0.03)` stepping the quantum angles and `Adam::new(0.01)`
//! stepping the classical weights — and stepping each with its group's
//! tensors every iteration.

use crate::error::{NnError, Result};
use crate::matrix::Matrix;
use crate::module::ParamTensor;

/// A first-order optimizer over a fixed set of parameter tensors.
pub trait Optimizer {
    /// Applies one update step using each tensor's accumulated gradient.
    ///
    /// The same tensors (same count, same shapes, same order) must be passed
    /// on every call so internal state lines up.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::OptimizerStateMismatch`] when the tensor count
    /// changes between steps, or a shape error when a tensor changes shape.
    fn step(&mut self, params: &mut [&mut ParamTensor]) -> Result<()>;

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut ParamTensor]) -> Result<()> {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
        }
        if self.velocity.len() != params.len() {
            return Err(NnError::OptimizerStateMismatch {
                expected: self.velocity.len(),
                actual: params.len(),
            });
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if v.shape() != p.grad.shape() {
                return Err(NnError::ShapeMismatch {
                    expected: v.shape(),
                    actual: p.grad.shape(),
                });
            }
            if self.momentum != 0.0 {
                *v = v.scale(self.momentum);
                v.add_scaled(&p.grad, 1.0)?;
                p.value.add_scaled(v, -self.lr)?;
            } else {
                p.value.add_scaled(&p.grad, -self.lr)?;
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with the paper's defaults `β₁ = 0.9`, `β₂ = 0.999`
/// (§IV-B).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the paper's default betas and `ε = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with explicit hyper-parameters.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut ParamTensor]) -> Result<()> {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.v = self.m.clone();
        }
        if self.m.len() != params.len() {
            return Err(NnError::OptimizerStateMismatch {
                expected: self.m.len(),
                actual: params.len(),
            });
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            if m.shape() != p.grad.shape() {
                return Err(NnError::ShapeMismatch {
                    expected: m.shape(),
                    actual: p.grad.shape(),
                });
            }
            for i in 0..p.grad.len() {
                let g = p.grad.as_slice()[i];
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.value.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &ParamTensor) -> Matrix {
        // L = ½‖x − 3‖² → dL/dx = x − 3.
        p.value.map(|x| x - 3.0)
    }

    fn converges(opt: &mut dyn Optimizer, iters: usize) -> f64 {
        let mut p = ParamTensor::new(Matrix::filled(2, 2, 10.0));
        for _ in 0..iters {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.grad.add_scaled(&g, 1.0).unwrap();
            let mut refs = [&mut p];
            opt.step(&mut refs).unwrap();
        }
        p.value.map(|x| (x - 3.0).abs()).sum()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(converges(&mut opt, 200) < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!(converges(&mut opt, 600) < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(converges(&mut opt, 400) < 1e-4);
        assert_eq!(opt.steps(), 400);
    }

    #[test]
    fn adam_first_step_moves_by_lr() {
        // With bias correction, the very first Adam step has magnitude ≈ lr.
        let mut p = ParamTensor::new(Matrix::filled(1, 1, 0.0));
        p.grad.fill(7.0);
        let mut opt = Adam::new(0.01);
        let mut refs = [&mut p];
        opt.step(&mut refs).unwrap();
        assert!((p.value.get(0, 0) + 0.01).abs() < 1e-6);
    }

    #[test]
    fn optimizer_rejects_changing_tensor_count() {
        let mut a = ParamTensor::new(Matrix::zeros(1, 1));
        let mut b = ParamTensor::new(Matrix::zeros(1, 1));
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut a]).unwrap();
        assert!(matches!(
            opt.step(&mut [&mut a, &mut b]),
            Err(NnError::OptimizerStateMismatch { .. })
        ));
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    fn heterogeneous_groups_use_their_own_rates() {
        // Two groups with different LRs: the larger-LR group moves further in
        // one plain-SGD step.
        let mut q = ParamTensor::new(Matrix::filled(1, 1, 1.0));
        let mut c = ParamTensor::new(Matrix::filled(1, 1, 1.0));
        q.grad.fill(1.0);
        c.grad.fill(1.0);
        let mut qopt = Sgd::new(0.03);
        let mut copt = Sgd::new(0.01);
        qopt.step(&mut [&mut q]).unwrap();
        copt.step(&mut [&mut c]).unwrap();
        assert!((q.value.get(0, 0) - 0.97).abs() < 1e-12);
        assert!((c.value.get(0, 0) - 0.99).abs() < 1e-12);
    }
}
