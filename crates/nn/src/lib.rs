//! # sqvae-nn
//!
//! A minimal, dependency-free neural-network substrate for the DATE 2022
//! SQ-VAE reproduction: the classical halves of the paper's hybrid
//! quantum-classical autoencoders (PyTorch's role in the original stack).
//!
//! Layers follow an explicit forward/backward [`Module`] contract so that
//! quantum layers (adjoint-differentiated circuits living in `sqvae-core`)
//! compose with classical ones in a single backpropagation chain.
//!
//! ## Example: one training step of a tiny regressor
//!
//! ```
//! use sqvae_nn::{loss, Activation, ActivationKind, Adam, Linear, Matrix, Module,
//!                Optimizer, Sequential};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), sqvae_nn::NnError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Sequential::new();
//! model.push(Linear::new(2, 8, &mut rng));
//! model.push(Activation::new(ActivationKind::Relu));
//! model.push(Linear::new(8, 1, &mut rng));
//!
//! let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]])?;
//! let target = Matrix::from_rows(&[&[1.0], &[0.0]])?;
//!
//! let mut opt = Adam::new(0.01);
//! model.zero_grad();
//! let pred = model.forward(&x)?;
//! let (_, grad) = loss::mse(&pred, &target)?;
//! model.backward(&grad)?;
//! let mut params = model.parameters();
//! opt.step(&mut params)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod activation;
mod error;
mod linear;
mod matrix;
mod module;
mod optim;
mod sequential;

pub mod backend;
pub mod exec;
pub mod init;
pub mod loss;
pub mod parallel;
pub mod serialize;

pub use activation::{Activation, ActivationKind};
pub use backend::BackendKind;
pub use error::{NnError, Result};
pub use exec::ExecPolicy;
pub use linear::Linear;
pub use matrix::Matrix;
pub use module::{Module, ParamTensor};
pub use optim::{Adam, Optimizer, Sgd};
pub use parallel::Threads;
pub use sequential::Sequential;
