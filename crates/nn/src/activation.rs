//! Element-wise activation layers.

use crate::error::{NnError, Result};
use crate::matrix::Matrix;
use crate::module::{Module, ParamTensor};

/// The activation function applied by an [`Activation`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActivationKind {
    /// `max(0, x)` — used by the paper's classical encoder/decoder stacks.
    #[default]
    Relu,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Leaky ReLU with slope 0.01 on the negative side.
    LeakyRelu,
    /// Identity (handy for configurable stacks).
    Identity,
}

/// A stateless element-wise activation.
///
/// # Examples
///
/// ```
/// use sqvae_nn::{Activation, ActivationKind, Matrix, Module};
///
/// let mut relu = Activation::new(ActivationKind::Relu);
/// let y = relu.forward(&Matrix::from_rows(&[&[-1.0, 2.0]])?)?;
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// # Ok::<(), sqvae_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    cached_input: Option<Matrix>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation {
            kind,
            cached_input: None,
        }
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }

    fn apply(kind: ActivationKind, x: f64) -> f64 {
        match kind {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            ActivationKind::Identity => x,
        }
    }

    fn derivative(kind: ActivationKind, x: f64) -> f64 {
        match kind {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Sigmoid => {
                let s = Self::apply(ActivationKind::Sigmoid, x);
                s * (1.0 - s)
            }
            ActivationKind::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            ActivationKind::LeakyRelu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            ActivationKind::Identity => 1.0,
        }
    }
}

impl Module for Activation {
    fn forward(&mut self, input: &Matrix) -> Result<Matrix> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|x| Self::apply(self.kind, x)))
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward)?;
        if input.shape() != grad_output.shape() {
            return Err(NnError::ShapeMismatch {
                expected: input.shape(),
                actual: grad_output.shape(),
            });
        }
        Ok(input.zip_map(grad_output, |x, g| Self::derivative(self.kind, x) * g))
    }

    fn parameters(&mut self) -> Vec<&mut ParamTensor> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_derivative(kind: ActivationKind, x: f64) {
        let eps = 1e-6;
        let f = |v: f64| Activation::apply(kind, v);
        let fd = (f(x + eps) - f(x - eps)) / (2.0 * eps);
        let an = Activation::derivative(kind, x);
        assert!((fd - an).abs() < 1e-5, "{kind:?} at {x}: {an} vs {fd}");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        for kind in [
            ActivationKind::Relu,
            ActivationKind::Sigmoid,
            ActivationKind::Tanh,
            ActivationKind::LeakyRelu,
            ActivationKind::Identity,
        ] {
            for x in [-2.0, -0.5, 0.3, 1.7] {
                check_derivative(kind, x);
            }
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut a = Activation::new(ActivationKind::Relu);
        let y = a
            .forward(&Matrix::from_rows(&[&[-3.0, 0.0, 2.0]]).unwrap())
            .unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_is_bounded() {
        let mut a = Activation::new(ActivationKind::Sigmoid);
        let y = a
            .forward(&Matrix::from_rows(&[&[-50.0, 0.0, 50.0]]).unwrap())
            .unwrap();
        assert!(y.as_slice()[0] < 1e-12);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-12);
        assert!(y.as_slice()[2] > 1.0 - 1e-12);
    }

    #[test]
    fn backward_masks_gradient_through_relu() {
        let mut a = Activation::new(ActivationKind::Relu);
        a.forward(&Matrix::from_rows(&[&[-1.0, 1.0]]).unwrap())
            .unwrap();
        let g = a
            .backward(&Matrix::from_rows(&[&[5.0, 5.0]]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut a = Activation::new(ActivationKind::Tanh);
        assert!(a.backward(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn no_parameters() {
        let mut a = Activation::new(ActivationKind::Relu);
        assert_eq!(a.parameter_count(), 0);
    }
}
