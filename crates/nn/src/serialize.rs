//! Binary serialization primitives for tensors.
//!
//! The checkpoint format (``sqvae_core::checkpoint``) persists trained
//! parameter tensors; the encoding lives here, next to [`Matrix`], so the
//! byte layout of a tensor is owned by the crate that owns the type.
//!
//! Everything is little-endian and exact: `f64` values travel as their IEEE
//! bit patterns (`to_bits`/`from_bits`), so a save → load round trip is
//! bit-identical — no decimal formatting is ever involved. Readers validate
//! lengths before allocating, so corrupt or truncated streams produce
//! [`std::io::Error`]s (kind `UnexpectedEof` / `InvalidData`), never panics
//! or unbounded allocations.

use crate::matrix::Matrix;
use std::io::{self, Read, Write};

/// Upper bound on the element count of a deserialized matrix (2^26 ≈ 67M
/// doubles ≈ 512 MiB) — a sanity cap so a corrupt header cannot trigger an
/// enormous allocation.
pub const MAX_MATRIX_ELEMS: usize = 1 << 26;

/// Upper bound on the byte length of a deserialized string.
pub const MAX_STRING_BYTES: usize = 1 << 16;

/// Writes a `u32` as 4 little-endian bytes.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32` from 4 little-endian bytes.
///
/// # Errors
///
/// Propagates reader errors (`UnexpectedEof` on truncation).
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Writes a `u64` as 8 little-endian bytes.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u64` from 8 little-endian bytes.
///
/// # Errors
///
/// Propagates reader errors (`UnexpectedEof` on truncation).
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a UTF-8 string as a `u32` byte length followed by the bytes.
///
/// # Errors
///
/// Returns `InvalidData` when the string exceeds [`MAX_STRING_BYTES`];
/// propagates writer errors.
pub fn write_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    if s.len() > MAX_STRING_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("string of {} bytes exceeds the serialization cap", s.len()),
        ));
    }
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

/// Reads a string written by [`write_string`].
///
/// # Errors
///
/// Returns `InvalidData` for over-long lengths or invalid UTF-8;
/// `UnexpectedEof` on truncation.
pub fn read_string(r: &mut impl Read) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > MAX_STRING_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("string length {len} exceeds the serialization cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "string is not valid UTF-8"))
}

/// Writes a matrix as `rows: u32`, `cols: u32`, then `rows·cols` IEEE-754
/// bit patterns (`u64` little-endian, row-major).
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_matrix(w: &mut impl Write, m: &Matrix) -> io::Result<()> {
    write_u32(w, m.rows() as u32)?;
    write_u32(w, m.cols() as u32)?;
    for &v in m.as_slice() {
        write_u64(w, v.to_bits())?;
    }
    Ok(())
}

/// Reads a matrix written by [`write_matrix`], bit-identically.
///
/// # Errors
///
/// Returns `InvalidData` when the header describes more than
/// [`MAX_MATRIX_ELEMS`] elements; `UnexpectedEof` on truncation.
pub fn read_matrix(r: &mut impl Read) -> io::Result<Matrix> {
    let rows = read_u32(r)? as usize;
    let cols = read_u32(r)? as usize;
    let elems = rows.checked_mul(cols).filter(|&n| n <= MAX_MATRIX_ELEMS);
    let Some(elems) = elems else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("matrix shape {rows}x{cols} exceeds the serialization cap"),
        ));
    };
    let mut data = Vec::with_capacity(elems);
    for _ in 0..elems {
        data.push(f64::from_bits(read_u64(r)?));
    }
    Matrix::from_vec(rows, cols, data)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "matrix shape mismatch"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 7).unwrap();
        write_u64(&mut buf, u64::MAX - 3).unwrap();
        write_string(&mut buf, "héllo").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u32(&mut r).unwrap(), 7);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 3);
        assert_eq!(read_string(&mut r).unwrap(), "héllo");
    }

    #[test]
    fn matrix_round_trip_is_bit_identical() {
        // Include values that decimal formatting would mangle.
        let m = Matrix::from_fn(3, 4, |r, c| {
            ((r * 4 + c) as f64).exp() * 1e-7 + f64::EPSILON * r as f64
        });
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let back = read_matrix(&mut buf.as_slice()).unwrap();
        assert_eq!(back.shape(), m.shape());
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn special_values_survive() {
        let m = Matrix::from_vec(
            1,
            4,
            vec![f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let back = read_matrix(&mut buf.as_slice()).unwrap();
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        write_matrix(&mut buf, &Matrix::filled(2, 2, 1.5)).unwrap();
        for cut in [1, 4, 9, buf.len() - 1] {
            let err = read_matrix(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_headers_are_rejected_before_allocating() {
        // A matrix header claiming u32::MAX × u32::MAX elements.
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        write_u32(&mut buf, u32::MAX).unwrap();
        let err = read_matrix(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Same for strings.
        let mut buf = Vec::new();
        write_u32(&mut buf, u32::MAX).unwrap();
        let err = read_string(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
