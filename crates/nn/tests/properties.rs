//! Property-based invariants of the NN substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_nn::{loss, Activation, ActivationKind, Linear, Matrix, Module, Sequential};

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// (AB)C == A(BC) within numerical tolerance.
    #[test]
    fn matmul_is_associative(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 2),
        c in arb_matrix(2, 5),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Transpose is an involution and (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn transpose_identities(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let ab_t = a.matmul(&b).unwrap().transpose();
        let bt_at = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in ab_t.as_slice().iter().zip(bt_at.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// MSE is non-negative and zero only at equality.
    #[test]
    fn mse_non_negative(a in arb_matrix(2, 3), b in arb_matrix(2, 3)) {
        let (l, _) = loss::mse(&a, &b).unwrap();
        prop_assert!(l >= 0.0);
        let (l_self, _) = loss::mse(&a, &a).unwrap();
        prop_assert_eq!(l_self, 0.0);
    }

    /// Gaussian KL against the standard normal prior is non-negative.
    #[test]
    fn kl_non_negative(mu in arb_matrix(2, 3), lv in arb_matrix(2, 3)) {
        let (l, _, _) = loss::gaussian_kl(&mu, &lv).unwrap();
        prop_assert!(l >= -1e-12);
    }

    /// Linear backward computes the exact gradient of a sum-loss.
    #[test]
    fn linear_input_gradient_is_exact(x in arb_matrix(2, 3), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(3, 2, &mut rng);
        layer.forward(&x).unwrap();
        let grad_in = layer.backward(&Matrix::filled(2, 2, 1.0)).unwrap();
        // For L = Σ y, dL/dx_{rc} = Σ_j W_{cj}, independent of x.
        for r in 0..2 {
            for c in 0..3 {
                let expected: f64 = (0..2).map(|j| layer.weight().value.get(c, j)).sum();
                prop_assert!((grad_in.get(r, c) - expected).abs() < 1e-10);
            }
        }
    }

    /// A ReLU MLP is piecewise-linear: scaling a positive-regime input by a
    /// small factor keeps outputs finite and deterministic.
    #[test]
    fn mlp_forward_is_deterministic(x in arb_matrix(3, 4), seed in 0u64..100) {
        let build = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = Sequential::new();
            s.push(Linear::new(4, 6, &mut rng));
            s.push(Activation::new(ActivationKind::Relu));
            s.push(Linear::new(6, 2, &mut rng));
            s
        };
        let y1 = build().forward(&x).unwrap();
        let y2 = build().forward(&x).unwrap();
        prop_assert_eq!(y1, y2);
    }
}
