//! # sqvae-chem
//!
//! A self-contained cheminformatics substrate standing in for RDKit in the
//! DATE 2022 SQ-VAE reproduction (*Scalable Variational Quantum Circuits for
//! Autoencoder-based Drug Discovery*, Li & Ghosh).
//!
//! It provides exactly what the paper's pipeline needs:
//!
//! * [`Molecule`] — heavy-atom molecular graphs over C/N/O/F/S with implicit
//!   hydrogens, connectivity, and fragment utilities.
//! * [`MoleculeMatrix`] — the paper's Fig. 3 codec between graphs and the
//!   symmetric atom/bond-code matrices the autoencoders train on, robust to
//!   continuous model outputs.
//! * [`valence`] / [`sanitize`] — the validity model and repairs applied to
//!   decoded samples.
//! * [`rings`] — SSSR-approximate ring perception (aromatic rings,
//!   macrocycles, fusion).
//! * [`smiles`] — a writer/parser pair for human-readable inspection.
//! * [`properties`] — QED / logP / SA scorers with MolGAN-style [0,1]
//!   normalization (Table II's metrics). Each scorer documents how it
//!   substitutes for its RDKit counterpart.
//!
//! ## Example
//!
//! ```
//! use sqvae_chem::{properties::DrugProperties, smiles, MoleculeMatrix};
//!
//! # fn main() -> Result<(), sqvae_chem::ChemError> {
//! let mol = smiles::parse("CC(=O)OC")?;
//! let matrix = MoleculeMatrix::encode(&mol, 8)?;     // 8×8 features
//! let decoded = matrix.decode();                     // round-trips
//! assert_eq!(decoded.formula(), mol.formula());
//! let props = DrugProperties::compute(&decoded);
//! assert!(props.qed > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod bond;
mod element;
mod error;
mod matrix;
mod molecule;

pub mod fingerprint;
pub mod properties;
pub mod rings;
pub mod sanitize;
pub mod scaffold;
pub mod smiles;
pub mod valence;

pub use bond::BondOrder;
pub use element::Element;
pub use error::{ChemError, Result};
pub use matrix::MoleculeMatrix;
pub use molecule::{Bond, Molecule};
