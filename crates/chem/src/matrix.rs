//! The molecule-matrix codec (Fig. 3 of the paper).
//!
//! A molecule with up to `size` heavy atoms becomes a symmetric
//! `size × size` matrix: diagonal entries encode atom types (1-C, 2-N, 3-O,
//! 4-F, 5-S; 0 = no atom) and off-diagonal entries encode bond types
//! (0-NONE, 1-SINGLE, 2-DOUBLE, 3-TRIPLE, 4-AROMATIC). This is the feature
//! representation every autoencoder in the reproduction trains on, and
//! decoding (with rounding) is how sampled feature vectors become molecules
//! again.

use crate::bond::BondOrder;
use crate::element::Element;
use crate::error::{ChemError, Result};
use crate::molecule::Molecule;

/// A square, real-valued molecule matrix.
///
/// Values are stored as `f64` because model outputs are continuous; decoding
/// rounds to the nearest valid code.
#[derive(Debug, Clone, PartialEq)]
pub struct MoleculeMatrix {
    size: usize,
    data: Vec<f64>,
}

impl MoleculeMatrix {
    /// An all-zero matrix (no atoms).
    pub fn zeros(size: usize) -> Self {
        MoleculeMatrix {
            size,
            data: vec![0.0; size * size],
        }
    }

    /// Wraps a row-major value buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::BadMatrixShape`] when `data.len() != size²` or
    /// `size == 0`.
    pub fn from_values(size: usize, data: Vec<f64>) -> Result<Self> {
        if size == 0 || data.len() != size * size {
            return Err(ChemError::BadMatrixShape { len: data.len() });
        }
        Ok(MoleculeMatrix { size, data })
    }

    /// Encodes a molecule into a `size × size` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::MoleculeTooLarge`] when the molecule has more
    /// than `size` heavy atoms, or [`ChemError::BadMatrixShape`] for size 0.
    pub fn encode(mol: &Molecule, size: usize) -> Result<Self> {
        if size == 0 {
            return Err(ChemError::BadMatrixShape { len: 0 });
        }
        if mol.n_atoms() > size {
            return Err(ChemError::MoleculeTooLarge {
                atoms: mol.n_atoms(),
                size,
            });
        }
        let mut m = MoleculeMatrix::zeros(size);
        for (i, &e) in mol.atoms().iter().enumerate() {
            m.set(i, i, e.matrix_code() as f64);
        }
        for b in mol.bonds() {
            let code = b.order.matrix_code() as f64;
            m.set(b.a, b.b, code);
            m.set(b.b, b.a, code);
        }
        Ok(m)
    }

    /// Decodes the matrix back into a molecular graph.
    ///
    /// Robust to continuous model outputs: every entry is rounded to the
    /// nearest integer code and clamped into the valid range; the
    /// off-diagonal is symmetrized by averaging before rounding. Bonds whose
    /// endpoints decode to "no atom" are dropped. The result is *not*
    /// sanitized — see [`crate::sanitize`].
    pub fn decode(&self) -> Molecule {
        let n = self.size;
        // Diagonal → atoms (with index remapping to skip empty slots).
        let mut remap = vec![usize::MAX; n];
        let mut mol = Molecule::new();
        for (i, slot) in remap.iter_mut().enumerate() {
            let code = round_clamp(self.get(i, i), 5);
            if let Some(e) = Element::from_matrix_code(code) {
                *slot = mol.add_atom(e);
            }
        }
        // Off-diagonal → bonds.
        for i in 0..n {
            for j in (i + 1)..n {
                if remap[i] == usize::MAX || remap[j] == usize::MAX {
                    continue;
                }
                let avg = (self.get(i, j) + self.get(j, i)) / 2.0;
                let code = round_clamp(avg, 4);
                if let Some(order) = BondOrder::from_matrix_code(code) {
                    // Duplicate bonds are impossible here (each pair visited
                    // once), so this cannot fail.
                    let _ = mol.add_bond(remap[i], remap[j], order);
                }
            }
        }
        mol
    }

    /// Matrix size (rows == cols).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Flat row-major view — the feature vector fed to the autoencoders.
    pub fn as_features(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix into its feature vector.
    pub fn into_features(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.size && c < self.size, "matrix index out of bounds");
        self.data[r * self.size + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.size && c < self.size, "matrix index out of bounds");
        self.data[r * self.size + c] = v;
    }

    /// L1 norm of the feature vector (used for the paper's normalized
    /// experiments, Fig. 4(b)).
    pub fn l1_norm(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// The matrix divided by its L1 norm ("directly dividing each
    /// non-negative feature value by their sum", §III-B). Returns an
    /// unmodified copy when the norm is zero.
    pub fn l1_normalized(&self) -> MoleculeMatrix {
        let norm = self.l1_norm();
        if norm == 0.0 {
            return self.clone();
        }
        MoleculeMatrix {
            size: self.size,
            data: self.data.iter().map(|x| x / norm).collect(),
        }
    }
}

fn round_clamp(v: f64, max_code: u8) -> u8 {
    let r = v.round();
    if r < 0.0 {
        0
    } else if r > max_code as f64 {
        max_code
    } else {
        r as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ethanol() -> Molecule {
        let mut m = Molecule::new();
        let c1 = m.add_atom(Element::C);
        let c2 = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        m.add_bond(c1, c2, BondOrder::Single).unwrap();
        m.add_bond(c2, o, BondOrder::Single).unwrap();
        m
    }

    #[test]
    fn encode_places_codes() {
        let m = MoleculeMatrix::encode(&ethanol(), 4).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(2, 2), 3.0);
        assert_eq!(m.get(3, 3), 0.0);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(1, 2), 1.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn encode_rejects_oversized() {
        assert!(matches!(
            MoleculeMatrix::encode(&ethanol(), 2),
            Err(ChemError::MoleculeTooLarge { atoms: 3, size: 2 })
        ));
        assert!(MoleculeMatrix::encode(&ethanol(), 0).is_err());
    }

    #[test]
    fn exact_round_trip() {
        let mol = ethanol();
        let m = MoleculeMatrix::encode(&mol, 8).unwrap();
        let back = m.decode();
        assert_eq!(back.n_atoms(), 3);
        assert_eq!(back.n_bonds(), 2);
        assert_eq!(back.formula(), mol.formula());
    }

    #[test]
    fn decode_rounds_noisy_values() {
        let mol = ethanol();
        let mut m = MoleculeMatrix::encode(&mol, 4).unwrap();
        // Perturb each value by < 0.5 so rounding recovers the codes.
        for r in 0..4 {
            for c in 0..4 {
                let v = m.get(r, c);
                m.set(r, c, v + if (r + c) % 2 == 0 { 0.3 } else { -0.3 });
            }
        }
        let back = m.decode();
        assert_eq!(back.formula(), mol.formula());
        assert_eq!(back.n_bonds(), mol.n_bonds());
    }

    #[test]
    fn decode_clamps_out_of_range() {
        let mut m = MoleculeMatrix::zeros(2);
        m.set(0, 0, 9.7); // clamps to 5 → sulfur
        m.set(1, 1, -3.0); // clamps to 0 → no atom
        m.set(0, 1, 11.0);
        m.set(1, 0, 11.0);
        let mol = m.decode();
        assert_eq!(mol.n_atoms(), 1);
        assert_eq!(mol.element(0), Element::S);
        assert_eq!(mol.n_bonds(), 0); // partner atom missing
    }

    #[test]
    fn decode_symmetrizes_by_averaging() {
        let mut m = MoleculeMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(1, 1, 1.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 3.0); // average 2 → double bond
        let mol = m.decode();
        assert_eq!(mol.n_bonds(), 1);
        assert_eq!(mol.bonds()[0].order, BondOrder::Double);
    }

    #[test]
    fn decode_skips_bonds_to_empty_slots() {
        let mut m = MoleculeMatrix::zeros(3);
        m.set(0, 0, 1.0);
        // slot 1 has no atom but a bond value
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        let mol = m.decode();
        assert_eq!(mol.n_atoms(), 1);
        assert_eq!(mol.n_bonds(), 0);
    }

    #[test]
    fn l1_normalization() {
        let m = MoleculeMatrix::encode(&ethanol(), 3).unwrap();
        let norm = m.l1_norm();
        assert!(norm > 0.0);
        let n = m.l1_normalized();
        assert!((n.as_features().iter().map(|x| x.abs()).sum::<f64>() - 1.0).abs() < 1e-12);
        // Zero matrix: no-op.
        let z = MoleculeMatrix::zeros(2).l1_normalized();
        assert_eq!(z.l1_norm(), 0.0);
    }

    #[test]
    fn from_values_validates_shape() {
        assert!(MoleculeMatrix::from_values(2, vec![0.0; 3]).is_err());
        assert!(MoleculeMatrix::from_values(0, vec![]).is_err());
        assert!(MoleculeMatrix::from_values(2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn features_round_trip() {
        let m = MoleculeMatrix::encode(&ethanol(), 3).unwrap();
        let feats = m.clone().into_features();
        assert_eq!(feats.len(), 9);
        let m2 = MoleculeMatrix::from_values(3, feats).unwrap();
        assert_eq!(m, m2);
    }
}
