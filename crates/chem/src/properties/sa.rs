//! Synthetic accessibility (SA) score.
//!
//! Ertl & Schuffenhauer (2009) combine a fragment-frequency score (from a
//! PubChem fragment database) with complexity penalties, mapping to a 1
//! (easy) … 10 (hard) scale. The fragment database is proprietary-sized
//! external data, so this reproduction substitutes a **per-atom environment
//! commonness table** (documented in DESIGN.md): common drug-like
//! environments (aromatic CH, sp3 carbon, amide-like N/O) score as frequent;
//! rare environments (hypervalent S, quaternary carbons, triple bonds) score
//! as infrequent. The complexity penalties (size, ring fusion, macrocycles,
//! heteroatom load) follow the published formulas, so the score shares the
//! original's monotone structure.

use crate::bond::BondOrder;
use crate::element::Element;
use crate::molecule::Molecule;
use crate::rings::{perceive_rings, RingInfo};

/// Commonness (log-frequency stand-in) of atom `i`'s environment: positive =
/// common/easy, negative = rare/hard.
fn environment_commonness(mol: &Molecule, i: usize) -> f64 {
    let e = mol.element(i);
    let degree = mol.degree(i);
    let nbrs = mol.neighbors(i);
    let aromatic = nbrs.iter().any(|&(_, o)| o == BondOrder::Aromatic);
    let triple = nbrs.iter().any(|&(_, o)| o == BondOrder::Triple);
    let valence = mol.explicit_valence(i);

    let mut score: f64 = match e {
        Element::C => {
            if aromatic {
                1.0
            } else if degree <= 2 {
                0.9
            } else if degree == 3 {
                0.4
            } else {
                -0.5 // quaternary carbon
            }
        }
        Element::N | Element::O => {
            if degree <= 2 {
                0.6
            } else {
                0.0
            }
        }
        Element::F => 0.3,
        Element::S => {
            if valence > 2.5 {
                -1.0 // hypervalent sulfur
            } else {
                0.2
            }
        }
    };
    if triple {
        score -= 0.8;
    }
    score
}

/// Raw SA score on the published 1 (easy) … 10 (hard) scale.
pub fn sa_score_with_rings(mol: &Molecule, rings: &RingInfo) -> f64 {
    if mol.is_empty() {
        return 10.0;
    }
    let n = mol.n_atoms() as f64;

    // Fragment-score substitute: mean environment commonness, scaled to the
    // roughly [-4, +1] band the original fragment score occupies.
    let frag: f64 = (0..mol.n_atoms())
        .map(|i| environment_commonness(mol, i))
        .sum::<f64>()
        / n;
    let fragment_score = frag * 2.0; // spread the band

    // Complexity penalties (Ertl's formulas).
    let size_penalty = n.powf(1.005) - n;
    let ring_info_penalty = ((rings.n_fused_pairs() + 1) as f64).ln() * 0.5;
    let macro_penalty = if rings.n_macrocycles() > 0 {
        (rings.n_macrocycles() as f64 + 1.0).ln()
    } else {
        0.0
    };
    let hetero_fraction = mol.atoms().iter().filter(|&&a| a != Element::C).count() as f64 / n;
    let hetero_penalty = (hetero_fraction * 2.0).max(0.0);

    let raw = fragment_score - size_penalty - ring_info_penalty - macro_penalty - hetero_penalty;

    // Map raw (≈ +2 easy … −8 hard) onto 1..10.
    let score = 11.0 - (raw + 8.0) / 10.0 * 9.0;
    score.clamp(1.0, 10.0)
}

/// Raw SA score (perceives rings internally).
///
/// # Examples
///
/// ```
/// use sqvae_chem::{properties::sa, BondOrder, Element, Molecule};
///
/// let mut ethane = Molecule::new();
/// let a = ethane.add_atom(Element::C);
/// let b = ethane.add_atom(Element::C);
/// ethane.add_bond(a, b, BondOrder::Single)?;
/// let s = sa::sa_score(&ethane);
/// assert!((1.0..=10.0).contains(&s));
/// # Ok::<(), sqvae_chem::ChemError>(())
/// ```
pub fn sa_score(mol: &Molecule) -> f64 {
    sa_score_with_rings(mol, &perceive_rings(mol))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..n {
            m.add_atom(Element::C);
        }
        for i in 0..n.saturating_sub(1) {
            m.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        m
    }

    #[test]
    fn score_is_bounded() {
        for mol in [chain(1), chain(30)] {
            let s = sa_score(&mol);
            assert!((1.0..=10.0).contains(&s), "{s}");
        }
        assert_eq!(sa_score(&Molecule::new()), 10.0);
    }

    #[test]
    fn small_alkane_is_easy() {
        assert!(sa_score(&chain(3)) < 5.0);
    }

    #[test]
    fn bigger_molecules_are_harder() {
        assert!(sa_score(&chain(25)) > sa_score(&chain(5)));
    }

    #[test]
    fn macrocycle_is_harder_than_open_chain() {
        let open = chain(12);
        let mut cyc = chain(12);
        cyc.add_bond(11, 0, BondOrder::Single).unwrap();
        assert!(sa_score(&cyc) > sa_score(&open));
    }

    #[test]
    fn hypervalent_sulfur_is_harder() {
        // Plain thioether.
        let mut plain = chain(2);
        let s = plain.add_atom(Element::S);
        plain.add_bond(1, s, BondOrder::Single).unwrap();
        // Sulfone-like.
        let mut sulfone = chain(2);
        let s2 = sulfone.add_atom(Element::S);
        sulfone.add_bond(1, s2, BondOrder::Single).unwrap();
        let o1 = sulfone.add_atom(Element::O);
        let o2 = sulfone.add_atom(Element::O);
        sulfone.add_bond(s2, o1, BondOrder::Double).unwrap();
        sulfone.add_bond(s2, o2, BondOrder::Double).unwrap();
        assert!(sa_score(&sulfone) > sa_score(&plain));
    }

    #[test]
    fn fused_rings_add_complexity() {
        // One ring vs two fused rings of the same total size.
        let mut one_ring = chain(10);
        one_ring.add_bond(9, 0, BondOrder::Single).unwrap();
        let mut fused = Molecule::new();
        for _ in 0..10 {
            fused.add_atom(Element::C);
        }
        for i in 0..5 {
            fused.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        fused.add_bond(5, 0, BondOrder::Single).unwrap();
        fused.add_bond(5, 6, BondOrder::Single).unwrap();
        for i in 6..9 {
            fused.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        fused.add_bond(9, 0, BondOrder::Single).unwrap();
        assert!(sa_score(&fused) > sa_score(&one_ring) - 1.0);
    }
}
