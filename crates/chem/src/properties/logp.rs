//! Octanol-water partition coefficient (logP), Wildman–Crippen style.
//!
//! RDKit's `MolLogP` (used by the paper) sums per-atom contributions after
//! classifying each atom into one of ~70 types. This reproduction uses a
//! **reduced type table** covering the C/N/O/F/S chemistry the decoders can
//! emit; contribution values follow the published Wildman–Crippen magnitudes
//! for the corresponding types, so lipophilicity orderings (more carbon ⇒
//! higher, more heteroatoms/donors ⇒ lower) are preserved. DESIGN.md records
//! this as an RDKit substitution.

use crate::bond::BondOrder;
use crate::element::Element;
use crate::molecule::Molecule;

/// Per-atom contribution class (exposed for inspection/testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrippenType {
    /// sp3 carbon with only carbon/hydrogen neighbors.
    CAliphatic,
    /// Carbon bonded to at least one heteroatom.
    CHetero,
    /// Aromatic carbon.
    CAromatic,
    /// sp/sp2 carbon (double or triple bond, non-aromatic).
    CUnsaturated,
    /// Aliphatic amine nitrogen.
    NAmine,
    /// Aromatic nitrogen.
    NAromatic,
    /// Imine/nitrile nitrogen (multiple-bonded).
    NUnsaturated,
    /// Hydroxyl oxygen.
    OHydroxyl,
    /// Ether/ester oxygen.
    OEther,
    /// Carbonyl oxygen.
    OCarbonyl,
    /// Aromatic oxygen.
    OAromatic,
    /// Fluorine.
    F,
    /// Aliphatic sulfur.
    SAliphatic,
    /// Aromatic sulfur.
    SAromatic,
}

impl CrippenType {
    /// The logP contribution of this atom type.
    pub fn contribution(self) -> f64 {
        match self {
            CrippenType::CAliphatic => 0.1441,
            CrippenType::CHetero => -0.2035,
            CrippenType::CAromatic => 0.2940,
            CrippenType::CUnsaturated => 0.1551,
            CrippenType::NAmine => -1.0190,
            CrippenType::NAromatic => -0.3239,
            CrippenType::NUnsaturated => -0.3396,
            CrippenType::OHydroxyl => -0.2893,
            CrippenType::OEther => -0.0684,
            CrippenType::OCarbonyl => -0.1526,
            CrippenType::OAromatic => 0.1552,
            CrippenType::F => 0.4202,
            CrippenType::SAliphatic => 0.6482,
            CrippenType::SAromatic => 0.6237,
        }
    }
}

/// Hydrogen contributions: H on carbon vs. H on a heteroatom.
const H_ON_CARBON: f64 = 0.1230;
const H_ON_HETERO: f64 = -0.2677;

/// Classifies atom `i`.
pub fn crippen_type(mol: &Molecule, i: usize) -> CrippenType {
    let nbrs = mol.neighbors(i);
    let aromatic = nbrs.iter().any(|&(_, o)| o == BondOrder::Aromatic);
    let unsaturated = nbrs
        .iter()
        .any(|&(_, o)| matches!(o, BondOrder::Double | BondOrder::Triple));
    let hetero_neighbor = nbrs.iter().any(|&(n, _)| mol.element(n) != Element::C);
    match mol.element(i) {
        Element::C => {
            if aromatic {
                CrippenType::CAromatic
            } else if hetero_neighbor {
                CrippenType::CHetero
            } else if unsaturated {
                CrippenType::CUnsaturated
            } else {
                CrippenType::CAliphatic
            }
        }
        Element::N => {
            if aromatic {
                CrippenType::NAromatic
            } else if unsaturated {
                CrippenType::NUnsaturated
            } else {
                CrippenType::NAmine
            }
        }
        Element::O => {
            if aromatic {
                CrippenType::OAromatic
            } else if nbrs.iter().any(|&(_, o)| o == BondOrder::Double) {
                CrippenType::OCarbonyl
            } else if mol.implicit_hydrogens(i) > 0 {
                CrippenType::OHydroxyl
            } else {
                CrippenType::OEther
            }
        }
        Element::F => CrippenType::F,
        Element::S => {
            if aromatic {
                CrippenType::SAromatic
            } else {
                CrippenType::SAliphatic
            }
        }
    }
}

/// Wildman–Crippen-style logP: sum of heavy-atom and implicit-hydrogen
/// contributions.
///
/// # Examples
///
/// ```
/// use sqvae_chem::{properties::logp, BondOrder, Element, Molecule};
///
/// // Hexane is lipophilic: positive logP.
/// let mut hexane = Molecule::new();
/// for _ in 0..6 { hexane.add_atom(Element::C); }
/// for i in 0..5 { hexane.add_bond(i, i + 1, BondOrder::Single)?; }
/// assert!(logp::log_p(&hexane) > 1.0);
/// # Ok::<(), sqvae_chem::ChemError>(())
/// ```
pub fn log_p(mol: &Molecule) -> f64 {
    let mut total = 0.0;
    for i in 0..mol.n_atoms() {
        total += crippen_type(mol, i).contribution();
        let h = mol.implicit_hydrogens(i) as f64;
        total += h * if mol.element(i) == Element::C {
            H_ON_CARBON
        } else {
            H_ON_HETERO
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..n {
            m.add_atom(Element::C);
        }
        for i in 0..n.saturating_sub(1) {
            m.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        m
    }

    #[test]
    fn logp_grows_with_chain_length() {
        let l4 = log_p(&chain(4));
        let l8 = log_p(&chain(8));
        assert!(l8 > l4, "longer alkane should be more lipophilic");
    }

    #[test]
    fn hydroxyl_lowers_logp() {
        let hexane = chain(6);
        let mut hexanol = chain(6);
        let o = hexanol.add_atom(Element::O);
        hexanol.add_bond(5, o, BondOrder::Single).unwrap();
        assert!(log_p(&hexanol) < log_p(&hexane));
    }

    #[test]
    fn amine_is_strongly_hydrophilic() {
        let mut m = chain(2);
        let n = m.add_atom(Element::N);
        m.add_bond(1, n, BondOrder::Single).unwrap();
        // Type should be amine with the big negative contribution.
        assert_eq!(crippen_type(&m, n), CrippenType::NAmine);
        assert!(log_p(&m) < log_p(&chain(3)));
    }

    #[test]
    fn aromatic_carbons_classified() {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic).unwrap();
        }
        for i in 0..6 {
            assert_eq!(crippen_type(&m, i), CrippenType::CAromatic);
        }
        // Benzene logP is positive (experimental ≈ 2.1).
        assert!(log_p(&m) > 1.0);
    }

    #[test]
    fn oxygen_subtypes() {
        // CCO hydroxyl.
        let mut m = chain(2);
        let o = m.add_atom(Element::O);
        m.add_bond(1, o, BondOrder::Single).unwrap();
        assert_eq!(crippen_type(&m, o), CrippenType::OHydroxyl);
        // COC ether.
        let mut e = Molecule::new();
        let c1 = e.add_atom(Element::C);
        let o = e.add_atom(Element::O);
        let c2 = e.add_atom(Element::C);
        e.add_bond(c1, o, BondOrder::Single).unwrap();
        e.add_bond(o, c2, BondOrder::Single).unwrap();
        assert_eq!(crippen_type(&e, o), CrippenType::OEther);
        // C=O carbonyl.
        let mut k = chain(2);
        let o = k.add_atom(Element::O);
        k.add_bond(1, o, BondOrder::Double).unwrap();
        assert_eq!(crippen_type(&k, o), CrippenType::OCarbonyl);
    }

    #[test]
    fn fluorine_and_sulfur_positive() {
        let mut m = chain(1);
        let f = m.add_atom(Element::F);
        m.add_bond(0, f, BondOrder::Single).unwrap();
        assert_eq!(crippen_type(&m, f), CrippenType::F);
        assert!(CrippenType::F.contribution() > 0.0);
        assert!(CrippenType::SAliphatic.contribution() > 0.0);
    }

    #[test]
    fn empty_molecule_logp_is_zero() {
        assert_eq!(log_p(&Molecule::new()), 0.0);
    }
}
