//! Basic physico-chemical descriptors: molecular weight, hydrogen-bond
//! donors/acceptors, topological polar surface area, rotatable bonds.
//!
//! TPSA uses a reduced Ertl fragment-contribution table covering the N/O/S
//! environments producible by this reproduction's element set; values are
//! the published contributions for those environments.

use crate::bond::BondOrder;
use crate::element::Element;
use crate::molecule::Molecule;
use crate::rings::RingInfo;

/// Molecular weight in g/mol, counting implicit hydrogens at 1.008.
pub fn molecular_weight(mol: &Molecule) -> f64 {
    let heavy: f64 = mol.atoms().iter().map(|a| a.atomic_weight()).sum();
    heavy + 1.008 * mol.total_hydrogens() as f64
}

/// Hydrogen-bond acceptors: the Lipinski count of N and O atoms.
pub fn hb_acceptors(mol: &Molecule) -> usize {
    mol.atoms()
        .iter()
        .filter(|a| a.is_hetero_acceptor())
        .count()
}

/// Hydrogen-bond donors: N or O atoms carrying at least one hydrogen.
pub fn hb_donors(mol: &Molecule) -> usize {
    (0..mol.n_atoms())
        .filter(|&i| mol.element(i).is_hetero_acceptor() && mol.implicit_hydrogens(i) > 0)
        .count()
}

/// Whether atom `i` participates in any aromatic bond.
fn is_aromatic_atom(mol: &Molecule, i: usize) -> bool {
    mol.neighbors(i)
        .iter()
        .any(|&(_, o)| o == BondOrder::Aromatic)
}

/// Whether atom `i` has a double bond.
fn has_double_bond(mol: &Molecule, i: usize) -> bool {
    mol.neighbors(i)
        .iter()
        .any(|&(_, o)| o == BondOrder::Double)
}

/// Topological polar surface area (Ertl-style, reduced table), in Å².
pub fn tpsa(mol: &Molecule) -> f64 {
    let mut total = 0.0;
    for i in 0..mol.n_atoms() {
        let h = mol.implicit_hydrogens(i);
        let aromatic = is_aromatic_atom(mol, i);
        let double = has_double_bond(mol, i);
        total += match mol.element(i) {
            Element::N => match (aromatic, h) {
                (true, 0) => 12.89,
                (true, _) => 15.79,
                (false, 0) => {
                    if double {
                        12.36 // imine-like =N-
                    } else {
                        3.24 // tertiary amine
                    }
                }
                (false, 1) => 12.03,
                (false, _) => 26.02,
            },
            Element::O => match (aromatic, h, double) {
                (true, _, _) => 13.14, // aromatic ring oxygen
                (_, 0, true) => 17.07, // carbonyl =O
                (_, 0, false) => 9.23, // ether
                (_, _, _) => 20.23,    // hydroxyl
            },
            Element::S => match (aromatic, h) {
                (true, _) => 28.24,
                (false, 0) => 25.30,
                (false, _) => 38.80,
            },
            Element::C | Element::F => 0.0,
        };
    }
    total
}

/// Rotatable bonds: non-ring single bonds between two non-terminal heavy
/// atoms. (The amide-bond exclusion of the strict definition is omitted —
/// documented in DESIGN.md.)
pub fn rotatable_bonds(mol: &Molecule, rings: &RingInfo) -> usize {
    mol.bonds()
        .iter()
        .enumerate()
        .filter(|(idx, b)| {
            b.order == BondOrder::Single
                && !rings.bond_in_ring[*idx]
                && mol.degree(b.a) >= 2
                && mol.degree(b.b) >= 2
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rings::perceive_rings;

    fn ethanol() -> Molecule {
        let mut m = Molecule::new();
        let c1 = m.add_atom(Element::C);
        let c2 = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        m.add_bond(c1, c2, BondOrder::Single).unwrap();
        m.add_bond(c2, o, BondOrder::Single).unwrap();
        m
    }

    #[test]
    fn ethanol_molecular_weight() {
        // C2H6O = 2·12.011 + 6·1.008 + 15.999 = 46.069.
        let mw = molecular_weight(&ethanol());
        assert!((mw - 46.069).abs() < 0.01, "{mw}");
    }

    #[test]
    fn ethanol_h_bonding() {
        let m = ethanol();
        assert_eq!(hb_acceptors(&m), 1);
        assert_eq!(hb_donors(&m), 1);
    }

    #[test]
    fn ether_is_acceptor_not_donor() {
        // Dimethyl ether: C-O-C.
        let mut m = Molecule::new();
        let c1 = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        let c2 = m.add_atom(Element::C);
        m.add_bond(c1, o, BondOrder::Single).unwrap();
        m.add_bond(o, c2, BondOrder::Single).unwrap();
        assert_eq!(hb_acceptors(&m), 1);
        assert_eq!(hb_donors(&m), 0);
    }

    #[test]
    fn tpsa_known_environments() {
        // Ethanol: one OH = 20.23.
        assert!((tpsa(&ethanol()) - 20.23).abs() < 1e-9);
        // Acetone-like C-C(=O)-C: one carbonyl O = 17.07.
        let mut m = Molecule::new();
        let c1 = m.add_atom(Element::C);
        let c2 = m.add_atom(Element::C);
        let c3 = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        m.add_bond(c1, c2, BondOrder::Single).unwrap();
        m.add_bond(c2, c3, BondOrder::Single).unwrap();
        m.add_bond(c2, o, BondOrder::Double).unwrap();
        assert!((tpsa(&m) - 17.07).abs() < 1e-9);
    }

    #[test]
    fn hydrocarbons_have_zero_tpsa() {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..5 {
            m.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        assert_eq!(tpsa(&m), 0.0);
    }

    #[test]
    fn rotatable_bonds_exclude_terminal_and_ring() {
        // Butane C-C-C-C: only the central bond is rotatable.
        let mut m = Molecule::new();
        for _ in 0..4 {
            m.add_atom(Element::C);
        }
        for i in 0..3 {
            m.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        let rings = perceive_rings(&m);
        assert_eq!(rotatable_bonds(&m, &rings), 1);

        // Cyclohexane: all bonds in-ring, none rotatable.
        let mut r = Molecule::new();
        for _ in 0..6 {
            r.add_atom(Element::C);
        }
        for i in 0..6 {
            r.add_bond(i, (i + 1) % 6, BondOrder::Single).unwrap();
        }
        let rr = perceive_rings(&r);
        assert_eq!(rotatable_bonds(&r, &rr), 0);
    }

    #[test]
    fn empty_molecule_descriptors_are_zero() {
        let m = Molecule::new();
        assert_eq!(molecular_weight(&m), 0.0);
        assert_eq!(hb_acceptors(&m), 0);
        assert_eq!(hb_donors(&m), 0);
        assert_eq!(tpsa(&m), 0.0);
    }
}
