//! Lipinski's rule of five — the classic drug-likeness filter, provided as
//! an additional screen for sampled ligands.

use crate::molecule::Molecule;
use crate::properties::basic::{hb_acceptors, hb_donors, molecular_weight};
use crate::properties::logp::log_p;

/// The four rule-of-five criteria for one molecule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleOfFive {
    /// Molecular weight (limit ≤ 500 g/mol).
    pub mw: f64,
    /// Crippen logP (limit ≤ 5).
    pub logp: f64,
    /// Hydrogen-bond donors (limit ≤ 5).
    pub donors: usize,
    /// Hydrogen-bond acceptors (limit ≤ 10).
    pub acceptors: usize,
}

impl RuleOfFive {
    /// Evaluates the four descriptors.
    pub fn compute(mol: &Molecule) -> Self {
        RuleOfFive {
            mw: molecular_weight(mol),
            logp: log_p(mol),
            donors: hb_donors(mol),
            acceptors: hb_acceptors(mol),
        }
    }

    /// Number of criteria violated (0–4).
    pub fn violations(&self) -> usize {
        usize::from(self.mw > 500.0)
            + usize::from(self.logp > 5.0)
            + usize::from(self.donors > 5)
            + usize::from(self.acceptors > 10)
    }

    /// Lipinski compliance: at most one violation.
    pub fn passes(&self) -> bool {
        self.violations() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond::BondOrder;
    use crate::element::Element;

    fn chain(n: usize) -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..n {
            m.add_atom(Element::C);
        }
        for i in 0..n.saturating_sub(1) {
            m.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        m
    }

    #[test]
    fn small_druglike_passes() {
        let mut m = chain(6);
        let o = m.add_atom(Element::O);
        m.add_bond(5, o, BondOrder::Single).unwrap();
        let r5 = RuleOfFive::compute(&m);
        assert_eq!(r5.violations(), 0);
        assert!(r5.passes());
    }

    #[test]
    fn grease_violates_logp() {
        let r5 = RuleOfFive::compute(&chain(30));
        assert!(r5.logp > 5.0);
        assert!(r5.violations() >= 1);
    }

    #[test]
    fn single_violation_still_passes() {
        // One violation is tolerated by the rule.
        let r5 = RuleOfFive {
            mw: 510.0,
            logp: 3.0,
            donors: 2,
            acceptors: 4,
        };
        assert_eq!(r5.violations(), 1);
        assert!(r5.passes());
    }

    #[test]
    fn multiple_violations_fail() {
        let r5 = RuleOfFive {
            mw: 700.0,
            logp: 7.0,
            donors: 8,
            acceptors: 12,
        };
        assert_eq!(r5.violations(), 4);
        assert!(!r5.passes());
    }
}
