//! Drug-property metrics (the paper's Table II scorers).
//!
//! Three metrics, each in a raw and a MolGAN-style [0,1]-normalized form
//! (the paper's Table II reports the normalized scale, where *higher is
//! better* for every column):
//!
//! * **QED** — quantitative estimate of druglikeness, already in [0,1].
//! * **logP** — Wildman–Crippen octanol-water partition coefficient,
//!   normalized with MolGAN's clipping range.
//! * **SA** — synthetic accessibility (1 easy … 10 hard), normalized and
//!   inverted so 1.0 = easiest.

pub mod alerts;
pub mod basic;
pub mod lipinski;
pub mod logp;
pub mod qed;
pub mod sa;

use crate::molecule::Molecule;
use crate::rings::perceive_rings;

/// MolGAN's logP clipping range for normalization.
const LOGP_MIN: f64 = -2.12178879609;
const LOGP_MAX: f64 = 6.0429063424;

/// logP mapped to [0,1] by clipping to MolGAN's range and rescaling.
pub fn normalized_logp(raw: f64) -> f64 {
    (raw.clamp(LOGP_MIN, LOGP_MAX) - LOGP_MIN) / (LOGP_MAX - LOGP_MIN)
}

/// SA (1 … 10) mapped to [0,1] with 1.0 = easiest to synthesize.
pub fn normalized_sa(raw: f64) -> f64 {
    ((10.0 - raw) / 9.0).clamp(0.0, 1.0)
}

/// All Table II metrics for one molecule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DrugProperties {
    /// QED in [0,1].
    pub qed: f64,
    /// Raw Wildman–Crippen logP.
    pub logp_raw: f64,
    /// Normalized logP in [0,1].
    pub logp: f64,
    /// Raw SA score in [1,10].
    pub sa_raw: f64,
    /// Normalized SA in [0,1] (higher = easier).
    pub sa: f64,
}

impl DrugProperties {
    /// Scores a molecule (one ring perception shared by all metrics).
    pub fn compute(mol: &Molecule) -> Self {
        let rings = perceive_rings(mol);
        let q = qed::qed_from_properties(&qed::QedProperties::compute(mol, &rings));
        let lp = logp::log_p(mol);
        let s = sa::sa_score_with_rings(mol, &rings);
        DrugProperties {
            qed: q,
            logp_raw: lp,
            logp: normalized_logp(lp),
            sa_raw: s,
            sa: normalized_sa(s),
        }
    }
}

/// Mean Table II metrics over a batch of molecules (empty batch → zeros).
pub fn mean_properties<'a>(mols: impl IntoIterator<Item = &'a Molecule>) -> DrugProperties {
    let mut acc = DrugProperties::default();
    let mut n = 0usize;
    for mol in mols {
        let p = DrugProperties::compute(mol);
        acc.qed += p.qed;
        acc.logp_raw += p.logp_raw;
        acc.logp += p.logp;
        acc.sa_raw += p.sa_raw;
        acc.sa += p.sa;
        n += 1;
    }
    if n > 0 {
        let inv = 1.0 / n as f64;
        acc.qed *= inv;
        acc.logp_raw *= inv;
        acc.logp *= inv;
        acc.sa_raw *= inv;
        acc.sa *= inv;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond::BondOrder;
    use crate::element::Element;

    fn aspirin_like() -> Molecule {
        // Benzene ring with a carboxyl-like and an ester-like substituent.
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic).unwrap();
        }
        let c = m.add_atom(Element::C);
        m.add_bond(0, c, BondOrder::Single).unwrap();
        let o1 = m.add_atom(Element::O);
        m.add_bond(c, o1, BondOrder::Double).unwrap();
        let o2 = m.add_atom(Element::O);
        m.add_bond(c, o2, BondOrder::Single).unwrap();
        m
    }

    #[test]
    fn normalized_ranges() {
        assert_eq!(normalized_logp(100.0), 1.0);
        assert_eq!(normalized_logp(-100.0), 0.0);
        assert!((normalized_logp(LOGP_MIN) - 0.0).abs() < 1e-12);
        assert_eq!(normalized_sa(1.0), 1.0);
        assert_eq!(normalized_sa(10.0), 0.0);
    }

    #[test]
    fn compute_fills_all_fields() {
        let p = DrugProperties::compute(&aspirin_like());
        assert!(p.qed > 0.0 && p.qed <= 1.0);
        assert!(p.logp >= 0.0 && p.logp <= 1.0);
        assert!(p.sa >= 0.0 && p.sa <= 1.0);
        assert!((1.0..=10.0).contains(&p.sa_raw));
    }

    #[test]
    fn mean_over_batch() {
        let a = aspirin_like();
        let b = aspirin_like();
        let mean = mean_properties([&a, &b]);
        let single = DrugProperties::compute(&a);
        assert!((mean.qed - single.qed).abs() < 1e-12);
        let empty = mean_properties(std::iter::empty());
        assert_eq!(empty.qed, 0.0);
    }
}
