//! Quantitative Estimate of Druglikeness (QED).
//!
//! Bickerton et al. (2012) define QED as the weighted geometric mean of
//! eight desirability functions over MW, ALOGP, HBA, HBD, PSA, ROTB, AROM,
//! and ALERTS. RDKit (the paper's scorer) fits asymmetric double sigmoids to
//! historical drug distributions. This reproduction substitutes **Gaussian
//! desirability curves** centred on the same drug-like optima (documented in
//! DESIGN.md): QED stays in (0, 1], peaks for drug-like molecules, and
//! decays in the same directions, which preserves the orderings Table II
//! compares. The geometric-mean weights are RDKit's published
//! `WEIGHT_MEAN` values.

use crate::molecule::Molecule;
use crate::properties::alerts::count_alerts;
use crate::properties::basic::{hb_acceptors, hb_donors, molecular_weight, rotatable_bonds, tpsa};
use crate::properties::logp::log_p;
use crate::rings::{perceive_rings, RingInfo};

/// Desirability floor, preventing a zero product (RDKit clamps likewise).
const FLOOR: f64 = 1e-3;

/// RDKit `QED.WEIGHT_MEAN` for (MW, ALOGP, HBA, HBD, PSA, ROTB, AROM, ALERTS).
pub const WEIGHTS: [f64; 8] = [0.66, 0.46, 0.05, 0.61, 0.06, 0.65, 0.48, 0.95];

/// Gaussian desirability centres and widths per property, chosen at the
/// drug-like optima of the published curves.
const CENTERS: [f64; 8] = [305.0, 2.5, 3.0, 1.0, 80.0, 4.0, 1.5, 0.0];
const WIDTHS: [f64; 8] = [150.0, 2.0, 2.8, 1.8, 60.0, 4.0, 1.4, 1.1];

/// The eight QED property values for a molecule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QedProperties {
    /// Molecular weight.
    pub mw: f64,
    /// Crippen logP.
    pub alogp: f64,
    /// H-bond acceptors.
    pub hba: f64,
    /// H-bond donors.
    pub hbd: f64,
    /// Topological polar surface area.
    pub psa: f64,
    /// Rotatable bonds.
    pub rotb: f64,
    /// Aromatic rings.
    pub arom: f64,
    /// Structural alerts.
    pub alerts: f64,
}

impl QedProperties {
    /// Computes the property vector (ring info supplied by the caller to
    /// avoid re-perception).
    pub fn compute(mol: &Molecule, rings: &RingInfo) -> Self {
        QedProperties {
            mw: molecular_weight(mol),
            alogp: log_p(mol),
            hba: hb_acceptors(mol) as f64,
            hbd: hb_donors(mol) as f64,
            psa: tpsa(mol),
            rotb: rotatable_bonds(mol, rings) as f64,
            arom: rings.n_aromatic_rings(mol) as f64,
            alerts: count_alerts(mol, rings) as f64,
        }
    }

    fn as_array(&self) -> [f64; 8] {
        [
            self.mw,
            self.alogp,
            self.hba,
            self.hbd,
            self.psa,
            self.rotb,
            self.arom,
            self.alerts,
        ]
    }
}

/// Gaussian desirability of property `idx` at value `x`.
fn desirability(idx: usize, x: f64) -> f64 {
    let z = (x - CENTERS[idx]) / WIDTHS[idx];
    (-0.5 * z * z).exp().max(FLOOR)
}

/// QED from a precomputed property vector.
pub fn qed_from_properties(props: &QedProperties) -> f64 {
    let values = props.as_array();
    let wsum: f64 = WEIGHTS.iter().sum();
    let log_mean: f64 = values
        .iter()
        .enumerate()
        .map(|(i, &x)| WEIGHTS[i] * desirability(i, x).ln())
        .sum::<f64>()
        / wsum;
    log_mean.exp()
}

/// QED of a molecule (perceives rings internally).
///
/// # Examples
///
/// ```
/// use sqvae_chem::{properties::qed, BondOrder, Element, Molecule};
///
/// let mut benzene = Molecule::new();
/// for _ in 0..6 { benzene.add_atom(Element::C); }
/// for i in 0..6 { benzene.add_bond(i, (i + 1) % 6, BondOrder::Aromatic)?; }
/// let q = qed::qed(&benzene);
/// assert!(q > 0.0 && q <= 1.0);
/// # Ok::<(), sqvae_chem::ChemError>(())
/// ```
pub fn qed(mol: &Molecule) -> f64 {
    let rings = perceive_rings(mol);
    qed_from_properties(&QedProperties::compute(mol, &rings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond::BondOrder;
    use crate::element::Element;

    fn chain(n: usize) -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..n {
            m.add_atom(Element::C);
        }
        for i in 0..n.saturating_sub(1) {
            m.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        m
    }

    /// A drug-like scaffold: aromatic ring + short chain + polar groups.
    fn druglike() -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic).unwrap();
        }
        let c7 = m.add_atom(Element::C);
        m.add_bond(0, c7, BondOrder::Single).unwrap();
        let c8 = m.add_atom(Element::C);
        m.add_bond(c7, c8, BondOrder::Single).unwrap();
        let o = m.add_atom(Element::O);
        m.add_bond(c8, o, BondOrder::Double).unwrap();
        let n = m.add_atom(Element::N);
        m.add_bond(c8, n, BondOrder::Single).unwrap();
        m
    }

    #[test]
    fn qed_in_unit_interval() {
        for mol in [chain(1), chain(10), druglike()] {
            let q = qed(&mol);
            assert!(q > 0.0 && q <= 1.0, "qed = {q}");
        }
    }

    #[test]
    fn druglike_beats_methane_and_grease() {
        let q_drug = qed(&druglike());
        let q_methane = qed(&chain(1));
        let q_grease = qed(&chain(20));
        assert!(q_drug > q_methane, "{q_drug} vs methane {q_methane}");
        assert!(q_drug > q_grease, "{q_drug} vs grease {q_grease}");
    }

    #[test]
    fn alerts_reduce_qed() {
        let clean = druglike();
        let mut flagged = druglike();
        // Attach a peroxide (O-O alert).
        let o1 = flagged.add_atom(Element::O);
        let o2 = flagged.add_atom(Element::O);
        flagged.add_bond(3, o1, BondOrder::Single).unwrap();
        flagged.add_bond(o1, o2, BondOrder::Single).unwrap();
        assert!(qed(&flagged) < qed(&clean));
    }

    #[test]
    fn desirability_peaks_at_center() {
        for idx in 0..8 {
            let at_center = desirability(idx, CENTERS[idx]);
            let off = desirability(idx, CENTERS[idx] + 3.0 * WIDTHS[idx]);
            assert!(at_center > off);
            assert!((at_center - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_match_rdkit_mean_weights() {
        assert_eq!(WEIGHTS, [0.66, 0.46, 0.05, 0.61, 0.06, 0.65, 0.48, 0.95]);
    }
}
