//! Structural alerts — graph-pattern checks standing in for the Brenk/QED
//! SMARTS alert set (SMARTS needs RDKit; these are the subset expressible on
//! this reproduction's element/bond vocabulary).

use crate::bond::BondOrder;
use crate::element::Element;
use crate::molecule::Molecule;
use crate::rings::RingInfo;

/// Counts structural-alert hits used by QED's `ALERTS` descriptor.
///
/// Checks (each counts once per occurrence):
/// * heteroatom–heteroatom single bonds (N–N, O–O, S–S, N–O …)
/// * cumulated double bonds (allene-like C=C=C)
/// * three-membered rings containing a heteroatom (epoxide/aziridine-like)
/// * acyl halide-like carbon (C with =O and –F)
/// * macrocycles (ring size > 8)
/// * long unbranched aliphatic chains (≥ 8 consecutive sp3 CH₂)
pub fn count_alerts(mol: &Molecule, rings: &RingInfo) -> usize {
    let mut alerts = 0usize;

    // Heteroatom-heteroatom single bonds.
    for b in mol.bonds() {
        let ea = mol.element(b.a);
        let eb = mol.element(b.b);
        if ea != Element::C && eb != Element::C && b.order == BondOrder::Single {
            alerts += 1;
        }
    }

    // Cumulated double bonds: an atom with two double bonds to carbons.
    for i in 0..mol.n_atoms() {
        if mol.element(i) != Element::C {
            continue;
        }
        let doubles = mol
            .neighbors(i)
            .iter()
            .filter(|&&(_, o)| o == BondOrder::Double)
            .count();
        if doubles >= 2 {
            alerts += 1;
        }
    }

    // Strained 3-rings with a heteroatom.
    for ring in &rings.rings {
        if ring.len() == 3 && ring.iter().any(|&a| mol.element(a) != Element::C) {
            alerts += 1;
        }
    }

    // Acyl halide-like: C(=O)F.
    for i in 0..mol.n_atoms() {
        if mol.element(i) != Element::C {
            continue;
        }
        let nbrs = mol.neighbors(i);
        let has_carbonyl = nbrs
            .iter()
            .any(|&(n, o)| mol.element(n) == Element::O && o == BondOrder::Double);
        let has_f = nbrs.iter().any(|&(n, _)| mol.element(n) == Element::F);
        if has_carbonyl && has_f {
            alerts += 1;
        }
    }

    // Macrocycles.
    alerts += rings.n_macrocycles();

    // Long unbranched aliphatic chain: walk maximal CH2 paths.
    alerts += long_chain_alerts(mol, rings);

    alerts
}

fn long_chain_alerts(mol: &Molecule, rings: &RingInfo) -> usize {
    // Count carbons that are: not in a ring, exactly 2 single-bonded carbon
    // neighbors — then find the longest run via DFS over that subgraph.
    let chainlike: Vec<bool> = (0..mol.n_atoms())
        .map(|i| {
            mol.element(i) == Element::C
                && !rings.atom_in_ring[i]
                && mol.degree(i) == 2
                && mol
                    .neighbors(i)
                    .iter()
                    .all(|&(n, o)| mol.element(n) == Element::C && o == BondOrder::Single)
        })
        .collect();
    let mut best = 0usize;
    let mut seen = vec![false; mol.n_atoms()];
    for start in 0..mol.n_atoms() {
        if !chainlike[start] || seen[start] {
            continue;
        }
        // Runs are simple paths; flood-fill the run.
        let mut len = 0;
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            len += 1;
            for (v, _) in mol.neighbors(u) {
                if chainlike[v] && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        best = best.max(len);
    }
    usize::from(best >= 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rings::perceive_rings;

    fn alerts_of(mol: &Molecule) -> usize {
        count_alerts(mol, &perceive_rings(mol))
    }

    #[test]
    fn clean_molecules_have_no_alerts() {
        let mut m = Molecule::new();
        let c1 = m.add_atom(Element::C);
        let c2 = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        m.add_bond(c1, c2, BondOrder::Single).unwrap();
        m.add_bond(c2, o, BondOrder::Single).unwrap();
        assert_eq!(alerts_of(&m), 0);
    }

    #[test]
    fn peroxide_flags() {
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        let o1 = m.add_atom(Element::O);
        let o2 = m.add_atom(Element::O);
        m.add_bond(c, o1, BondOrder::Single).unwrap();
        m.add_bond(o1, o2, BondOrder::Single).unwrap();
        assert_eq!(alerts_of(&m), 1);
    }

    #[test]
    fn allene_flags() {
        let mut m = Molecule::new();
        for _ in 0..3 {
            m.add_atom(Element::C);
        }
        m.add_bond(0, 1, BondOrder::Double).unwrap();
        m.add_bond(1, 2, BondOrder::Double).unwrap();
        assert_eq!(alerts_of(&m), 1);
    }

    #[test]
    fn epoxide_flags() {
        let mut m = Molecule::new();
        let c1 = m.add_atom(Element::C);
        let c2 = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        m.add_bond(c1, c2, BondOrder::Single).unwrap();
        m.add_bond(c2, o, BondOrder::Single).unwrap();
        m.add_bond(o, c1, BondOrder::Single).unwrap();
        assert!(alerts_of(&m) >= 1);
    }

    #[test]
    fn acyl_fluoride_flags() {
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        let f = m.add_atom(Element::F);
        m.add_bond(c, o, BondOrder::Double).unwrap();
        m.add_bond(c, f, BondOrder::Single).unwrap();
        assert_eq!(alerts_of(&m), 1);
    }

    #[test]
    fn long_chain_flags_once() {
        let mut m = Molecule::new();
        for _ in 0..12 {
            m.add_atom(Element::C);
        }
        for i in 0..11 {
            m.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        assert_eq!(alerts_of(&m), 1);
        // Short chain: no alert.
        let mut s = Molecule::new();
        for _ in 0..5 {
            s.add_atom(Element::C);
        }
        for i in 0..4 {
            s.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        assert_eq!(alerts_of(&s), 0);
    }
}
