//! Valence checking — the validity model applied to decoded molecules.

use crate::molecule::Molecule;

/// A single valence violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValenceViolation {
    /// Offending atom index.
    pub atom: usize,
    /// Its explicit valence (bond-order sum).
    pub explicit: f64,
    /// The maximum valence its element accepts.
    pub max_allowed: f64,
}

/// Returns every atom whose explicit valence exceeds its element's maximum
/// allowed valence.
pub fn valence_violations(mol: &Molecule) -> Vec<ValenceViolation> {
    (0..mol.n_atoms())
        .filter_map(|i| {
            let explicit = mol.explicit_valence(i);
            let max_allowed = mol.element(i).max_valence() as f64;
            // Small epsilon so aromatic 1.5-sums like benzene's 3.0 compare
            // exactly and borderline fp noise does not flag.
            (explicit > max_allowed + 1e-9).then_some(ValenceViolation {
                atom: i,
                explicit,
                max_allowed,
            })
        })
        .collect()
}

/// Whether every atom's valence is within its element's allowance.
pub fn valences_ok(mol: &Molecule) -> bool {
    valence_violations(mol).is_empty()
}

/// The MolGAN-style validity criterion used when scoring generated
/// molecules: non-empty, connected, and valence-clean.
pub fn is_valid(mol: &Molecule) -> bool {
    !mol.is_empty() && mol.is_connected() && valences_ok(mol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond::BondOrder;
    use crate::element::Element;

    #[test]
    fn clean_molecule_passes() {
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        m.add_bond(c, o, BondOrder::Double).unwrap();
        assert!(valences_ok(&m));
        assert!(is_valid(&m));
    }

    #[test]
    fn pentavalent_carbon_fails() {
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        for _ in 0..3 {
            let n = m.add_atom(Element::C);
            m.add_bond(c, n, BondOrder::Single).unwrap();
        }
        let n = m.add_atom(Element::C);
        m.add_bond(c, n, BondOrder::Double).unwrap();
        let v = valence_violations(&m);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].atom, 0);
        assert_eq!(v[0].explicit, 5.0);
        assert_eq!(v[0].max_allowed, 4.0);
        assert!(!is_valid(&m));
    }

    #[test]
    fn hypervalent_sulfur_is_accepted() {
        // Sulfone-like S with two double bonds and two singles (valence 6).
        let mut m = Molecule::new();
        let s = m.add_atom(Element::S);
        let o1 = m.add_atom(Element::O);
        let o2 = m.add_atom(Element::O);
        let c1 = m.add_atom(Element::C);
        let c2 = m.add_atom(Element::C);
        m.add_bond(s, o1, BondOrder::Double).unwrap();
        m.add_bond(s, o2, BondOrder::Double).unwrap();
        m.add_bond(s, c1, BondOrder::Single).unwrap();
        m.add_bond(s, c2, BondOrder::Single).unwrap();
        assert!(valences_ok(&m));
    }

    #[test]
    fn fluorine_with_two_bonds_fails() {
        let mut m = Molecule::new();
        let f = m.add_atom(Element::F);
        let c1 = m.add_atom(Element::C);
        let c2 = m.add_atom(Element::C);
        m.add_bond(f, c1, BondOrder::Single).unwrap();
        m.add_bond(f, c2, BondOrder::Single).unwrap();
        assert!(!valences_ok(&m));
    }

    #[test]
    fn disconnected_molecule_is_invalid() {
        let mut m = Molecule::new();
        m.add_atom(Element::C);
        m.add_atom(Element::C);
        assert!(valences_ok(&m));
        assert!(!is_valid(&m));
    }

    #[test]
    fn empty_molecule_is_invalid() {
        assert!(!is_valid(&Molecule::new()));
    }

    #[test]
    fn benzene_aromatic_valence_is_exactly_ok() {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic).unwrap();
        }
        assert!(valences_ok(&m));
    }
}
