//! Hashed circular fingerprints (ECFP-like) and Tanimoto similarity.
//!
//! Used by the generation-quality metrics (uniqueness / novelty /
//! diversity) that accompany Table II-style evaluations in the molecular
//! generative-model literature the paper builds on (MolGAN et al.). The
//! algorithm is Morgan-style: each atom starts from an invariant hash
//! (element, degree, valence, H count, ring membership) and iteratively
//! absorbs its neighbors' identifiers; every intermediate identifier sets a
//! bit in a fixed-width bitset.

use crate::molecule::Molecule;
use crate::rings::perceive_rings;

/// Fingerprint width in bits.
pub const FINGERPRINT_BITS: usize = 1024;
/// Number of Morgan iterations (radius). Radius 2 ≈ ECFP4.
pub const DEFAULT_RADIUS: usize = 2;

/// A fixed-width molecular bit fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    words: [u64; FINGERPRINT_BITS / 64],
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint {
            words: [0; FINGERPRINT_BITS / 64],
        }
    }
}

impl Fingerprint {
    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics when `i >= FINGERPRINT_BITS`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < FINGERPRINT_BITS, "fingerprint bit out of range");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Tanimoto similarity `|A∩B| / |A∪B|` in [0, 1] (1.0 for two empty
    /// fingerprints, by convention).
    pub fn tanimoto(&self, other: &Fingerprint) -> f64 {
        let mut inter = 0u32;
        let mut union = 0u32;
        for (a, b) in self.words.iter().zip(&other.words) {
            inter += (a & b).count_ones();
            union += (a | b).count_ones();
        }
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// FNV-1a style scalar hash (stable across platforms/runs).
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100000001b3)
}

/// Computes the Morgan fingerprint of a molecule at [`DEFAULT_RADIUS`].
pub fn fingerprint(mol: &Molecule) -> Fingerprint {
    fingerprint_with_radius(mol, DEFAULT_RADIUS)
}

/// Computes the Morgan fingerprint with an explicit radius.
pub fn fingerprint_with_radius(mol: &Molecule, radius: usize) -> Fingerprint {
    let mut fp = Fingerprint::default();
    if mol.is_empty() {
        return fp;
    }
    let rings = perceive_rings(mol);
    // Round-0 atom invariants.
    let mut ids: Vec<u64> = (0..mol.n_atoms())
        .map(|i| {
            let mut h = 0xcbf29ce484222325u64;
            h = mix(h, mol.element(i).atomic_number() as u64);
            h = mix(h, mol.degree(i) as u64);
            h = mix(h, (mol.explicit_valence(i) * 2.0) as u64);
            h = mix(h, mol.implicit_hydrogens(i) as u64);
            h = mix(h, rings.atom_in_ring[i] as u64);
            h
        })
        .collect();
    for id in &ids {
        fp.set((*id % FINGERPRINT_BITS as u64) as usize);
    }
    // Iterative neighborhood absorption.
    for round in 0..radius {
        let mut next = ids.clone();
        for i in 0..mol.n_atoms() {
            // Sort neighbor contributions for order invariance.
            let mut contrib: Vec<u64> = mol
                .neighbors(i)
                .into_iter()
                .map(|(n, order)| mix(ids[n], order.matrix_code() as u64))
                .collect();
            contrib.sort_unstable();
            let mut h = mix(ids[i], round as u64 + 1);
            for c in contrib {
                h = mix(h, c);
            }
            next[i] = h;
            fp.set((h % FINGERPRINT_BITS as u64) as usize);
        }
        ids = next;
    }
    fp
}

/// Mean pairwise Tanimoto *distance* (1 − similarity) over a set — the
/// "diversity" metric of the molecular-GAN literature. Returns 0 for fewer
/// than two molecules.
pub fn diversity(fps: &[Fingerprint]) -> f64 {
    if fps.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len() {
            total += 1.0 - fps[i].tanimoto(&fps[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond::BondOrder;
    use crate::element::Element;

    fn chain(n: usize) -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..n {
            m.add_atom(Element::C);
        }
        for i in 0..n.saturating_sub(1) {
            m.add_bond(i, i + 1, BondOrder::Single).unwrap();
        }
        m
    }

    fn benzene() -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic).unwrap();
        }
        m
    }

    #[test]
    fn identical_molecules_have_identical_fingerprints() {
        assert_eq!(fingerprint(&benzene()), fingerprint(&benzene()));
        assert_eq!(
            fingerprint(&benzene()).tanimoto(&fingerprint(&benzene())),
            1.0
        );
    }

    #[test]
    fn atom_order_does_not_matter() {
        // Build propanol in two different atom orders.
        let mut a = Molecule::new();
        let c1 = a.add_atom(Element::C);
        let c2 = a.add_atom(Element::C);
        let c3 = a.add_atom(Element::C);
        let o = a.add_atom(Element::O);
        a.add_bond(c1, c2, BondOrder::Single).unwrap();
        a.add_bond(c2, c3, BondOrder::Single).unwrap();
        a.add_bond(c3, o, BondOrder::Single).unwrap();

        let mut b = Molecule::new();
        let o = b.add_atom(Element::O);
        let c3 = b.add_atom(Element::C);
        let c2 = b.add_atom(Element::C);
        let c1 = b.add_atom(Element::C);
        b.add_bond(o, c3, BondOrder::Single).unwrap();
        b.add_bond(c3, c2, BondOrder::Single).unwrap();
        b.add_bond(c2, c1, BondOrder::Single).unwrap();

        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn different_molecules_differ() {
        let fp_benzene = fingerprint(&benzene());
        let fp_hexane = fingerprint(&chain(6));
        assert_ne!(fp_benzene, fp_hexane);
        assert!(fp_benzene.tanimoto(&fp_hexane) < 0.8);
    }

    #[test]
    fn similar_molecules_are_more_similar_than_dissimilar_ones() {
        let hexane = fingerprint(&chain(6));
        let heptane = fingerprint(&chain(7));
        let benz = fingerprint(&benzene());
        assert!(hexane.tanimoto(&heptane) > hexane.tanimoto(&benz));
    }

    #[test]
    fn tanimoto_properties() {
        let a = fingerprint(&chain(4));
        let b = fingerprint(&benzene());
        let t = a.tanimoto(&b);
        assert!((0.0..=1.0).contains(&t));
        assert_eq!(a.tanimoto(&b), b.tanimoto(&a));
        assert_eq!(
            Fingerprint::default().tanimoto(&Fingerprint::default()),
            1.0
        );
    }

    #[test]
    fn fingerprints_have_set_bits() {
        let fp = fingerprint(&benzene());
        assert!(fp.count_ones() > 0);
        assert!((0..FINGERPRINT_BITS).any(|i| fp.bit(i)));
    }

    #[test]
    fn radius_zero_ignores_topology_beyond_atoms() {
        // Hexane vs cyclohexane share atom types at radius 0 only partly
        // (ring membership is an invariant); higher radius separates more.
        let mut cyc = chain(6);
        cyc.add_bond(5, 0, BondOrder::Single).unwrap();
        let t0 = fingerprint_with_radius(&chain(6), 0).tanimoto(&fingerprint_with_radius(&cyc, 0));
        let t2 = fingerprint_with_radius(&chain(6), 2).tanimoto(&fingerprint_with_radius(&cyc, 2));
        assert!(t2 <= t0);
    }

    #[test]
    fn diversity_of_identical_set_is_zero() {
        let fps = vec![fingerprint(&benzene()), fingerprint(&benzene())];
        assert_eq!(diversity(&fps), 0.0);
        assert_eq!(diversity(&fps[..1]), 0.0);
    }

    #[test]
    fn diverse_set_scores_higher() {
        let same = vec![fingerprint(&chain(6)), fingerprint(&chain(6))];
        let varied = vec![
            fingerprint(&chain(3)),
            fingerprint(&benzene()),
            fingerprint(&chain(8)),
        ];
        assert!(diversity(&varied) > diversity(&same));
    }

    #[test]
    fn empty_molecule_fingerprint_is_empty() {
        assert_eq!(fingerprint(&Molecule::new()).count_ones(), 0);
    }
}
