//! Chemical elements used by the paper's molecule matrices.
//!
//! QM9 molecules use C/N/O (diagonal codes 1–3, Fig. 3 of the paper);
//! PDBbind ligands additionally use F and S (codes 4–5, §IV-A). Hydrogens
//! are implicit, as in the paper ("only heavy atoms excluding Hydrogen are
//! displayed in the matrix").

use std::fmt;

/// A heavy-atom element from the paper's encoding tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// Carbon (matrix code 1).
    C,
    /// Nitrogen (matrix code 2).
    N,
    /// Oxygen (matrix code 3).
    O,
    /// Fluorine (matrix code 4, PDBbind only).
    F,
    /// Sulfur (matrix code 5, PDBbind only).
    S,
}

impl Element {
    /// All supported elements in matrix-code order.
    pub const ALL: [Element; 5] = [Element::C, Element::N, Element::O, Element::F, Element::S];

    /// The diagonal matrix code (1-C, 2-N, 3-O, 4-F, 5-S).
    pub fn matrix_code(self) -> u8 {
        match self {
            Element::C => 1,
            Element::N => 2,
            Element::O => 3,
            Element::F => 4,
            Element::S => 5,
        }
    }

    /// Decodes a diagonal matrix code; `None` for 0 (no atom) or unknown
    /// codes.
    pub fn from_matrix_code(code: u8) -> Option<Element> {
        match code {
            1 => Some(Element::C),
            2 => Some(Element::N),
            3 => Some(Element::O),
            4 => Some(Element::F),
            5 => Some(Element::S),
            _ => None,
        }
    }

    /// Atomic number.
    pub fn atomic_number(self) -> u8 {
        match self {
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::F => 9,
            Element::S => 16,
        }
    }

    /// Standard atomic weight (g/mol).
    pub fn atomic_weight(self) -> f64 {
        match self {
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::F => 18.998,
            Element::S => 32.06,
        }
    }

    /// The default (lowest common) valence used for implicit-hydrogen
    /// counting, matching RDKit's default valence model for these elements.
    pub fn default_valence(self) -> u8 {
        match self {
            Element::C => 4,
            Element::N => 3,
            Element::O => 2,
            Element::F => 1,
            Element::S => 2,
        }
    }

    /// Valences accepted by the validity checker (hypervalent sulfur allows
    /// 2, 4, and 6).
    pub fn allowed_valences(self) -> &'static [u8] {
        match self {
            Element::C => &[4],
            Element::N => &[3],
            Element::O => &[2],
            Element::F => &[1],
            Element::S => &[2, 4, 6],
        }
    }

    /// Maximum accepted valence.
    pub fn max_valence(self) -> u8 {
        *self.allowed_valences().last().expect("non-empty")
    }

    /// Pauling electronegativity (used by the synthetic-accessibility
    /// heuristics).
    pub fn electronegativity(self) -> f64 {
        match self {
            Element::C => 2.55,
            Element::N => 3.04,
            Element::O => 3.44,
            Element::F => 3.98,
            Element::S => 2.58,
        }
    }

    /// Whether this element is a hydrogen-bond acceptor candidate (N, O).
    pub fn is_hetero_acceptor(self) -> bool {
        matches!(self, Element::N | Element::O)
    }

    /// The element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::F => "F",
            Element::S => "S",
        }
    }

    /// Parses an element symbol (case sensitive).
    pub fn from_symbol(s: &str) -> Option<Element> {
        match s {
            "C" => Some(Element::C),
            "N" => Some(Element::N),
            "O" => Some(Element::O),
            "F" => Some(Element::F),
            "S" => Some(Element::S),
            _ => None,
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_codes_round_trip() {
        for e in Element::ALL {
            assert_eq!(Element::from_matrix_code(e.matrix_code()), Some(e));
        }
        assert_eq!(Element::from_matrix_code(0), None);
        assert_eq!(Element::from_matrix_code(6), None);
    }

    #[test]
    fn paper_code_table() {
        // Fig. 3 / §IV-A: 1-C, 2-N, 3-O, 4-F, 5-S.
        assert_eq!(Element::C.matrix_code(), 1);
        assert_eq!(Element::N.matrix_code(), 2);
        assert_eq!(Element::O.matrix_code(), 3);
        assert_eq!(Element::F.matrix_code(), 4);
        assert_eq!(Element::S.matrix_code(), 5);
    }

    #[test]
    fn valences() {
        assert_eq!(Element::C.default_valence(), 4);
        assert_eq!(Element::N.default_valence(), 3);
        assert_eq!(Element::O.default_valence(), 2);
        assert_eq!(Element::F.default_valence(), 1);
        assert_eq!(Element::S.max_valence(), 6);
        assert!(Element::S.allowed_valences().contains(&4));
    }

    #[test]
    fn symbols_round_trip() {
        for e in Element::ALL {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
            assert_eq!(e.to_string(), e.symbol());
        }
        assert_eq!(Element::from_symbol("Xx"), None);
    }

    #[test]
    fn weights_are_ordered_reasonably() {
        assert!(Element::C.atomic_weight() < Element::N.atomic_weight());
        assert!(Element::F.atomic_weight() < Element::S.atomic_weight());
    }
}
