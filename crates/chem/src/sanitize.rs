//! Sanitization of decoded molecules.
//!
//! Autoencoder outputs decode into graphs that may violate valence rules or
//! fall apart into fragments. Mirroring the common RDKit workflow the paper
//! inherits (and MolGAN's post-processing), sanitization (1) demotes or
//! drops bonds at overloaded atoms until valences fit, then (2) keeps the
//! largest connected fragment.

use crate::bond::BondOrder;
use crate::error::Result;
use crate::molecule::{Bond, Molecule};
use crate::valence::valences_ok;

/// Outcome of sanitizing one decoded molecule.
#[derive(Debug, Clone, PartialEq)]
pub struct Sanitized {
    /// The repaired molecule (largest valid fragment).
    pub molecule: Molecule,
    /// Bonds removed to satisfy valences.
    pub bonds_removed: usize,
    /// Bonds demoted to a lower order.
    pub bonds_demoted: usize,
    /// Atoms dropped with discarded fragments.
    pub atoms_dropped: usize,
    /// Whether the input was already valid.
    pub was_valid: bool,
}

/// Repairs valence violations and extracts the largest fragment.
///
/// Strategy: while some atom exceeds its maximum valence, pick the
/// highest-order bond at the worst offender and demote it one step
/// (triple→double→single); a single/aromatic bond that still overloads the
/// atom is removed entirely. Afterwards, only the largest connected
/// component is kept.
///
/// # Errors
///
/// Returns [`crate::ChemError::EmptyMolecule`] when the input has no atoms.
pub fn sanitize(mol: &Molecule) -> Result<Sanitized> {
    let was_valid = !mol.is_empty() && mol.is_connected() && valences_ok(mol);
    let mut atoms = mol.atoms().to_vec();
    let mut bonds: Vec<Bond> = mol.bonds().to_vec();
    let mut removed = 0usize;
    let mut demoted = 0usize;

    loop {
        let work = Molecule::from_parts(atoms.clone(), bonds.iter().map(|b| (b.a, b.b, b.order)))?;
        // Find the worst offender.
        let mut worst: Option<(usize, f64)> = None;
        for i in 0..work.n_atoms() {
            let excess = work.explicit_valence(i) - work.element(i).max_valence() as f64;
            if excess > 1e-9 && worst.map_or(true, |(_, e)| excess > e) {
                worst = Some((i, excess));
            }
        }
        let Some((atom, _)) = worst else {
            break;
        };
        // Highest-order bond at that atom.
        let (bidx, _) = bonds
            .iter()
            .enumerate()
            .filter(|(_, b)| b.other(atom).is_some())
            .max_by(|(_, x), (_, y)| {
                x.order
                    .valence_contribution()
                    .partial_cmp(&y.order.valence_contribution())
                    .expect("finite")
            })
            .expect("an overloaded atom has at least one bond");
        let order = bonds[bidx].order;
        match order {
            BondOrder::Triple => {
                bonds[bidx].order = BondOrder::Double;
                demoted += 1;
            }
            BondOrder::Double => {
                bonds[bidx].order = BondOrder::Single;
                demoted += 1;
            }
            BondOrder::Single | BondOrder::Aromatic => {
                bonds.swap_remove(bidx);
                removed += 1;
            }
        }
    }

    let repaired = Molecule::from_parts(
        std::mem::take(&mut atoms),
        bonds.iter().map(|b| (b.a, b.b, b.order)),
    )?;
    let fragment = repaired.largest_fragment()?;
    let atoms_dropped = repaired.n_atoms() - fragment.n_atoms();
    Ok(Sanitized {
        molecule: fragment,
        bonds_removed: removed,
        bonds_demoted: demoted,
        atoms_dropped,
        was_valid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::valence::is_valid;

    #[test]
    fn valid_molecule_passes_through() {
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        m.add_bond(c, o, BondOrder::Single).unwrap();
        let s = sanitize(&m).unwrap();
        assert!(s.was_valid);
        assert_eq!(s.bonds_removed + s.bonds_demoted + s.atoms_dropped, 0);
        assert_eq!(s.molecule.formula(), m.formula());
    }

    #[test]
    fn overloaded_carbon_gets_demoted() {
        // C with two doubles and two singles (valence 6 > 4).
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        for order in [
            BondOrder::Double,
            BondOrder::Double,
            BondOrder::Single,
            BondOrder::Single,
        ] {
            let n = m.add_atom(Element::C);
            m.add_bond(c, n, order).unwrap();
        }
        let s = sanitize(&m).unwrap();
        assert!(!s.was_valid);
        assert!(is_valid(&s.molecule) || s.molecule.is_connected());
        assert!(s.bonds_demoted >= 2);
        assert!(crate::valence::valences_ok(&s.molecule));
    }

    #[test]
    fn fluorine_excess_bond_is_removed() {
        let mut m = Molecule::new();
        let f = m.add_atom(Element::F);
        let c1 = m.add_atom(Element::C);
        let c2 = m.add_atom(Element::C);
        m.add_bond(f, c1, BondOrder::Single).unwrap();
        m.add_bond(f, c2, BondOrder::Single).unwrap();
        m.add_bond(c1, c2, BondOrder::Single).unwrap();
        let s = sanitize(&m).unwrap();
        assert!(crate::valence::valences_ok(&s.molecule));
        assert!(s.bonds_removed >= 1);
        assert!(s.molecule.is_connected());
    }

    #[test]
    fn largest_fragment_is_kept() {
        let mut m = Molecule::new();
        // Fragment 1: three carbons in a chain.
        for _ in 0..3 {
            m.add_atom(Element::C);
        }
        m.add_bond(0, 1, BondOrder::Single).unwrap();
        m.add_bond(1, 2, BondOrder::Single).unwrap();
        // Fragment 2: lone oxygen.
        m.add_atom(Element::O);
        let s = sanitize(&m).unwrap();
        assert_eq!(s.molecule.n_atoms(), 3);
        assert_eq!(s.atoms_dropped, 1);
        assert!(is_valid(&s.molecule));
    }

    #[test]
    fn empty_molecule_errors() {
        assert!(sanitize(&Molecule::new()).is_err());
    }

    #[test]
    fn sanitize_always_terminates_on_dense_garbage() {
        // Fully connected K5 of carbons with double bonds: grossly invalid.
        let mut m = Molecule::new();
        for _ in 0..5 {
            m.add_atom(Element::C);
        }
        for i in 0..5 {
            for j in (i + 1)..5 {
                m.add_bond(i, j, BondOrder::Double).unwrap();
            }
        }
        let s = sanitize(&m).unwrap();
        assert!(crate::valence::valences_ok(&s.molecule));
        assert!(!s.molecule.is_empty());
    }
}
