//! A small SMILES writer and parser.
//!
//! Covers exactly the chemistry this reproduction can produce: the five
//! heavy elements C/N/O/F/S, bond orders single/double/triple/aromatic,
//! branches, and ring closures. Aromatic bonds are written explicitly with
//! `:` (atoms stay uppercase), so strings round-trip through this crate's
//! own parser; hydrogens remain implicit.
//!
//! This is the human-readable inspection format for sampled ligands (the
//! paper's RDKit workflow would render SMILES for the same purpose).

use crate::bond::BondOrder;
use crate::element::Element;
use crate::error::{ChemError, Result};
use crate::molecule::Molecule;
use std::collections::HashMap;

/// Writes a molecule as SMILES. Disconnected components are joined with `.`.
///
/// # Errors
///
/// Returns [`ChemError::EmptyMolecule`] for an empty molecule.
///
/// # Examples
///
/// ```
/// use sqvae_chem::{smiles, BondOrder, Element, Molecule};
///
/// let mut mol = Molecule::new();
/// let c = mol.add_atom(Element::C);
/// let o = mol.add_atom(Element::O);
/// mol.add_bond(c, o, BondOrder::Double)?;
/// assert_eq!(smiles::write(&mol)?, "C=O");
/// # Ok::<(), sqvae_chem::ChemError>(())
/// ```
pub fn write(mol: &Molecule) -> Result<String> {
    if mol.is_empty() {
        return Err(ChemError::EmptyMolecule);
    }
    let mut out = String::new();
    let mut visited = vec![false; mol.n_atoms()];
    // Ring-closure bookkeeping: bond key -> digit.
    let mut closures: HashMap<(usize, usize), usize> = HashMap::new();
    let mut next_digit = 1usize;

    // First pass per component: find non-tree (ring) bonds via DFS.
    let mut first = true;
    for comp in mol.connected_components() {
        if !first {
            out.push('.');
        }
        first = false;
        let root = comp[0];
        let mut tree_parent = vec![usize::MAX; mol.n_atoms()];
        let mut order = Vec::new();
        dfs_tree(
            mol,
            root,
            &mut vec![false; mol.n_atoms()],
            &mut tree_parent,
            &mut order,
        );
        // Ring bonds: bonds within the component not used by the tree.
        for bd in mol.bonds() {
            if comp.binary_search(&bd.a).is_err() {
                continue;
            }
            let is_tree = tree_parent[bd.a] == bd.b || tree_parent[bd.b] == bd.a;
            if !is_tree {
                closures.insert((bd.a, bd.b), next_digit);
                next_digit += 1;
            }
        }
        write_atom(mol, root, usize::MAX, &mut visited, &closures, &mut out);
    }
    Ok(out)
}

fn dfs_tree(
    mol: &Molecule,
    u: usize,
    seen: &mut Vec<bool>,
    parent: &mut Vec<usize>,
    order: &mut Vec<usize>,
) {
    seen[u] = true;
    order.push(u);
    let mut nbrs = mol.neighbors(u);
    nbrs.sort_by_key(|&(v, _)| v);
    for (v, _) in nbrs {
        if !seen[v] {
            parent[v] = u;
            dfs_tree(mol, v, seen, parent, order);
        }
    }
}

fn push_bond(order: BondOrder, out: &mut String) {
    if order != BondOrder::Single {
        out.push(order.smiles_symbol());
    }
}

fn write_atom(
    mol: &Molecule,
    u: usize,
    parent: usize,
    visited: &mut Vec<bool>,
    closures: &HashMap<(usize, usize), usize>,
    out: &mut String,
) {
    visited[u] = true;
    out.push_str(mol.element(u).symbol());

    let mut nbrs = mol.neighbors(u);
    nbrs.sort_by_key(|&(v, _)| v);

    // Emit ring-closure digits at this atom.
    for &(v, order) in &nbrs {
        let key = if u < v { (u, v) } else { (v, u) };
        if let Some(&digit) = closures.get(&key) {
            // Write the bond symbol at the first endpoint encountered.
            if !visited[v] {
                push_bond(order, out);
            }
            if digit < 10 {
                out.push_str(&digit.to_string());
            } else {
                out.push('%');
                out.push_str(&format!("{digit:02}"));
            }
        }
    }

    // Recurse into unvisited tree children.
    let children: Vec<(usize, BondOrder)> = nbrs
        .into_iter()
        .filter(|&(v, _)| {
            let key = if u < v { (u, v) } else { (v, u) };
            v != parent && !visited[v] && !closures.contains_key(&key)
        })
        .collect();
    let n = children.len();
    for (i, (v, order)) in children.into_iter().enumerate() {
        if visited[v] {
            continue; // may have been reached through an earlier branch
        }
        let last = i == n - 1;
        if !last {
            out.push('(');
        }
        push_bond(order, out);
        write_atom(mol, v, u, visited, closures, out);
        if !last {
            out.push(')');
        }
    }
}

/// Parses a SMILES string produced by [`write`] (uppercase atoms, explicit
/// `:` aromatic bonds, digit/`%nn` ring closures, `.` separators).
///
/// # Errors
///
/// Returns [`ChemError::ParseSmiles`] with the byte position for malformed
/// input, including unclosed branches and dangling ring closures.
pub fn parse(s: &str) -> Result<Molecule> {
    let bytes = s.as_bytes();
    let mut mol = Molecule::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut prev: Option<usize> = None;
    let mut pending_bond: Option<BondOrder> = None;
    let mut ring_open: HashMap<usize, (usize, Option<BondOrder>)> = HashMap::new();
    let mut i = 0usize;

    let err = |position: usize, message: &str| ChemError::ParseSmiles {
        position,
        message: message.to_string(),
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            'C' | 'N' | 'O' | 'F' | 'S' => {
                let e = Element::from_symbol(&c.to_string()).expect("matched");
                let atom = mol.add_atom(e);
                if let Some(p) = prev {
                    let order = pending_bond.take().unwrap_or(BondOrder::Single);
                    mol.add_bond(p, atom, order)
                        .map_err(|_| err(i, "duplicate or invalid bond"))?;
                }
                prev = Some(atom);
                i += 1;
            }
            '-' | '=' | '#' | ':' => {
                if pending_bond.is_some() {
                    return Err(err(i, "two consecutive bond symbols"));
                }
                pending_bond = BondOrder::from_smiles_symbol(c);
                i += 1;
            }
            '(' => {
                let p = prev.ok_or_else(|| err(i, "branch before any atom"))?;
                stack.push(p);
                i += 1;
            }
            ')' => {
                prev = Some(stack.pop().ok_or_else(|| err(i, "unmatched ')'"))?);
                i += 1;
            }
            '.' => {
                prev = None;
                pending_bond = None;
                i += 1;
            }
            '0'..='9' | '%' => {
                let (digit, consumed) = if c == '%' {
                    if i + 3 > bytes.len() {
                        return Err(err(i, "truncated %nn ring closure"));
                    }
                    let two = &s[i + 1..i + 3];
                    let d: usize = two
                        .parse()
                        .map_err(|_| err(i, "malformed %nn ring closure"))?;
                    (d, 3)
                } else {
                    ((c as u8 - b'0') as usize, 1)
                };
                let atom = prev.ok_or_else(|| err(i, "ring closure before any atom"))?;
                let bond = pending_bond.take();
                match ring_open.remove(&digit) {
                    Some((other, opened_bond)) => {
                        let order = bond.or(opened_bond).unwrap_or(BondOrder::Single);
                        mol.add_bond(other, atom, order)
                            .map_err(|_| err(i, "invalid ring-closure bond"))?;
                    }
                    None => {
                        ring_open.insert(digit, (atom, bond));
                    }
                }
                i += consumed;
            }
            ' ' => {
                i += 1;
            }
            other => {
                return Err(err(i, &format!("unexpected character '{other}'")));
            }
        }
    }
    if !stack.is_empty() {
        return Err(err(s.len(), "unclosed '('"));
    }
    if !ring_open.is_empty() {
        return Err(err(s.len(), "dangling ring closure"));
    }
    if mol.is_empty() {
        return Err(ChemError::EmptyMolecule);
    }
    Ok(mol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invariants(m: &Molecule) -> (String, usize, Vec<(Element, usize, u64)>) {
        let mut per_atom: Vec<(Element, usize, u64)> = (0..m.n_atoms())
            .map(|i| {
                (
                    m.element(i),
                    m.degree(i),
                    (m.explicit_valence(i) * 2.0).round() as u64,
                )
            })
            .collect();
        per_atom.sort();
        (m.formula(), m.n_bonds(), per_atom)
    }

    fn round_trip(m: &Molecule) {
        let s = write(m).unwrap();
        let back = parse(&s).unwrap();
        assert_eq!(invariants(m), invariants(&back), "smiles: {s}");
    }

    #[test]
    fn linear_chain() {
        let mut m = Molecule::new();
        let c1 = m.add_atom(Element::C);
        let c2 = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        m.add_bond(c1, c2, BondOrder::Single).unwrap();
        m.add_bond(c2, o, BondOrder::Single).unwrap();
        assert_eq!(write(&m).unwrap(), "CCO");
        round_trip(&m);
    }

    #[test]
    fn double_bond_symbol() {
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        let o = m.add_atom(Element::O);
        m.add_bond(c, o, BondOrder::Double).unwrap();
        assert_eq!(write(&m).unwrap(), "C=O");
        round_trip(&m);
    }

    #[test]
    fn branching() {
        // Isobutane-like: central C with three C neighbors.
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        for _ in 0..3 {
            let n = m.add_atom(Element::C);
            m.add_bond(c, n, BondOrder::Single).unwrap();
        }
        let s = write(&m).unwrap();
        assert!(s.contains('('), "expected branch in {s}");
        round_trip(&m);
    }

    #[test]
    fn benzene_ring_closure() {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic).unwrap();
        }
        let s = write(&m).unwrap();
        assert!(s.contains('1'), "ring digit expected in {s}");
        round_trip(&m);
    }

    #[test]
    fn disconnected_components_use_dot() {
        let mut m = Molecule::new();
        m.add_atom(Element::C);
        m.add_atom(Element::O);
        let s = write(&m).unwrap();
        assert_eq!(s, "C.O");
        round_trip(&m);
    }

    #[test]
    fn triple_bond_round_trip() {
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        let n = m.add_atom(Element::N);
        m.add_bond(c, n, BondOrder::Triple).unwrap();
        assert_eq!(write(&m).unwrap(), "C#N");
        round_trip(&m);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("CX").is_err());
        assert!(parse("C(C").is_err());
        assert!(parse("C1CC").is_err()); // dangling ring closure
        assert!(parse(")C").is_err());
        assert!(parse("C==O").is_err());
        assert!(parse("").is_err());
        assert!(parse("C1CC%1").is_err()); // truncated %nn ring closure
        assert!(parse("C1CC%").is_err());
        assert!(parse("C%ab").is_err()); // non-digit %nn closure
    }

    #[test]
    fn parse_standard_examples() {
        let caffeine_like = parse("CN1C=NC2C1C(=O)N(C)C(=O)N2C");
        assert!(caffeine_like.is_ok());
        let m = caffeine_like.unwrap();
        assert!(m.is_connected());
        assert_eq!(m.count_element(Element::N), 4);
    }

    #[test]
    fn fused_rings_round_trip() {
        // Naphthalene skeleton.
        let mut m = Molecule::new();
        for _ in 0..10 {
            m.add_atom(Element::C);
        }
        for i in 0..5 {
            m.add_bond(i, i + 1, BondOrder::Aromatic).unwrap();
        }
        m.add_bond(5, 0, BondOrder::Aromatic).unwrap();
        m.add_bond(5, 6, BondOrder::Aromatic).unwrap();
        for i in 6..9 {
            m.add_bond(i, i + 1, BondOrder::Aromatic).unwrap();
        }
        m.add_bond(9, 0, BondOrder::Aromatic).unwrap();
        round_trip(&m);
    }

    #[test]
    fn ring_bond_order_survives() {
        // Cyclohexene: one double bond in a 6-ring.
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        m.add_bond(0, 1, BondOrder::Double).unwrap();
        for i in 1..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Single).unwrap();
        }
        round_trip(&m);
        let s = write(&m).unwrap();
        let back = parse(&s).unwrap();
        let doubles = back
            .bonds()
            .iter()
            .filter(|b| b.order == BondOrder::Double)
            .count();
        assert_eq!(doubles, 1);
    }
}
