//! Ring perception.
//!
//! The property calculators (QED's aromatic-ring count, SA's ring-complexity
//! penalty, rotatable-bond exclusion) need ring membership. For the ≤32-atom
//! ligands of this reproduction, an SSSR approximation via per-bond shortest
//! cycles is accurate and fast.

use crate::bond::BondOrder;
use crate::molecule::Molecule;
use std::collections::VecDeque;

/// Ring information for a molecule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RingInfo {
    /// Rings as sorted atom-index lists (smallest set of smallest rings,
    /// approximately).
    pub rings: Vec<Vec<usize>>,
    /// Per-atom ring membership.
    pub atom_in_ring: Vec<bool>,
    /// Per-bond (by index into `molecule.bonds()`) ring membership.
    pub bond_in_ring: Vec<bool>,
}

impl RingInfo {
    /// Number of perceived rings.
    pub fn n_rings(&self) -> usize {
        self.rings.len()
    }

    /// Rings in which every bond is aromatic.
    pub fn aromatic_rings(&self, mol: &Molecule) -> Vec<&Vec<usize>> {
        self.rings
            .iter()
            .filter(|ring| ring_is_aromatic(mol, ring))
            .collect()
    }

    /// Number of aromatic rings (QED's `AROM` descriptor).
    pub fn n_aromatic_rings(&self, mol: &Molecule) -> usize {
        self.aromatic_rings(mol).len()
    }

    /// Number of rings larger than 8 atoms (SA's macrocycle penalty).
    pub fn n_macrocycles(&self) -> usize {
        self.rings.iter().filter(|r| r.len() > 8).count()
    }

    /// Number of ring pairs sharing at least two atoms (fused systems, used
    /// by the SA complexity penalty).
    pub fn n_fused_pairs(&self) -> usize {
        let mut count = 0;
        for i in 0..self.rings.len() {
            for j in (i + 1)..self.rings.len() {
                let shared = self.rings[i]
                    .iter()
                    .filter(|a| self.rings[j].binary_search(a).is_ok())
                    .count();
                if shared >= 2 {
                    count += 1;
                }
            }
        }
        count
    }
}

fn ring_is_aromatic(mol: &Molecule, ring: &[usize]) -> bool {
    if ring.len() < 3 {
        return false;
    }
    // Every consecutive pair in the cycle must be bonded aromatically. The
    // ring list is sorted, so instead check all in-ring bonds between ring
    // atoms: each ring atom must have exactly two aromatic in-ring bonds.
    for &a in ring {
        let aromatic_in_ring = mol
            .neighbors(a)
            .into_iter()
            .filter(|&(n, o)| ring.binary_search(&n).is_ok() && o == BondOrder::Aromatic)
            .count();
        if aromatic_in_ring < 2 {
            return false;
        }
    }
    true
}

/// The cyclomatic number `bonds − atoms + components` — the exact count of
/// independent rings.
pub fn ring_count(mol: &Molecule) -> usize {
    let comps = mol.connected_components().len();
    (mol.n_bonds() + comps).saturating_sub(mol.n_atoms())
}

/// Perceives rings: for every bond, the shortest cycle through it (BFS with
/// the bond removed), deduplicated.
pub fn perceive_rings(mol: &Molecule) -> RingInfo {
    let n = mol.n_atoms();
    let mut rings: Vec<Vec<usize>> = Vec::new();
    let mut atom_in_ring = vec![false; n];
    let mut bond_in_ring = vec![false; mol.n_bonds()];

    for (bidx, bond) in mol.bonds().iter().enumerate() {
        if let Some(path) = shortest_path_excluding(mol, bond.a, bond.b, bidx) {
            // path goes a → … → b; together with the bond it is a cycle.
            let mut ring = path;
            ring.sort_unstable();
            ring.dedup();
            bond_in_ring[bidx] = true;
            for &a in &ring {
                atom_in_ring[a] = true;
            }
            if !rings.contains(&ring) {
                rings.push(ring);
            }
        }
    }
    rings.sort_by_key(|r| (r.len(), r.clone()));
    RingInfo {
        rings,
        atom_in_ring,
        bond_in_ring,
    }
}

/// BFS shortest path from `src` to `dst` not using bond `skip_bond`.
fn shortest_path_excluding(
    mol: &Molecule,
    src: usize,
    dst: usize,
    skip_bond: usize,
) -> Option<Vec<usize>> {
    let n = mol.n_atoms();
    let mut prev = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([src]);
    seen[src] = true;
    while let Some(u) = queue.pop_front() {
        if u == dst {
            let mut path = vec![dst];
            let mut cur = dst;
            while cur != src {
                cur = prev[cur];
                path.push(cur);
            }
            return Some(path);
        }
        for (bidx, bd) in mol.bonds().iter().enumerate() {
            if bidx == skip_bond {
                continue;
            }
            if let Some(v) = bd.other(u) {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = u;
                    queue.push_back(v);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    fn benzene() -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic).unwrap();
        }
        m
    }

    fn cyclohexane() -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Single).unwrap();
        }
        m
    }

    fn naphthalene() -> Molecule {
        // Two fused aromatic 6-rings sharing atoms 0 and 5.
        let mut m = Molecule::new();
        for _ in 0..10 {
            m.add_atom(Element::C);
        }
        for i in 0..5 {
            m.add_bond(i, i + 1, BondOrder::Aromatic).unwrap();
        }
        m.add_bond(5, 0, BondOrder::Aromatic).unwrap();
        m.add_bond(5, 6, BondOrder::Aromatic).unwrap();
        for i in 6..9 {
            m.add_bond(i, i + 1, BondOrder::Aromatic).unwrap();
        }
        m.add_bond(9, 0, BondOrder::Aromatic).unwrap();
        m
    }

    #[test]
    fn chain_has_no_rings() {
        let mut m = Molecule::new();
        let a = m.add_atom(Element::C);
        let b = m.add_atom(Element::C);
        m.add_bond(a, b, BondOrder::Single).unwrap();
        assert_eq!(ring_count(&m), 0);
        let info = perceive_rings(&m);
        assert_eq!(info.n_rings(), 0);
        assert!(!info.atom_in_ring[0]);
    }

    #[test]
    fn benzene_is_one_aromatic_ring() {
        let m = benzene();
        assert_eq!(ring_count(&m), 1);
        let info = perceive_rings(&m);
        assert_eq!(info.n_rings(), 1);
        assert_eq!(info.rings[0].len(), 6);
        assert_eq!(info.n_aromatic_rings(&m), 1);
        assert!(info.atom_in_ring.iter().all(|&x| x));
        assert!(info.bond_in_ring.iter().all(|&x| x));
        assert_eq!(info.n_macrocycles(), 0);
    }

    #[test]
    fn cyclohexane_ring_is_not_aromatic() {
        let m = cyclohexane();
        let info = perceive_rings(&m);
        assert_eq!(info.n_rings(), 1);
        assert_eq!(info.n_aromatic_rings(&m), 0);
    }

    #[test]
    fn naphthalene_has_two_fused_aromatic_rings() {
        let m = naphthalene();
        assert_eq!(ring_count(&m), 2);
        let info = perceive_rings(&m);
        assert_eq!(info.n_rings(), 2);
        assert_eq!(info.n_aromatic_rings(&m), 2);
        assert_eq!(info.n_fused_pairs(), 1);
    }

    #[test]
    fn macrocycle_detection() {
        let mut m = Molecule::new();
        for _ in 0..12 {
            m.add_atom(Element::C);
        }
        for i in 0..12 {
            m.add_bond(i, (i + 1) % 12, BondOrder::Single).unwrap();
        }
        let info = perceive_rings(&m);
        assert_eq!(info.n_rings(), 1);
        assert_eq!(info.n_macrocycles(), 1);
    }

    #[test]
    fn ring_and_tail() {
        // Benzene with a two-carbon tail: tail atoms/bonds not in a ring.
        let mut m = benzene();
        let t1 = m.add_atom(Element::C);
        let t2 = m.add_atom(Element::C);
        m.add_bond(0, t1, BondOrder::Single).unwrap();
        m.add_bond(t1, t2, BondOrder::Single).unwrap();
        let info = perceive_rings(&m);
        assert_eq!(info.n_rings(), 1);
        assert!(!info.atom_in_ring[t1]);
        assert!(!info.atom_in_ring[t2]);
        let tail_bond = m.bond_between(t1, t2).is_some();
        assert!(tail_bond);
        // Last two bonds (tail) not in ring.
        assert!(!info.bond_in_ring[m.n_bonds() - 1]);
        assert!(!info.bond_in_ring[m.n_bonds() - 2]);
    }
}
