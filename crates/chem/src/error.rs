//! Error type for the cheminformatics substrate.

use std::error::Error;
use std::fmt;

/// Errors raised while building or decoding molecules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChemError {
    /// An atom index was out of range.
    AtomOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of atoms.
        n_atoms: usize,
    },
    /// A bond between an atom and itself was requested.
    SelfBond {
        /// The duplicated atom index.
        index: usize,
    },
    /// A bond between the pair already exists.
    DuplicateBond {
        /// First endpoint.
        a: usize,
        /// Second endpoint.
        b: usize,
    },
    /// A matrix had a non-square or zero size.
    BadMatrixShape {
        /// Number of raw values provided.
        len: usize,
    },
    /// The molecule does not fit in the requested matrix size.
    MoleculeTooLarge {
        /// Heavy atoms present.
        atoms: usize,
        /// Matrix size.
        size: usize,
    },
    /// SMILES parsing failed.
    ParseSmiles {
        /// Byte offset of the failure.
        position: usize,
        /// What was wrong.
        message: String,
    },
    /// The molecule is empty where a non-empty one was required.
    EmptyMolecule,
}

impl fmt::Display for ChemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChemError::AtomOutOfRange { index, n_atoms } => {
                write!(f, "atom index {index} out of range for {n_atoms} atoms")
            }
            ChemError::SelfBond { index } => {
                write!(f, "cannot bond atom {index} to itself")
            }
            ChemError::DuplicateBond { a, b } => {
                write!(f, "bond between atoms {a} and {b} already exists")
            }
            ChemError::BadMatrixShape { len } => {
                write!(
                    f,
                    "molecule matrix must be square and non-empty, got {len} values"
                )
            }
            ChemError::MoleculeTooLarge { atoms, size } => {
                write!(
                    f,
                    "molecule with {atoms} atoms does not fit a {size}x{size} matrix"
                )
            }
            ChemError::ParseSmiles { position, message } => {
                write!(f, "invalid smiles at byte {position}: {message}")
            }
            ChemError::EmptyMolecule => write!(f, "molecule has no atoms"),
        }
    }
}

impl Error for ChemError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ChemError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ChemError::EmptyMolecule.to_string().contains("no atoms"));
        let e = ChemError::ParseSmiles {
            position: 3,
            message: "unexpected ')'".into(),
        };
        assert!(e.to_string().contains("byte 3"));
    }
}
