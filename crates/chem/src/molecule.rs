//! The molecular graph.

use crate::bond::BondOrder;
use crate::element::Element;
use crate::error::{ChemError, Result};
use std::collections::VecDeque;

/// A bond between two heavy atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bond {
    /// Lower atom index.
    pub a: usize,
    /// Higher atom index.
    pub b: usize,
    /// Bond order.
    pub order: BondOrder,
}

impl Bond {
    /// Creates a normalized bond (endpoints sorted).
    pub fn new(a: usize, b: usize, order: BondOrder) -> Self {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        Bond { a, b, order }
    }

    /// The endpoint opposite `atom`, if `atom` is an endpoint.
    pub fn other(&self, atom: usize) -> Option<usize> {
        if atom == self.a {
            Some(self.b)
        } else if atom == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// An undirected molecular graph over heavy atoms with implicit hydrogens.
///
/// # Examples
///
/// Ethanol (CCO):
///
/// ```
/// use sqvae_chem::{BondOrder, Element, Molecule};
///
/// let mut mol = Molecule::new();
/// let c1 = mol.add_atom(Element::C);
/// let c2 = mol.add_atom(Element::C);
/// let o = mol.add_atom(Element::O);
/// mol.add_bond(c1, c2, BondOrder::Single)?;
/// mol.add_bond(c2, o, BondOrder::Single)?;
/// assert_eq!(mol.implicit_hydrogens(c1), 3);
/// assert_eq!(mol.implicit_hydrogens(o), 1);
/// assert!(mol.is_connected());
/// # Ok::<(), sqvae_chem::ChemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Molecule {
    atoms: Vec<Element>,
    bonds: Vec<Bond>,
}

impl Molecule {
    /// An empty molecule.
    pub fn new() -> Self {
        Molecule::default()
    }

    /// Builds a molecule from parts, validating every bond.
    ///
    /// # Errors
    ///
    /// Returns the first bond-validation error.
    pub fn from_parts(
        atoms: Vec<Element>,
        bonds: impl IntoIterator<Item = (usize, usize, BondOrder)>,
    ) -> Result<Self> {
        let mut mol = Molecule {
            atoms,
            bonds: Vec::new(),
        };
        for (a, b, order) in bonds {
            mol.add_bond(a, b, order)?;
        }
        Ok(mol)
    }

    /// Appends an atom, returning its index.
    pub fn add_atom(&mut self, element: Element) -> usize {
        self.atoms.push(element);
        self.atoms.len() - 1
    }

    /// Adds a bond between two distinct existing atoms.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::AtomOutOfRange`], [`ChemError::SelfBond`], or
    /// [`ChemError::DuplicateBond`].
    pub fn add_bond(&mut self, a: usize, b: usize, order: BondOrder) -> Result<()> {
        let n = self.atoms.len();
        for idx in [a, b] {
            if idx >= n {
                return Err(ChemError::AtomOutOfRange {
                    index: idx,
                    n_atoms: n,
                });
            }
        }
        if a == b {
            return Err(ChemError::SelfBond { index: a });
        }
        if self.bond_between(a, b).is_some() {
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            return Err(ChemError::DuplicateBond { a, b });
        }
        self.bonds.push(Bond::new(a, b, order));
        Ok(())
    }

    /// Number of heavy atoms.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of bonds.
    pub fn n_bonds(&self) -> usize {
        self.bonds.len()
    }

    /// Whether the molecule has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Element of atom `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn element(&self, i: usize) -> Element {
        self.atoms[i]
    }

    /// All atoms.
    pub fn atoms(&self) -> &[Element] {
        &self.atoms
    }

    /// All bonds.
    pub fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    /// The bond between `a` and `b`, if any.
    pub fn bond_between(&self, a: usize, b: usize) -> Option<&Bond> {
        let key = Bond::new(a, b, BondOrder::Single);
        self.bonds.iter().find(|bd| bd.a == key.a && bd.b == key.b)
    }

    /// Neighbor atoms of `i` with the connecting bond order.
    pub fn neighbors(&self, i: usize) -> Vec<(usize, BondOrder)> {
        self.bonds
            .iter()
            .filter_map(|bd| bd.other(i).map(|o| (o, bd.order)))
            .collect()
    }

    /// Number of heavy-atom neighbors of `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.bonds.iter().filter(|bd| bd.other(i).is_some()).count()
    }

    /// Sum of bond-order valence contributions at atom `i` (aromatic = 1.5).
    pub fn explicit_valence(&self, i: usize) -> f64 {
        self.bonds
            .iter()
            .filter(|bd| bd.other(i).is_some())
            .map(|bd| bd.order.valence_contribution())
            .sum()
    }

    /// Implicit hydrogens at atom `i`: the element's default valence minus
    /// the explicit valence (clamped at 0, aromatic halves rounded down as
    /// in RDKit's Kekulé-free accounting).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn implicit_hydrogens(&self, i: usize) -> u8 {
        let explicit = self.explicit_valence(i);
        let slots = self.atoms[i].default_valence() as f64 - explicit;
        if slots <= 0.0 {
            0
        } else {
            slots.floor() as u8
        }
    }

    /// Total hydrogen count over the whole molecule.
    pub fn total_hydrogens(&self) -> u32 {
        (0..self.n_atoms())
            .map(|i| self.implicit_hydrogens(i) as u32)
            .sum()
    }

    /// Whether every atom is reachable from atom 0 (empty molecules count as
    /// disconnected).
    pub fn is_connected(&self) -> bool {
        if self.atoms.is_empty() {
            return false;
        }
        self.connected_components().len() == 1
    }

    /// Connected components as lists of atom indices (each sorted).
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.atoms.len();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for (v, _) in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            components.push(comp);
        }
        components
    }

    /// The induced subgraph on `keep` (indices remapped in sorted order).
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::AtomOutOfRange`] for invalid indices.
    pub fn subgraph(&self, keep: &[usize]) -> Result<Molecule> {
        let n = self.atoms.len();
        let mut sorted: Vec<usize> = keep.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut remap = vec![usize::MAX; n];
        let mut atoms = Vec::with_capacity(sorted.len());
        for (new_idx, &old) in sorted.iter().enumerate() {
            if old >= n {
                return Err(ChemError::AtomOutOfRange {
                    index: old,
                    n_atoms: n,
                });
            }
            remap[old] = new_idx;
            atoms.push(self.atoms[old]);
        }
        let mut out = Molecule {
            atoms,
            bonds: Vec::new(),
        };
        for bd in &self.bonds {
            if remap[bd.a] != usize::MAX && remap[bd.b] != usize::MAX {
                out.bonds
                    .push(Bond::new(remap[bd.a], remap[bd.b], bd.order));
            }
        }
        Ok(out)
    }

    /// The largest connected component (ties broken by lowest first index).
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::EmptyMolecule`] for an empty molecule.
    pub fn largest_fragment(&self) -> Result<Molecule> {
        let comps = self.connected_components();
        let best = comps
            .iter()
            .max_by_key(|c| c.len())
            .ok_or(ChemError::EmptyMolecule)?;
        self.subgraph(best)
    }

    /// Molecular formula like `C2H6O` (Hill order: C, H, then alphabetical).
    pub fn formula(&self) -> String {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<&str, u32> = BTreeMap::new();
        for &a in &self.atoms {
            *counts.entry(a.symbol()).or_insert(0) += 1;
        }
        let h = self.total_hydrogens();
        let mut out = String::new();
        let mut push = |sym: &str, n: u32| {
            if n == 1 {
                out.push_str(sym);
            } else if n > 1 {
                out.push_str(sym);
                out.push_str(&n.to_string());
            }
        };
        if let Some(&c) = counts.get("C") {
            push("C", c);
            counts.remove("C");
        }
        push("H", h);
        for (sym, n) in counts {
            push(sym, n);
        }
        out
    }

    /// Count of atoms of a given element.
    pub fn count_element(&self, e: Element) -> usize {
        self.atoms.iter().filter(|&&a| a == e).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Benzene as six aromatic-bonded carbons.
    pub(crate) fn benzene() -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic).unwrap();
        }
        m
    }

    #[test]
    fn bond_normalizes_endpoints() {
        let b = Bond::new(5, 2, BondOrder::Double);
        assert_eq!((b.a, b.b), (2, 5));
        assert_eq!(b.other(2), Some(5));
        assert_eq!(b.other(5), Some(2));
        assert_eq!(b.other(3), None);
    }

    #[test]
    fn add_bond_validations() {
        let mut m = Molecule::new();
        let a = m.add_atom(Element::C);
        let b = m.add_atom(Element::C);
        assert!(m.add_bond(a, 7, BondOrder::Single).is_err());
        assert!(m.add_bond(a, a, BondOrder::Single).is_err());
        m.add_bond(a, b, BondOrder::Single).unwrap();
        assert_eq!(
            m.add_bond(b, a, BondOrder::Double).unwrap_err(),
            ChemError::DuplicateBond { a: 0, b: 1 }
        );
    }

    #[test]
    fn implicit_hydrogens_methane_family() {
        let mut m = Molecule::new();
        let c = m.add_atom(Element::C);
        assert_eq!(m.implicit_hydrogens(c), 4); // methane
        let o = m.add_atom(Element::O);
        m.add_bond(c, o, BondOrder::Double).unwrap();
        assert_eq!(m.implicit_hydrogens(c), 2); // formaldehyde CH2=O
        assert_eq!(m.implicit_hydrogens(o), 0);
        assert_eq!(m.formula(), "CH2O");
    }

    #[test]
    fn aromatic_carbon_in_benzene_has_one_hydrogen() {
        let m = benzene();
        for i in 0..6 {
            assert_eq!(m.explicit_valence(i), 3.0);
            assert_eq!(m.implicit_hydrogens(i), 1);
        }
        assert_eq!(m.formula(), "C6H6");
    }

    #[test]
    fn connectivity_and_components() {
        let mut m = Molecule::new();
        let a = m.add_atom(Element::C);
        let b = m.add_atom(Element::C);
        let c = m.add_atom(Element::O);
        m.add_bond(a, b, BondOrder::Single).unwrap();
        assert!(!m.is_connected());
        let comps = m.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
        m.add_bond(b, c, BondOrder::Single).unwrap();
        assert!(m.is_connected());
        assert!(!Molecule::new().is_connected());
    }

    #[test]
    fn largest_fragment_extracts_biggest_piece() {
        let mut m = Molecule::new();
        for _ in 0..3 {
            m.add_atom(Element::C);
        }
        m.add_atom(Element::O); // isolated
        m.add_bond(0, 1, BondOrder::Single).unwrap();
        m.add_bond(1, 2, BondOrder::Single).unwrap();
        let frag = m.largest_fragment().unwrap();
        assert_eq!(frag.n_atoms(), 3);
        assert_eq!(frag.n_bonds(), 2);
        assert!(frag.atoms().iter().all(|&e| e == Element::C));
        assert!(Molecule::new().largest_fragment().is_err());
    }

    #[test]
    fn subgraph_remaps_bonds() {
        let m = benzene();
        let sub = m.subgraph(&[1, 2, 3]).unwrap();
        assert_eq!(sub.n_atoms(), 3);
        assert_eq!(sub.n_bonds(), 2); // 1-2 and 2-3 survive
        assert!(m.subgraph(&[9]).is_err());
    }

    #[test]
    fn degree_and_neighbors() {
        let m = benzene();
        assert_eq!(m.degree(0), 2);
        let nb = m.neighbors(0);
        assert_eq!(nb.len(), 2);
        assert!(nb.iter().all(|&(_, o)| o == BondOrder::Aromatic));
    }

    #[test]
    fn formula_hill_order() {
        // Thiophene-like fragment: C4S ring.
        let mut m = Molecule::new();
        for _ in 0..4 {
            m.add_atom(Element::C);
        }
        let s = m.add_atom(Element::S);
        m.add_bond(0, 1, BondOrder::Aromatic).unwrap();
        m.add_bond(1, 2, BondOrder::Aromatic).unwrap();
        m.add_bond(2, 3, BondOrder::Aromatic).unwrap();
        m.add_bond(3, s, BondOrder::Aromatic).unwrap();
        m.add_bond(s, 0, BondOrder::Aromatic).unwrap();
        assert_eq!(m.formula(), "C4H4S");
    }

    #[test]
    fn count_element_works() {
        let m = benzene();
        assert_eq!(m.count_element(Element::C), 6);
        assert_eq!(m.count_element(Element::N), 0);
    }
}
