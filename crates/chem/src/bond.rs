//! Bond orders and their matrix codes.

use std::fmt;

/// A covalent bond order.
///
/// Off-diagonal matrix codes follow the paper's Fig. 3: 0-NONE, 1-SINGLE,
/// 2-DOUBLE, 4-AROMATIC. Code 3 (TRIPLE) exists in the underlying RDKit
/// encoding the paper inherits (QM9 contains nitriles/alkynes), so it is
/// supported here as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BondOrder {
    /// Single bond (code 1).
    Single,
    /// Double bond (code 2).
    Double,
    /// Triple bond (code 3).
    Triple,
    /// Aromatic bond (code 4).
    Aromatic,
}

impl BondOrder {
    /// All bond orders in code order.
    pub const ALL: [BondOrder; 4] = [
        BondOrder::Single,
        BondOrder::Double,
        BondOrder::Triple,
        BondOrder::Aromatic,
    ];

    /// The off-diagonal matrix code.
    pub fn matrix_code(self) -> u8 {
        match self {
            BondOrder::Single => 1,
            BondOrder::Double => 2,
            BondOrder::Triple => 3,
            BondOrder::Aromatic => 4,
        }
    }

    /// Decodes an off-diagonal code; `None` for 0 (no bond) or unknown codes.
    pub fn from_matrix_code(code: u8) -> Option<BondOrder> {
        match code {
            1 => Some(BondOrder::Single),
            2 => Some(BondOrder::Double),
            3 => Some(BondOrder::Triple),
            4 => Some(BondOrder::Aromatic),
            _ => None,
        }
    }

    /// Contribution to an atom's valence (aromatic counts 1.5, the Kekulé
    /// average).
    pub fn valence_contribution(self) -> f64 {
        match self {
            BondOrder::Single => 1.0,
            BondOrder::Double => 2.0,
            BondOrder::Triple => 3.0,
            BondOrder::Aromatic => 1.5,
        }
    }

    /// The SMILES bond symbol used by this crate's writer/parser.
    pub fn smiles_symbol(self) -> char {
        match self {
            BondOrder::Single => '-',
            BondOrder::Double => '=',
            BondOrder::Triple => '#',
            BondOrder::Aromatic => ':',
        }
    }

    /// Parses a SMILES bond symbol.
    pub fn from_smiles_symbol(c: char) -> Option<BondOrder> {
        match c {
            '-' => Some(BondOrder::Single),
            '=' => Some(BondOrder::Double),
            '#' => Some(BondOrder::Triple),
            ':' => Some(BondOrder::Aromatic),
            _ => None,
        }
    }
}

impl fmt::Display for BondOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BondOrder::Single => "single",
            BondOrder::Double => "double",
            BondOrder::Triple => "triple",
            BondOrder::Aromatic => "aromatic",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for b in BondOrder::ALL {
            assert_eq!(BondOrder::from_matrix_code(b.matrix_code()), Some(b));
        }
        assert_eq!(BondOrder::from_matrix_code(0), None);
        assert_eq!(BondOrder::from_matrix_code(5), None);
    }

    #[test]
    fn paper_codes() {
        // Fig. 3: 0-NONE, 1-SINGLE, 2-DOUBLE, 4-AROMATIC.
        assert_eq!(BondOrder::Single.matrix_code(), 1);
        assert_eq!(BondOrder::Double.matrix_code(), 2);
        assert_eq!(BondOrder::Aromatic.matrix_code(), 4);
    }

    #[test]
    fn valence_contributions() {
        assert_eq!(BondOrder::Single.valence_contribution(), 1.0);
        assert_eq!(BondOrder::Triple.valence_contribution(), 3.0);
        assert_eq!(BondOrder::Aromatic.valence_contribution(), 1.5);
    }

    #[test]
    fn smiles_symbols_round_trip() {
        for b in BondOrder::ALL {
            assert_eq!(BondOrder::from_smiles_symbol(b.smiles_symbol()), Some(b));
        }
        assert_eq!(BondOrder::from_smiles_symbol('x'), None);
    }
}
