//! Murcko scaffolds — the ring-systems-plus-linkers core of a molecule.
//!
//! Scaffold extraction is the standard way to ask whether a generative
//! model invents new *chemotypes* or merely decorates training scaffolds;
//! it complements the fingerprint-based novelty metric used alongside
//! Table II.

use crate::error::Result;
use crate::molecule::Molecule;
use crate::rings::perceive_rings;
use std::collections::VecDeque;

/// Extracts the Murcko scaffold: all ring atoms plus the shortest linkers
/// connecting ring systems; side chains are pruned. Returns `None` for
/// acyclic molecules (which have no scaffold).
///
/// # Errors
///
/// Propagates subgraph-construction errors (unreachable for valid inputs).
pub fn murcko_scaffold(mol: &Molecule) -> Result<Option<Molecule>> {
    let rings = perceive_rings(mol);
    if rings.rings.is_empty() {
        return Ok(None);
    }
    // Keep = ring atoms + atoms on shortest paths between distinct rings.
    let mut keep: Vec<bool> = rings.atom_in_ring.clone();
    for i in 0..rings.rings.len() {
        for j in (i + 1)..rings.rings.len() {
            if let Some(path) = shortest_path_between_sets(mol, &rings.rings[i], &rings.rings[j]) {
                for a in path {
                    keep[a] = true;
                }
            }
        }
    }
    let kept: Vec<usize> = (0..mol.n_atoms()).filter(|&i| keep[i]).collect();
    let sub = mol.subgraph(&kept)?;
    // The scaffold is the largest connected piece of the kept sub-graph
    // (disconnected ring systems without a kept linker fall back to the
    // biggest one).
    Ok(Some(sub.largest_fragment()?))
}

/// BFS shortest path from any atom of `from` to any atom of `to`.
fn shortest_path_between_sets(mol: &Molecule, from: &[usize], to: &[usize]) -> Option<Vec<usize>> {
    let n = mol.n_atoms();
    let mut prev = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for &s in from {
        seen[s] = true;
        queue.push_back(s);
    }
    while let Some(u) = queue.pop_front() {
        if to.binary_search(&u).is_ok() {
            let mut path = vec![u];
            let mut cur = u;
            while prev[cur] != usize::MAX {
                cur = prev[cur];
                path.push(cur);
            }
            return Some(path);
        }
        for (v, _) in mol.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                prev[v] = u;
                queue.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bond::BondOrder;
    use crate::element::Element;

    fn benzene_with_tail(tail: usize) -> Molecule {
        let mut m = Molecule::new();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(i, (i + 1) % 6, BondOrder::Aromatic).unwrap();
        }
        let mut prev = 0;
        for _ in 0..tail {
            let a = m.add_atom(Element::C);
            m.add_bond(prev, a, BondOrder::Single).unwrap();
            prev = a;
        }
        m
    }

    #[test]
    fn acyclic_molecule_has_no_scaffold() {
        let mut m = Molecule::new();
        let a = m.add_atom(Element::C);
        let b = m.add_atom(Element::C);
        m.add_bond(a, b, BondOrder::Single).unwrap();
        assert_eq!(murcko_scaffold(&m).unwrap(), None);
    }

    #[test]
    fn side_chains_are_pruned() {
        let m = benzene_with_tail(3);
        let s = murcko_scaffold(&m).unwrap().unwrap();
        assert_eq!(s.n_atoms(), 6, "tail removed");
        assert_eq!(s.formula(), "C6H6");
    }

    #[test]
    fn linker_between_two_rings_is_kept() {
        // Biphenyl-with-ethylene-bridge: ring — C — C — ring.
        let mut m = benzene_with_tail(2);
        let bridge_end = m.n_atoms() - 1;
        let ring2_start = m.n_atoms();
        for _ in 0..6 {
            m.add_atom(Element::C);
        }
        for i in 0..6 {
            m.add_bond(
                ring2_start + i,
                ring2_start + (i + 1) % 6,
                BondOrder::Aromatic,
            )
            .unwrap();
        }
        m.add_bond(bridge_end, ring2_start, BondOrder::Single)
            .unwrap();
        // A decoy side chain off the bridge.
        let decoy = m.add_atom(Element::O);
        m.add_bond(bridge_end, decoy, BondOrder::Single).unwrap();

        let s = murcko_scaffold(&m).unwrap().unwrap();
        assert_eq!(s.n_atoms(), 14, "two rings + two linker carbons, no decoy");
        assert_eq!(s.count_element(Element::O), 0);
        assert!(s.is_connected());
    }

    #[test]
    fn pure_ring_is_its_own_scaffold() {
        let m = benzene_with_tail(0);
        let s = murcko_scaffold(&m).unwrap().unwrap();
        assert_eq!(s.formula(), m.formula());
    }
}
