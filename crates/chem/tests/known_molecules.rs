//! Descriptor checks against well-known molecules, built via SMILES.

use sqvae_chem::properties::basic::{hb_acceptors, hb_donors, molecular_weight, tpsa};
use sqvae_chem::properties::logp::log_p;
use sqvae_chem::properties::qed::qed;
use sqvae_chem::properties::sa::sa_score;
use sqvae_chem::properties::DrugProperties;
use sqvae_chem::rings::{perceive_rings, ring_count};
use sqvae_chem::{smiles, valence, Element};

#[test]
fn benzene() {
    let m = smiles::parse("C:1:C:C:C:C:C1").unwrap();
    assert_eq!(m.formula(), "C6H6");
    assert!((molecular_weight(&m) - 78.11).abs() < 0.1);
    assert_eq!(ring_count(&m), 1);
    let rings = perceive_rings(&m);
    assert_eq!(rings.n_aromatic_rings(&m), 1);
    assert_eq!(tpsa(&m), 0.0);
    assert_eq!(hb_acceptors(&m), 0);
    assert!(log_p(&m) > 1.0 && log_p(&m) < 3.5, "benzene logP ≈ 2.1");
}

#[test]
fn pyridine() {
    let m = smiles::parse("C:1:C:C:N:C:C1").unwrap();
    assert_eq!(m.formula(), "C5H5N");
    // Aromatic N with no H: Ertl contribution 12.89.
    assert!((tpsa(&m) - 12.89).abs() < 1e-9);
    assert_eq!(hb_acceptors(&m), 1);
    assert_eq!(hb_donors(&m), 0);
    assert!(log_p(&m) < log_p(&smiles::parse("C:1:C:C:C:C:C1").unwrap()));
}

#[test]
fn ethanol_vs_dimethyl_ether() {
    let ethanol = smiles::parse("CCO").unwrap();
    let ether = smiles::parse("COC").unwrap();
    assert_eq!(ethanol.formula(), "C2H6O");
    assert_eq!(ether.formula(), "C2H6O");
    // Same formula, different donors and polar areas.
    assert_eq!(hb_donors(&ethanol), 1);
    assert_eq!(hb_donors(&ether), 0);
    assert!(tpsa(&ethanol) > tpsa(&ether));
}

#[test]
fn acetic_acid() {
    let m = smiles::parse("CC(=O)O").unwrap();
    assert_eq!(m.formula(), "C2H4O2");
    assert!((molecular_weight(&m) - 60.05).abs() < 0.1);
    // Carbonyl (17.07) + hydroxyl (20.23).
    assert!((tpsa(&m) - 37.30).abs() < 1e-9);
    assert_eq!(hb_acceptors(&m), 2);
    assert_eq!(hb_donors(&m), 1);
    assert!(log_p(&m) < 1.0, "acetic acid is hydrophilic");
}

#[test]
fn acetonitrile_triple_bond() {
    let m = smiles::parse("CC#N").unwrap();
    assert_eq!(m.formula(), "C2H3N");
    assert!(valence::valences_ok(&m));
    assert_eq!(m.implicit_hydrogens(2), 0); // nitrile N
}

#[test]
fn thiophene_ring() {
    let m = smiles::parse("C:1:C:C:C:S1").unwrap();
    assert_eq!(m.formula(), "C4H4S");
    assert!(valence::valences_ok(&m));
    let rings = perceive_rings(&m);
    assert_eq!(rings.n_rings(), 1);
    assert_eq!(rings.rings[0].len(), 5);
    // Aromatic S contributes 28.24 to TPSA.
    assert!((tpsa(&m) - 28.24).abs() < 1e-9);
}

#[test]
fn qed_prefers_druglike_over_extremes() {
    let methane = smiles::parse("C").unwrap();
    let eicosane = smiles::parse("CCCCCCCCCCCCCCCCCCCC").unwrap();
    // Toluamide-like: aromatic ring + amide.
    let druglike = smiles::parse("C:1:C:C:C(:C:C1)C(=O)N").unwrap();
    let q_drug = qed(&druglike);
    assert!(q_drug > qed(&methane));
    assert!(q_drug > qed(&eicosane));
}

#[test]
fn sa_orders_simple_before_complex() {
    let ethane = smiles::parse("CC").unwrap();
    // Spiro-ish dense tricyclic with heteroatoms.
    let complex = smiles::parse("C12C3C1C2OC3(N)SF").unwrap_or_else(|_| {
        // Fall back to a fused carbocycle if the exotic SMILES fails.
        smiles::parse("C1CC2CCC1C2").unwrap()
    });
    assert!(sa_score(&ethane) < sa_score(&complex));
}

#[test]
fn full_property_struct_on_aspirin_like() {
    let m = smiles::parse("CC(=O)OC:1:C:C:C:C:C1C(=O)O").unwrap();
    assert!(valence::valences_ok(&m));
    assert_eq!(m.count_element(Element::O), 4);
    let p = DrugProperties::compute(&m);
    assert!(
        p.qed > 0.2,
        "aspirin-like scaffold should be reasonably druglike"
    );
    assert!(p.logp > 0.2 && p.logp < 0.9);
    assert!(p.sa > 0.4, "aspirin is easy to make");
}

#[test]
fn percent_ring_closure_syntax() {
    // %10 two-digit closure with an explicit aromatic bond.
    let m = smiles::parse("C:%10:C:C:C:C:C%10").unwrap();
    assert_eq!(m.formula(), "C6H6");
    assert_eq!(ring_count(&m), 1);
}

#[test]
fn nan_matrix_values_decode_to_empty_slots() {
    // Failure injection: non-finite model outputs must not panic.
    let mut values = vec![f64::NAN; 16];
    values[0] = 1.0; // one carbon survives
    let m = sqvae_chem::MoleculeMatrix::from_values(4, values).unwrap();
    let decoded = m.decode();
    assert_eq!(decoded.n_atoms(), 1);
    assert_eq!(decoded.n_bonds(), 0);
}

#[test]
fn infinite_matrix_values_clamp() {
    let mut values = vec![0.0; 16];
    values[0] = f64::INFINITY; // clamps to the sulfur code
    values[5] = f64::NEG_INFINITY; // clamps to empty
    let m = sqvae_chem::MoleculeMatrix::from_values(4, values).unwrap();
    let decoded = m.decode();
    assert_eq!(decoded.n_atoms(), 1);
    assert_eq!(decoded.element(0), Element::S);
}
