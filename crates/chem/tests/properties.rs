//! Property-based invariants of the cheminformatics substrate.

use proptest::prelude::*;
use sqvae_chem::properties::DrugProperties;
use sqvae_chem::{sanitize, smiles, valence, BondOrder, Element, Molecule, MoleculeMatrix};

/// Strategy: a random *valid* molecule built by attachment growth — each new
/// atom bonds to a previous atom that still has valence room.
fn arb_valid_molecule() -> impl Strategy<Value = Molecule> {
    (
        proptest::collection::vec(0u8..5, 1..12),
        proptest::collection::vec(0usize..64, 12),
        proptest::collection::vec(0u8..3, 12),
    )
        .prop_map(|(elements, attach, orders)| {
            let mut mol = Molecule::new();
            for (i, &ecode) in elements.iter().enumerate() {
                let e = Element::ALL[ecode as usize % 5];
                let idx = mol.add_atom(e);
                if idx == 0 {
                    continue;
                }
                // Pick an attachment point with room for one more single bond.
                let candidates: Vec<usize> = (0..idx)
                    .filter(|&j| {
                        mol.explicit_valence(j) + 1.0 <= mol.element(j).max_valence() as f64
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let target = candidates[attach[i] % candidates.len()];
                let order = match orders[i] {
                    0 => BondOrder::Single,
                    1 if mol.element(target).max_valence() as f64
                        - mol.explicit_valence(target)
                        >= 2.0
                        && e.max_valence() >= 2 =>
                    {
                        BondOrder::Double
                    }
                    _ => BondOrder::Single,
                };
                mol.add_bond(idx, target, order).expect("fresh bond");
            }
            mol.largest_fragment().expect("non-empty")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated molecules pass the validity model.
    #[test]
    fn grown_molecules_are_valid(mol in arb_valid_molecule()) {
        prop_assert!(valence::is_valid(&mol));
    }

    /// Matrix encode/decode is lossless for valid molecules.
    #[test]
    fn matrix_codec_round_trips(mol in arb_valid_molecule()) {
        let m = MoleculeMatrix::encode(&mol, 16).unwrap();
        let back = m.decode();
        prop_assert_eq!(back.n_atoms(), mol.n_atoms());
        prop_assert_eq!(back.n_bonds(), mol.n_bonds());
        prop_assert_eq!(back.formula(), mol.formula());
    }

    /// SMILES write→parse preserves graph invariants.
    #[test]
    fn smiles_round_trips(mol in arb_valid_molecule()) {
        let s = smiles::write(&mol).unwrap();
        let back = smiles::parse(&s).unwrap();
        prop_assert_eq!(back.n_atoms(), mol.n_atoms());
        prop_assert_eq!(back.n_bonds(), mol.n_bonds());
        prop_assert_eq!(back.formula(), mol.formula());
        let mut deg_a: Vec<usize> = (0..mol.n_atoms()).map(|i| mol.degree(i)).collect();
        let mut deg_b: Vec<usize> = (0..back.n_atoms()).map(|i| back.degree(i)).collect();
        deg_a.sort_unstable();
        deg_b.sort_unstable();
        prop_assert_eq!(deg_a, deg_b);
    }

    /// SMILES parse→write→parse is *stable*: after one write→parse round
    /// trip the representation reaches a fixed point — re-writing the parsed
    /// molecule reproduces the same string, and re-parsing that string
    /// preserves every graph invariant.
    #[test]
    fn smiles_parse_write_parse_is_stable(mol in arb_valid_molecule()) {
        let s1 = smiles::write(&mol).unwrap();
        let m1 = smiles::parse(&s1).unwrap();
        let s2 = smiles::write(&m1).unwrap();
        let m2 = smiles::parse(&s2).unwrap();
        // The string representation is idempotent after one round trip…
        prop_assert_eq!(&smiles::write(&m2).unwrap(), &s2, "from {}", s1);
        // …and the graph invariants survive the second trip too.
        prop_assert_eq!(m2.formula(), m1.formula());
        prop_assert_eq!(m2.n_atoms(), m1.n_atoms());
        prop_assert_eq!(m2.n_bonds(), m1.n_bonds());
        let orders = |m: &Molecule| {
            let mut o: Vec<char> =
                m.bonds().iter().map(|b| b.order.smiles_symbol()).collect();
            o.sort_unstable();
            o
        };
        prop_assert_eq!(orders(&m2), orders(&m1));
    }

    /// Property metrics stay in their documented ranges.
    #[test]
    fn metric_ranges(mol in arb_valid_molecule()) {
        let p = DrugProperties::compute(&mol);
        prop_assert!(p.qed > 0.0 && p.qed <= 1.0, "qed {}", p.qed);
        prop_assert!((0.0..=1.0).contains(&p.logp), "logp {}", p.logp);
        prop_assert!((0.0..=1.0).contains(&p.sa), "sa {}", p.sa);
        prop_assert!((1.0..=10.0).contains(&p.sa_raw));
    }

    /// Sanitizing an already-valid molecule changes nothing.
    #[test]
    fn sanitize_is_identity_on_valid(mol in arb_valid_molecule()) {
        let s = sanitize::sanitize(&mol).unwrap();
        prop_assert!(s.was_valid);
        prop_assert_eq!(s.molecule.n_atoms(), mol.n_atoms());
        prop_assert_eq!(s.molecule.n_bonds(), mol.n_bonds());
    }

    /// Sanitizing arbitrary decoded garbage always yields a valence-clean,
    /// connected molecule.
    #[test]
    fn sanitize_repairs_random_matrices(
        values in proptest::collection::vec(0.0..5.5f64, 64),
    ) {
        let m = MoleculeMatrix::from_values(8, values).unwrap();
        let decoded = m.decode();
        if decoded.is_empty() {
            return Ok(());
        }
        let s = sanitize::sanitize(&decoded).unwrap();
        prop_assert!(valence::valences_ok(&s.molecule));
        prop_assert!(s.molecule.is_connected());
    }
}
