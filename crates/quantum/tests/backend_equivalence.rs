//! Backend equivalence: every optimized backend (fused kernels,
//! structure-of-arrays SIMD) must reproduce the dense reference backend —
//! forward states, measurements, and adjoint gradients — to ≤ 1e-12 on
//! randomized circuits, and be fully deterministic for a fixed selection.

use proptest::prelude::*;
use sqvae_quantum::backend::{Backend, DenseBackend, FusedDenseBackend, SoaDenseBackend};
use sqvae_quantum::embed::{amplitude_embedding, angle_embedding_gates, RotationAxis};
use sqvae_quantum::grad::{adjoint, paramshift};
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::{Circuit, Gate, Param};

const TOL: f64 = 1e-12;

/// Strategy: a random gate over `n` wires referencing at most `np` trainable
/// parameters and `ni` input features, spanning every gate kind the
/// optimized backends specialize (single-qubit runs, CNOTs, controlled
/// rotations).
fn arb_gate(n: usize, np: usize, ni: usize) -> impl Strategy<Value = Gate> {
    let wire = 0..n;
    let wire2 = 0..n;
    let param = prop_oneof![
        (-3.0..3.0f64).prop_map(Param::Fixed),
        (0..np).prop_map(Param::Train),
        (0..ni).prop_map(Param::Input),
    ];
    (wire, wire2, param, 0..12u8).prop_map(move |(w, w2, p, kind)| {
        let w2 = if w2 == w { (w + 1) % n } else { w2 };
        match kind {
            0 => Gate::Hadamard(w),
            1 => Gate::RX(w, p),
            2 => Gate::RY(w, p),
            3 => Gate::RZ(w, p),
            4 => Gate::PauliX(w),
            5 => Gate::S(w),
            6 => Gate::T(w),
            7 if n > 1 => Gate::CNOT(w, w2),
            8 if n > 1 => Gate::CRZ(w, w2, p),
            9 if n > 1 => Gate::CRY(w, w2, p),
            10 if n > 1 => Gate::CZ(w, w2),
            11 if n > 1 => Gate::SWAP(w, w2),
            _ => Gate::RY(w, p),
        }
    })
}

fn build_circuit(n: usize, gates: Vec<Gate>) -> Circuit {
    let mut c = Circuit::new(n).expect("valid register");
    for g in gates {
        c.push(g).expect("valid gate");
    }
    c
}

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what} length");
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() <= TOL, "{what}: {x} vs {y}");
    }
}

/// Forward execution on `B` reproduces the dense amplitudes, per-wire
/// expectations, and probabilities.
fn check_forward_matches_dense<B: Backend>(c: &Circuit, params: &[f64], inputs: &[f64]) {
    let dense: DenseBackend = c.run_on(params, inputs, None).unwrap();
    let other: B = c.run_on(params, inputs, None).unwrap();
    let other_sv = other.to_statevector();
    for (a, b) in dense.amplitudes().iter().zip(other_sv.amplitudes()) {
        assert!(a.approx_eq(*b, TOL), "{} amplitude {a} vs {b}", B::NAME);
    }
    assert_close(
        &c.expectations_z_all(&dense).unwrap(),
        &c.expectations_z_all(&other).unwrap(),
        &format!("{} expectations", B::NAME),
    );
    assert_close(
        &Backend::probabilities(&dense),
        &other.probabilities(),
        &format!("{} probabilities", B::NAME),
    );
    // The reuse-buffer readout is the same numbers as the allocating one.
    let mut reused = Vec::new();
    other.probabilities_into(&mut reused);
    assert_eq!(reused, other.probabilities(), "{} readout", B::NAME);
}

/// Adjoint gradients (parameters AND inputs) on `B` reproduce the dense
/// ones for the ⟨Z⟩ readout.
fn check_adjoint_matches_dense_expectations<B: Backend>(
    c: &Circuit,
    params: &[f64],
    inputs: &[f64],
    upstream: &[f64],
) {
    let dense =
        adjoint::backward_expectations_z_on::<DenseBackend>(c, params, inputs, None, upstream)
            .unwrap();
    let other =
        adjoint::backward_expectations_z_on::<B>(c, params, inputs, None, upstream).unwrap();
    assert_close(
        &dense.params,
        &other.params,
        &format!("{} param gradients", B::NAME),
    );
    assert_close(
        &dense.inputs,
        &other.inputs,
        &format!("{} input gradients", B::NAME),
    );
}

/// Same for the probability readout (the baseline decoder's measurement).
fn check_adjoint_matches_dense_probabilities<B: Backend>(
    c: &Circuit,
    params: &[f64],
    inputs: &[f64],
    upstream: &[f64],
) {
    let dense =
        adjoint::backward_probabilities_on::<DenseBackend>(c, params, inputs, None, upstream)
            .unwrap();
    let other = adjoint::backward_probabilities_on::<B>(c, params, inputs, None, upstream).unwrap();
    assert_close(
        &dense.params,
        &other.params,
        &format!("{} param gradients", B::NAME),
    );
    assert_close(
        &dense.inputs,
        &other.inputs,
        &format!("{} input gradients", B::NAME),
    );
}

/// Parameter-shift Jacobians executed on `B` agree with the dense ones.
fn check_paramshift_matches_dense<B: Backend>(c: &Circuit, params: &[f64], inputs: &[f64]) {
    let (dp, di) =
        paramshift::jacobian_expectations_z_on::<DenseBackend>(c, params, inputs, None).unwrap();
    let (op, oi) = paramshift::jacobian_expectations_z_on::<B>(c, params, inputs, None).unwrap();
    for (a, b) in dp.iter().flatten().zip(op.iter().flatten()) {
        assert!((a - b).abs() <= TOL, "{} param jac {a} vs {b}", B::NAME);
    }
    for (a, b) in di.iter().flatten().zip(oi.iter().flatten()) {
        assert!((a - b).abs() <= TOL, "{} input jac {a} vs {b}", B::NAME);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused and SoA forward execution reproduce the dense amplitudes,
    /// per-wire expectations, and probabilities.
    #[test]
    fn optimized_forward_matches_dense(
        gates in proptest::collection::vec(arb_gate(3, 4, 2), 1..32),
        params in proptest::collection::vec(-3.0..3.0f64, 4),
        inputs in proptest::collection::vec(-2.0..2.0f64, 2),
    ) {
        let c = build_circuit(3, gates);
        check_forward_matches_dense::<FusedDenseBackend>(&c, &params, &inputs);
        check_forward_matches_dense::<SoaDenseBackend>(&c, &params, &inputs);
    }

    /// Fused and SoA adjoint gradients (parameters AND inputs) reproduce
    /// the dense ones for the ⟨Z⟩ readout.
    #[test]
    fn optimized_adjoint_matches_dense_expectations(
        gates in proptest::collection::vec(arb_gate(3, 4, 2), 1..24),
        params in proptest::collection::vec(-3.0..3.0f64, 4),
        inputs in proptest::collection::vec(-2.0..2.0f64, 2),
        upstream in proptest::collection::vec(-1.5..1.5f64, 3),
    ) {
        let c = build_circuit(3, gates);
        check_adjoint_matches_dense_expectations::<FusedDenseBackend>(&c, &params, &inputs, &upstream);
        check_adjoint_matches_dense_expectations::<SoaDenseBackend>(&c, &params, &inputs, &upstream);
    }

    /// Same for the probability readout (the baseline decoder's measurement).
    #[test]
    fn optimized_adjoint_matches_dense_probabilities(
        gates in proptest::collection::vec(arb_gate(2, 3, 1), 1..20),
        params in proptest::collection::vec(-3.0..3.0f64, 3),
        inputs in proptest::collection::vec(-2.0..2.0f64, 1),
        upstream in proptest::collection::vec(-1.0..1.0f64, 4),
    ) {
        let c = build_circuit(2, gates);
        check_adjoint_matches_dense_probabilities::<FusedDenseBackend>(&c, &params, &inputs, &upstream);
        check_adjoint_matches_dense_probabilities::<SoaDenseBackend>(&c, &params, &inputs, &upstream);
    }

    /// Parameter-shift Jacobians executed on the optimized backends agree
    /// with the dense ones.
    #[test]
    fn optimized_paramshift_matches_dense(
        gates in proptest::collection::vec(arb_gate(2, 3, 1), 1..12),
        params in proptest::collection::vec(-3.0..3.0f64, 3),
        inputs in proptest::collection::vec(-2.0..2.0f64, 1),
    ) {
        let c = build_circuit(2, gates);
        check_paramshift_matches_dense::<FusedDenseBackend>(&c, &params, &inputs);
        check_paramshift_matches_dense::<SoaDenseBackend>(&c, &params, &inputs);
    }
}

/// The paper's baseline encoder circuit — angle embedding plus 3
/// strongly-entangling layers on 6 qubits — is exactly the shape the
/// optimized backends specialize (RZ·RY·RZ runs + CNOT ring); pin its
/// equivalence on all of them.
#[test]
fn paper_template_matches_on_all_backends() {
    let n = 6;
    let mut c = Circuit::new(n).unwrap();
    c.extend(angle_embedding_gates(n, RotationAxis::Y, 0))
        .unwrap();
    c.extend(strongly_entangling_layers(n, 3, 0, EntangleRange::Ring).unwrap())
        .unwrap();
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.05 * i as f64 - 1.2).collect();
    let inputs: Vec<f64> = (0..n).map(|i| 0.3 * i as f64 - 0.8).collect();
    let upstream: Vec<f64> = (0..n).map(|i| 1.0 - 0.4 * i as f64).collect();

    check_forward_matches_dense::<FusedDenseBackend>(&c, &params, &inputs);
    check_forward_matches_dense::<SoaDenseBackend>(&c, &params, &inputs);
    check_adjoint_matches_dense_expectations::<FusedDenseBackend>(&c, &params, &inputs, &upstream);
    check_adjoint_matches_dense_expectations::<SoaDenseBackend>(&c, &params, &inputs, &upstream);
}

/// Amplitude-embedded initial states flow through the optimized backends
/// too.
#[test]
fn amplitude_embedded_initial_matches() {
    fn check<B: Backend>() {
        let mut c = Circuit::new(2).unwrap();
        c.extend(strongly_entangling_layers(2, 2, 0, EntangleRange::Ring).unwrap())
            .unwrap();
        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.09 * (i + 1) as f64).collect();
        let init = amplitude_embedding(&[0.1, 0.5, 0.3, 0.7], 2).unwrap();

        let dense = c.run(&params, &[], Some(&init)).unwrap();
        let other: B = c
            .run_on(&params, &[], Some(&B::from_statevector(init.clone())))
            .unwrap();
        let other_sv = other.to_statevector();
        for (a, b) in dense.amplitudes().iter().zip(other_sv.amplitudes()) {
            assert!(a.approx_eq(*b, TOL), "{}: {a} vs {b}", B::NAME);
        }

        let gd =
            adjoint::backward_expectations_z(&c, &params, &[], Some(&init), &[1.0, -0.5]).unwrap();
        let gf = adjoint::backward_expectations_z_on(
            &c,
            &params,
            &[],
            Some(&B::from_statevector(init)),
            &[1.0, -0.5],
        )
        .unwrap();
        assert_close(&gd.params, &gf.params, "embedded-initial grads");
    }
    check::<FusedDenseBackend>();
    check::<SoaDenseBackend>();
}

/// A fixed backend selection is fully deterministic: two executions produce
/// bit-identical amplitudes.
#[test]
fn optimized_backends_are_deterministic() {
    let mut c = Circuit::new(4).unwrap();
    c.extend(strongly_entangling_layers(4, 3, 0, EntangleRange::PennyLane).unwrap())
        .unwrap();
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.11 * i as f64 - 1.7).collect();
    let a: FusedDenseBackend = c.run_on(&params, &[], None).unwrap();
    let b: FusedDenseBackend = c.run_on(&params, &[], None).unwrap();
    assert_eq!(a, b);
    let a: SoaDenseBackend = c.run_on(&params, &[], None).unwrap();
    let b: SoaDenseBackend = c.run_on(&params, &[], None).unwrap();
    assert_eq!(a, b);
}

/// Mismatched embedded initial states are a typed error on every backend and
/// every executor (run, parameter shift), not a panic or silent misread.
#[test]
fn mismatched_initial_is_a_typed_error_everywhere() {
    let mut c = Circuit::new(2).unwrap();
    c.ry(0, Param::Train(0)).unwrap();
    let wide = FusedDenseBackend::zero_state(3).unwrap();
    assert!(matches!(
        c.run_on(&[0.1], &[], Some(&wide)),
        Err(sqvae_quantum::QuantumError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        paramshift::jacobian_expectations_z_on(&c, &[0.1], &[], Some(&wide)),
        Err(sqvae_quantum::QuantumError::DimensionMismatch { .. })
    ));
    assert!(matches!(
        adjoint::backward_expectations_z_on(&c, &[0.1], &[], Some(&wide), &[1.0, 0.0]),
        Err(sqvae_quantum::QuantumError::DimensionMismatch { .. })
    ));
    let wide = SoaDenseBackend::zero_state(3).unwrap();
    assert!(matches!(
        c.run_on(&[0.1], &[], Some(&wide)),
        Err(sqvae_quantum::QuantumError::DimensionMismatch { .. })
    ));
}
