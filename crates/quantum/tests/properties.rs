//! Property-based invariants of the simulator and its gradient engines.

use proptest::prelude::*;
use sqvae_quantum::embed::{amplitude_embedding, angle_embedding_gates, RotationAxis};
use sqvae_quantum::grad::{adjoint, finite_diff, paramshift};
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::{Circuit, Gate, Param, StateVector};

/// Strategy: a random gate over `n` wires referencing at most `np` params.
fn arb_gate(n: usize, np: usize) -> impl Strategy<Value = Gate> {
    let wire = 0..n;
    let wire2 = 0..n;
    let param = prop_oneof![
        (-3.0..3.0f64).prop_map(Param::Fixed),
        (0..np).prop_map(Param::Train),
    ];
    (wire, wire2, param, 0..7u8).prop_map(move |(w, w2, p, kind)| {
        let w2 = if w2 == w { (w + 1) % n } else { w2 };
        match kind {
            0 => Gate::Hadamard(w),
            1 => Gate::RX(w, p),
            2 => Gate::RY(w, p),
            3 => Gate::RZ(w, p),
            4 => Gate::PauliX(w),
            5 if n > 1 => Gate::CNOT(w, w2),
            6 if n > 1 => Gate::CRZ(w, w2, p),
            _ => Gate::RY(w, p),
        }
    })
}

fn build_circuit(n: usize, gates: Vec<Gate>) -> Circuit {
    let mut c = Circuit::new(n).expect("valid register");
    for g in gates {
        c.push(g).expect("valid gate");
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any circuit of unitaries preserves the norm of the state.
    #[test]
    fn circuits_preserve_norm(
        gates in proptest::collection::vec(arb_gate(3, 4), 1..24),
        params in proptest::collection::vec(-3.0..3.0f64, 4),
    ) {
        let c = build_circuit(3, gates);
        let s = c.run(&params, &[], None).unwrap();
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    /// Probabilities are a distribution: non-negative, summing to 1.
    #[test]
    fn probabilities_form_distribution(
        gates in proptest::collection::vec(arb_gate(3, 4), 1..24),
        params in proptest::collection::vec(-3.0..3.0f64, 4),
    ) {
        let c = build_circuit(3, gates);
        let p = c.run_probabilities(&params, &[], None).unwrap();
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Z expectations are bounded in [-1, 1].
    #[test]
    fn expectations_bounded(
        gates in proptest::collection::vec(arb_gate(2, 3), 1..16),
        params in proptest::collection::vec(-3.0..3.0f64, 3),
    ) {
        let c = build_circuit(2, gates);
        for z in c.run_expectations_z(&params, &[], None).unwrap() {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&z));
        }
    }

    /// Adjoint and parameter-shift gradients agree on random circuits.
    #[test]
    fn adjoint_matches_paramshift(
        gates in proptest::collection::vec(arb_gate(2, 3), 1..12),
        params in proptest::collection::vec(-2.0..2.0f64, 3),
        upstream in proptest::collection::vec(-1.5..1.5f64, 2),
    ) {
        let c = build_circuit(2, gates);
        let adj = adjoint::backward_expectations_z(&c, &params, &[], None, &upstream).unwrap();
        let ps = paramshift::vjp_expectations_z(&c, &params, &[], None, &upstream).unwrap();
        for (a, b) in adj.params.iter().zip(&ps.params) {
            prop_assert!((a - b).abs() < 1e-8, "adjoint {} vs paramshift {}", a, b);
        }
    }

    /// Adjoint gradients agree with the central finite-difference oracle on
    /// random circuits and angles (the adjoint engine is the training path;
    /// finite differences are the model-free ground truth).
    #[test]
    fn adjoint_matches_finite_difference(
        gates in proptest::collection::vec(arb_gate(2, 3), 1..10),
        params in proptest::collection::vec(-2.0..2.0f64, 3),
        upstream in proptest::collection::vec(-1.0..1.0f64, 2),
    ) {
        let c = build_circuit(2, gates);
        let adj = adjoint::backward_expectations_z(&c, &params, &[], None, &upstream).unwrap();
        let measure = |s: &StateVector| {
            vec![s.expectation_z(0).unwrap(), s.expectation_z(1).unwrap()]
        };
        let jac = finite_diff::jacobian_params(
            &c, &params, &[], None, finite_diff::DEFAULT_EPS, measure,
        )
        .unwrap();
        for (k, row) in jac.iter().enumerate() {
            let fd: f64 = row.iter().zip(&upstream).map(|(j, u)| j * u).sum();
            prop_assert!(
                (adj.params[k] - fd).abs() < 1e-4,
                "param {}: adjoint {} vs finite diff {}",
                k, adj.params[k], fd
            );
        }
    }

    /// Adjoint *input* gradients (angle embeddings) also agree with the
    /// finite-difference oracle.
    #[test]
    fn adjoint_input_gradients_match_finite_difference(
        inputs in proptest::collection::vec(-1.5..1.5f64, 3),
        params in proptest::collection::vec(-2.0..2.0f64, 4),
        upstream in proptest::collection::vec(-1.0..1.0f64, 3),
    ) {
        let n = 3;
        let mut c = Circuit::new(n).unwrap();
        c.extend(angle_embedding_gates(n, RotationAxis::Y, 0)).unwrap();
        c.extend(strongly_entangling_layers(n, 1, 0, EntangleRange::Ring).unwrap())
            .unwrap();
        let params = &params[..c.n_params().min(params.len())];
        let params: Vec<f64> = params
            .iter()
            .copied()
            .chain(std::iter::repeat(0.5))
            .take(c.n_params())
            .collect();
        let adj = adjoint::backward_expectations_z(&c, &params, &inputs, None, &upstream).unwrap();
        let measure = |s: &StateVector| {
            (0..n).map(|w| s.expectation_z(w).unwrap()).collect::<Vec<_>>()
        };
        let jac = finite_diff::jacobian_inputs(
            &c, &params, &inputs, None, finite_diff::DEFAULT_EPS, measure,
        )
        .unwrap();
        for (k, row) in jac.iter().enumerate() {
            let fd: f64 = row.iter().zip(&upstream).map(|(j, u)| j * u).sum();
            prop_assert!(
                (adj.inputs[k] - fd).abs() < 1e-4,
                "input {}: adjoint {} vs finite diff {}",
                k, adj.inputs[k], fd
            );
        }
    }

    /// Amplitude embedding reproduces the normalized input exactly.
    #[test]
    fn amplitude_embedding_round_trip(
        features in proptest::collection::vec(0.01..1.0f64, 8),
    ) {
        let s = amplitude_embedding(&features, 3).unwrap();
        let norm: f64 = features.iter().map(|x| x * x).sum::<f64>().sqrt();
        for (j, &f) in features.iter().enumerate() {
            prop_assert!((s.amplitude(j).re - f / norm).abs() < 1e-12);
        }
    }

    /// Running a circuit twice with identical bindings is deterministic.
    #[test]
    fn execution_is_deterministic(
        gates in proptest::collection::vec(arb_gate(3, 4), 1..20),
        params in proptest::collection::vec(-3.0..3.0f64, 4),
    ) {
        let c = build_circuit(3, gates);
        let a = c.run(&params, &[], None).unwrap();
        let b = c.run(&params, &[], None).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Un-applying every gate in reverse restores the initial state.
    #[test]
    fn inverse_restores_initial_state(
        gates in proptest::collection::vec(arb_gate(3, 4), 1..20),
        params in proptest::collection::vec(-3.0..3.0f64, 4),
    ) {
        let c = build_circuit(3, gates);
        let mut s = c.run(&params, &[], None).unwrap();
        for g in c.ops().iter().rev() {
            let theta = g.param().map_or(0.0, |p| p.resolve(&params, &[]));
            g.apply_inverse(&mut s, theta).unwrap();
        }
        let init = StateVector::zero_state(3).unwrap();
        for (a, b) in s.amplitudes().iter().zip(init.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-9));
        }
    }
}

#[test]
fn entangling_template_gradients_cross_validate_with_embedding() {
    // The full encoder shape used by the paper: angle embedding + strongly
    // entangling layers, gradients w.r.t. both inputs and parameters.
    let n = 4;
    let mut c = Circuit::new(n).unwrap();
    c.extend(angle_embedding_gates(n, RotationAxis::Y, 0))
        .unwrap();
    c.extend(strongly_entangling_layers(n, 2, 0, EntangleRange::Ring).unwrap())
        .unwrap();
    let params: Vec<f64> = (0..c.n_params()).map(|i| (i as f64) * 0.1 - 1.0).collect();
    let inputs: Vec<f64> = (0..n).map(|i| 0.2 * (i as f64) + 0.1).collect();
    let upstream: Vec<f64> = (0..n).map(|i| 1.0 - 0.3 * i as f64).collect();

    let adj = adjoint::backward_expectations_z(&c, &params, &inputs, None, &upstream).unwrap();
    let ps = paramshift::vjp_expectations_z(&c, &params, &inputs, None, &upstream).unwrap();

    for (a, b) in adj.params.iter().zip(&ps.params) {
        assert!((a - b).abs() < 1e-9);
    }
    for (a, b) in adj.inputs.iter().zip(&ps.inputs) {
        assert!((a - b).abs() < 1e-9);
    }
    assert!(
        adj.params.iter().any(|g| g.abs() > 1e-6),
        "gradients should be non-trivial"
    );
}
