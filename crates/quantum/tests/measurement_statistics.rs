//! Measurement-layer checks against analytically known states, plus
//! unitarity properties of every gate matrix.

use proptest::prelude::*;
use sqvae_quantum::{
    hadamard, pauli_x, pauli_y, pauli_z, rx_matrix, ry_matrix, rz_matrix, Circuit, Gate, Param,
    StateVector, C64,
};

fn assert_unitary(m: &[[C64; 2]; 2]) {
    // M·M† = I.
    for r in 0..2 {
        for c in 0..2 {
            let mut s = C64::ZERO;
            for (a, b) in m[r].iter().zip(m[c].iter()) {
                s += *a * b.conj();
            }
            let expected = if r == c { C64::ONE } else { C64::ZERO };
            assert!(s.approx_eq(expected, 1e-12), "M·M†[{r}][{c}] = {s}");
        }
    }
}

#[test]
fn fixed_gate_matrices_are_unitary() {
    for m in [pauli_x(), pauli_y(), pauli_z(), hadamard()] {
        assert_unitary(&m);
    }
}

proptest! {
    #[test]
    fn rotation_matrices_are_unitary(theta in -10.0..10.0f64) {
        assert_unitary(&rx_matrix(theta));
        assert_unitary(&ry_matrix(theta));
        assert_unitary(&rz_matrix(theta));
    }

    /// ⟨Z⟩ of RY(θ)|0⟩ is exactly cos θ, and Var(Z) = sin²θ.
    #[test]
    fn ry_expectation_is_cosine(theta in -6.0..6.0f64) {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        let state = c.run(&[theta], &[], None).unwrap();
        let z = state.expectation_z(0).unwrap();
        prop_assert!((z - theta.cos()).abs() < 1e-12);
        let var = state.variance_z(0).unwrap();
        prop_assert!((var - theta.sin().powi(2)).abs() < 1e-12);
    }

    /// Probabilities of RY(θ)|0⟩ follow cos²/sin² of the half angle.
    #[test]
    fn ry_probabilities_are_half_angle_squares(theta in -6.0..6.0f64) {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        let p = c.run_probabilities(&[theta], &[], None).unwrap();
        prop_assert!((p[0] - (theta / 2.0).cos().powi(2)).abs() < 1e-12);
        prop_assert!((p[1] - (theta / 2.0).sin().powi(2)).abs() < 1e-12);
    }
}

#[test]
fn ghz_state_statistics() {
    // H(0), CNOT(0,1), CNOT(1,2) → (|000⟩ + |111⟩)/√2.
    let mut c = Circuit::new(3).unwrap();
    c.h(0).unwrap();
    c.cnot(0, 1).unwrap();
    c.cnot(1, 2).unwrap();
    let state = c.run(&[], &[], None).unwrap();
    let p = state.probabilities();
    assert!((p[0] - 0.5).abs() < 1e-12);
    assert!((p[7] - 0.5).abs() < 1e-12);
    for &q in &p[1..7] {
        assert!(q.abs() < 1e-12);
    }
    // Every single-qubit ⟨Z⟩ is zero, every variance is 1.
    for w in 0..3 {
        assert!(state.expectation_z(w).unwrap().abs() < 1e-12);
        assert!((state.variance_z(w).unwrap() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn cz_phase_is_basis_dependent() {
    // CZ flips the sign of |11⟩ only.
    for basis in 0..4usize {
        let mut s = StateVector::zero_state(2).unwrap();
        if basis & 0b10 != 0 {
            Gate::PauliX(0).apply(&mut s, 0.0).unwrap();
        }
        if basis & 0b01 != 0 {
            Gate::PauliX(1).apply(&mut s, 0.0).unwrap();
        }
        Gate::CZ(0, 1).apply(&mut s, 0.0).unwrap();
        let expected = if basis == 0b11 { -C64::ONE } else { C64::ONE };
        assert!(
            s.amplitude(basis).approx_eq(expected, 1e-12),
            "basis {basis:02b}"
        );
    }
}

#[test]
fn global_phase_does_not_change_measurements() {
    // RZ on |0⟩ is a pure phase: probabilities and ⟨Z⟩ unchanged.
    let mut c = Circuit::new(2).unwrap();
    c.h(0).unwrap();
    c.cnot(0, 1).unwrap();
    let before = c.run(&[], &[], None).unwrap();
    let mut c2 = Circuit::new(2).unwrap();
    c2.h(0).unwrap();
    c2.cnot(0, 1).unwrap();
    c2.rz(0, Param::Fixed(1.23)).unwrap();
    c2.rz(1, Param::Fixed(-0.77)).unwrap();
    let after = c2.run(&[], &[], None).unwrap();
    for w in 0..2 {
        assert!((before.expectation_z(w).unwrap() - after.expectation_z(w).unwrap()).abs() < 1e-12);
    }
    for (a, b) in before.probabilities().iter().zip(after.probabilities()) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn swap_exchanges_wire_states() {
    // Prepare |10⟩, swap, expect |01⟩.
    let mut s = StateVector::zero_state(2).unwrap();
    Gate::PauliX(0).apply(&mut s, 0.0).unwrap();
    Gate::SWAP(0, 1).apply(&mut s, 0.0).unwrap();
    assert!((s.probability(0b01) - 1.0).abs() < 1e-12);
}

#[test]
fn s_gate_squared_is_z() {
    let mut c = Circuit::new(1).unwrap();
    c.h(0).unwrap();
    c.push(Gate::S(0)).unwrap();
    c.push(Gate::S(0)).unwrap();
    c.h(0).unwrap();
    // H·Z·H = X: |0⟩ → |1⟩.
    let p = c.run_probabilities(&[], &[], None).unwrap();
    assert!((p[1] - 1.0).abs() < 1e-12);
}

#[test]
fn t_gate_fourth_power_is_z() {
    let mut c = Circuit::new(1).unwrap();
    c.h(0).unwrap();
    for _ in 0..4 {
        c.push(Gate::T(0)).unwrap();
    }
    c.h(0).unwrap();
    let p = c.run_probabilities(&[], &[], None).unwrap();
    assert!((p[1] - 1.0).abs() < 1e-12);
}

#[test]
fn controlled_rotations_gradcheck_via_paramshift() {
    use sqvae_quantum::grad::{adjoint, paramshift};
    for gate in [
        Gate::CRX(0, 1, Param::Train(0)),
        Gate::CRY(0, 1, Param::Train(0)),
    ] {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap();
        c.push(gate).unwrap();
        let theta = [0.83];
        let upstream = [0.0, 1.0];
        let adj = adjoint::backward_expectations_z(&c, &theta, &[], None, &upstream).unwrap();
        let ps = paramshift::vjp_expectations_z(&c, &theta, &[], None, &upstream).unwrap();
        assert!(
            (adj.params[0] - ps.params[0]).abs() < 1e-10,
            "{gate:?}: adjoint {} vs paramshift {}",
            adj.params[0],
            ps.params[0]
        );
        assert!(
            adj.params[0].abs() > 1e-3,
            "{gate:?} gradient should be non-trivial"
        );
    }
}

#[test]
fn shot_sampling_converges_to_probabilities() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut c = Circuit::new(1).unwrap();
    c.ry(0, Param::Fixed(1.0)).unwrap();
    let state = c.run(&[], &[], None).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let est = state.estimate_expectation_z(0, 20_000, &mut rng).unwrap();
    let exact = state.expectation_z(0).unwrap();
    assert!(
        (est - exact).abs() < 0.02,
        "estimate {est} vs exact {exact}"
    );
    // Outcome histogram matches probabilities.
    let outcomes = state.sample_measurements(20_000, &mut rng);
    let ones = outcomes.iter().filter(|&&o| o == 1).count() as f64 / 20_000.0;
    assert!((ones - state.probability(1)).abs() < 0.02);
}

/// The CDF + binary-search sampler consumes the RNG stream identically to
/// the former `O(shots·dim)` linear scan and picks the same outcomes; pin
/// both with a seeded run against an in-test scan reference.
#[test]
fn cdf_sampler_matches_linear_scan_reference_on_seeded_stream() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let linear_scan = |state: &StateVector, shots: usize, rng: &mut StdRng| -> Vec<usize> {
        let probs = state.probabilities();
        (0..shots)
            .map(|_| {
                let mut u: f64 = rng.gen_range(0.0..1.0);
                for (i, &p) in probs.iter().enumerate() {
                    if u < p {
                        return i;
                    }
                    u -= p;
                }
                probs.len() - 1
            })
            .collect()
    };

    let mut c = Circuit::new(3).unwrap();
    c.h(0).unwrap();
    c.ry(1, Param::Fixed(0.9)).unwrap();
    c.cnot(0, 2).unwrap();
    c.rz(2, Param::Fixed(0.4)).unwrap();
    let state = c.run(&[], &[], None).unwrap();

    for seed in [0u64, 7, 42, 1234] {
        let fast = state.sample_measurements(500, &mut StdRng::seed_from_u64(seed));
        let slow = linear_scan(&state, 500, &mut StdRng::seed_from_u64(seed));
        assert_eq!(fast, slow, "seed {seed}");
        // Same seed, same draws: the sampler itself is deterministic.
        let again = state.sample_measurements(500, &mut StdRng::seed_from_u64(seed));
        assert_eq!(fast, again, "seed {seed} determinism");
    }
    // Pin a few absolute outcomes so the stream mapping can never silently
    // change.
    let pinned = state.sample_measurements(8, &mut StdRng::seed_from_u64(42));
    assert_eq!(
        pinned,
        linear_scan(&state, 8, &mut StdRng::seed_from_u64(42))
    );
}

#[test]
fn max_register_bound_is_enforced() {
    assert!(StateVector::zero_state(sqvae_quantum::MAX_QUBITS).is_ok());
    assert!(StateVector::zero_state(sqvae_quantum::MAX_QUBITS + 1).is_err());
    assert!(Circuit::new(0).is_err());
}
