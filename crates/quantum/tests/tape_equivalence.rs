//! Compiled-tape equivalence: executing a [`CompiledTape`] must reproduce
//! eager gate-by-gate execution — forward states, expectations,
//! probabilities, and adjoint gradients — to ≤ 1e-12 on randomized circuits,
//! on every backend (dense, fused, SoA), and the tape must be reusable
//! across rows.

use proptest::prelude::*;
use sqvae_quantum::backend::{Backend, DenseBackend, FusedDenseBackend, SoaDenseBackend};
use sqvae_quantum::embed::{angle_embedding_gates, RotationAxis};
use sqvae_quantum::grad::adjoint;
use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
use sqvae_quantum::{Circuit, CompiledTape, Gate, Param};

const TOL: f64 = 1e-12;

/// Strategy: a random gate over `n` wires referencing at most `np` trainable
/// parameters and `ni` input features, spanning every gate kind the tape
/// compiler lowers (fusible single-qubit runs, CNOTs/SWAPs, controlled
/// rotations and phases, late-bound input slots).
fn arb_gate(n: usize, np: usize, ni: usize) -> impl Strategy<Value = Gate> {
    let wire = 0..n;
    let wire2 = 0..n;
    let param = prop_oneof![
        (-3.0..3.0f64).prop_map(Param::Fixed),
        (0..np).prop_map(Param::Train),
        (0..ni).prop_map(Param::Input),
    ];
    (wire, wire2, param, 0..12u8).prop_map(move |(w, w2, p, kind)| {
        let w2 = if w2 == w { (w + 1) % n } else { w2 };
        match kind {
            0 => Gate::Hadamard(w),
            1 => Gate::RX(w, p),
            2 => Gate::RY(w, p),
            3 => Gate::RZ(w, p),
            4 => Gate::PauliX(w),
            5 => Gate::S(w),
            6 => Gate::T(w),
            7 if n > 1 => Gate::CNOT(w, w2),
            8 if n > 1 => Gate::CRZ(w, w2, p),
            9 if n > 1 => Gate::CRY(w, w2, p),
            10 if n > 1 => Gate::CZ(w, w2),
            11 if n > 1 => Gate::SWAP(w, w2),
            _ => Gate::RY(w, p),
        }
    })
}

fn build_circuit(n: usize, gates: Vec<Gate>) -> Circuit {
    let mut c = Circuit::new(n).expect("valid register");
    for g in gates {
        c.push(g).expect("valid gate");
    }
    c
}

/// The eager gate-by-gate reference: explicit `apply_ops`, no tape.
fn eager_state<B: Backend>(c: &Circuit, params: &[f64], inputs: &[f64]) -> B {
    let mut s = B::zero_state(c.n_qubits()).unwrap();
    s.apply_ops(c.ops(), params, inputs).unwrap();
    s
}

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what} length");
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() <= TOL, "{what}: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled execution reproduces the eager amplitudes, expectations, and
    /// probabilities on both backends.
    #[test]
    fn compiled_forward_matches_gate_by_gate(
        gates in proptest::collection::vec(arb_gate(3, 4, 2), 1..32),
        params in proptest::collection::vec(-3.0..3.0f64, 4),
        inputs in proptest::collection::vec(-2.0..2.0f64, 2),
    ) {
        let c = build_circuit(3, gates);
        let tape = c.compile(&params).unwrap();
        let eager: DenseBackend = eager_state(&c, &params, &inputs);
        let dense: DenseBackend = tape.execute_on(&inputs, None).unwrap();
        let fused: FusedDenseBackend = tape.execute_on(&inputs, None).unwrap();
        for (a, b) in eager.amplitudes().iter().zip(dense.amplitudes()) {
            prop_assert!(a.approx_eq(*b, TOL), "dense amplitude {a} vs {b}");
        }
        let fused_sv = fused.to_statevector();
        for (a, b) in eager.amplitudes().iter().zip(fused_sv.amplitudes()) {
            prop_assert!(a.approx_eq(*b, TOL), "fused amplitude {a} vs {b}");
        }
        let soa: SoaDenseBackend = tape.execute_on(&inputs, None).unwrap();
        let soa_sv = soa.to_statevector();
        for (a, b) in eager.amplitudes().iter().zip(soa_sv.amplitudes()) {
            prop_assert!(a.approx_eq(*b, TOL), "soa amplitude {a} vs {b}");
        }
        assert_close(
            &c.expectations_z_all(&eager).unwrap(),
            &tape.expectations_z_on::<DenseBackend>(&inputs, None).unwrap(),
            "expectations",
        );
        assert_close(
            &c.expectations_z_all(&eager).unwrap(),
            &c.expectations_z_all(&soa).unwrap(),
            "soa expectations",
        );
        assert_close(
            &Backend::probabilities(&eager),
            &tape.probabilities_on::<FusedDenseBackend>(&inputs, None).unwrap(),
            "probabilities",
        );
        let mut soa_probs = Vec::new();
        tape.probabilities_into_on::<SoaDenseBackend>(&inputs, None, &mut soa_probs).unwrap();
        assert_close(&Backend::probabilities(&eager), &soa_probs, "soa probabilities");
    }

    /// The tape's pre-lowered adjoint sweep reproduces the eager adjoint
    /// gradients (parameters AND inputs) for the ⟨Z⟩ readout on both
    /// backends.
    #[test]
    fn compiled_adjoint_matches_gate_by_gate(
        gates in proptest::collection::vec(arb_gate(3, 4, 2), 1..24),
        params in proptest::collection::vec(-3.0..3.0f64, 4),
        inputs in proptest::collection::vec(-2.0..2.0f64, 2),
        upstream in proptest::collection::vec(-1.5..1.5f64, 3),
    ) {
        let c = build_circuit(3, gates);
        let tape = c.compile(&params).unwrap();
        let eager = adjoint::backward_expectations_z_on::<DenseBackend>(
            &c, &params, &inputs, None, &upstream).unwrap();
        let dense = adjoint::backward_expectations_z_tape::<DenseBackend>(
            &tape, &inputs, None, &upstream).unwrap();
        let fused = adjoint::backward_expectations_z_tape::<FusedDenseBackend>(
            &tape, &inputs, None, &upstream).unwrap();
        let soa = adjoint::backward_expectations_z_tape::<SoaDenseBackend>(
            &tape, &inputs, None, &upstream).unwrap();
        assert_close(&eager.params, &dense.params, "dense param gradients");
        assert_close(&eager.inputs, &dense.inputs, "dense input gradients");
        assert_close(&eager.params, &fused.params, "fused param gradients");
        assert_close(&eager.inputs, &fused.inputs, "fused input gradients");
        assert_close(&eager.params, &soa.params, "soa param gradients");
        assert_close(&eager.inputs, &soa.inputs, "soa input gradients");
    }

    /// Same for the probability readout (the baseline decoder's measurement).
    #[test]
    fn compiled_adjoint_matches_gate_by_gate_probabilities(
        gates in proptest::collection::vec(arb_gate(2, 3, 1), 1..20),
        params in proptest::collection::vec(-3.0..3.0f64, 3),
        inputs in proptest::collection::vec(-2.0..2.0f64, 1),
        upstream in proptest::collection::vec(-1.0..1.0f64, 4),
    ) {
        let c = build_circuit(2, gates);
        let tape = c.compile(&params).unwrap();
        let eager = adjoint::backward_probabilities_on::<DenseBackend>(
            &c, &params, &inputs, None, &upstream).unwrap();
        let taped = adjoint::backward_probabilities_tape::<FusedDenseBackend>(
            &tape, &inputs, None, &upstream).unwrap();
        assert_close(&eager.params, &taped.params, "param gradients");
        assert_close(&eager.inputs, &taped.inputs, "input gradients");
        let soa = adjoint::backward_probabilities_tape::<SoaDenseBackend>(
            &tape, &inputs, None, &upstream).unwrap();
        assert_close(&eager.params, &soa.params, "soa param gradients");
        assert_close(&eager.inputs, &soa.inputs, "soa input gradients");
    }

    /// One tape, many rows: re-executing with different inputs matches
    /// per-row eager execution (the batched reuse the layers rely on), and
    /// repeated execution of the same row is bit-identical.
    #[test]
    fn tape_reuse_across_rows_is_sound(
        gates in proptest::collection::vec(arb_gate(3, 4, 2), 1..24),
        params in proptest::collection::vec(-3.0..3.0f64, 4),
        rows in proptest::collection::vec(
            proptest::collection::vec(-2.0..2.0f64, 2), 2..6),
    ) {
        let c = build_circuit(3, gates);
        let tape = c.compile(&params).unwrap();
        for row in &rows {
            let eager: DenseBackend = eager_state(&c, &params, row);
            let a: FusedDenseBackend = tape.execute_on(row, None).unwrap();
            let b: FusedDenseBackend = tape.execute_on(row, None).unwrap();
            prop_assert_eq!(&a, &b, "tape re-execution must be deterministic");
            let a_sv = a.to_statevector();
            for (x, y) in eager.amplitudes().iter().zip(a_sv.amplitudes()) {
                prop_assert!(x.approx_eq(*y, TOL), "row amplitude {x} vs {y}");
            }
            let s1: SoaDenseBackend = tape.execute_on(row, None).unwrap();
            let s2: SoaDenseBackend = tape.execute_on(row, None).unwrap();
            prop_assert_eq!(&s1, &s2, "soa tape re-execution must be deterministic");
            let s_sv = s1.to_statevector();
            for (x, y) in eager.amplitudes().iter().zip(s_sv.amplitudes()) {
                prop_assert!(x.approx_eq(*y, TOL), "soa row amplitude {x} vs {y}");
            }
        }
    }
}

/// The paper's baseline encoder — angle embedding plus 3 strongly-entangling
/// layers on 6 qubits — compiles to the shape the tape targets (late-bound
/// embedding, one fused matrix per wire per layer, one permutation per
/// ring); pin its end-to-end equivalence at the paper's scale.
#[test]
fn paper_template_tape_matches_eager() {
    let n = 6;
    let mut c = Circuit::new(n).unwrap();
    c.extend(angle_embedding_gates(n, RotationAxis::Y, 0))
        .unwrap();
    c.extend(strongly_entangling_layers(n, 3, 0, EntangleRange::Ring).unwrap())
        .unwrap();
    let params: Vec<f64> = (0..c.n_params()).map(|i| 0.05 * i as f64 - 1.2).collect();
    let inputs: Vec<f64> = (0..n).map(|i| 0.3 * i as f64 - 0.8).collect();
    let upstream: Vec<f64> = (0..n).map(|i| 1.0 - 0.4 * i as f64).collect();

    let tape: CompiledTape = c.compile(&params).unwrap();
    let eager: FusedDenseBackend = eager_state(&c, &params, &inputs);
    assert_close(
        &c.expectations_z_all(&eager).unwrap(),
        &tape
            .expectations_z_on::<FusedDenseBackend>(&inputs, None)
            .unwrap(),
        "paper template expectations",
    );

    let ge = adjoint::backward_expectations_z_on::<FusedDenseBackend>(
        &c, &params, &inputs, None, &upstream,
    )
    .unwrap();
    let gt =
        adjoint::backward_expectations_z_tape::<FusedDenseBackend>(&tape, &inputs, None, &upstream)
            .unwrap();
    assert_close(&ge.params, &gt.params, "paper template param grads");
    assert_close(&ge.inputs, &gt.inputs, "paper template input grads");

    let gs =
        adjoint::backward_expectations_z_tape::<SoaDenseBackend>(&tape, &inputs, None, &upstream)
            .unwrap();
    assert_close(&ge.params, &gs.params, "paper template soa param grads");
    assert_close(&ge.inputs, &gs.inputs, "paper template soa input grads");
    assert_close(
        &c.expectations_z_all(&eager).unwrap(),
        &tape
            .expectations_z_on::<SoaDenseBackend>(&inputs, None)
            .unwrap(),
        "paper template soa expectations",
    );
}

/// Mismatched embedded initial states stay a typed error through the tape
/// pipeline, and recompiling with new parameters is what picks them up —
/// the tape itself is immutable.
#[test]
fn tape_errors_and_immutability() {
    let mut c = Circuit::new(2).unwrap();
    c.ry(0, Param::Train(0)).unwrap();
    let tape = c.compile(&[0.3]).unwrap();
    let wide = FusedDenseBackend::zero_state(3).unwrap();
    assert!(matches!(
        tape.execute_on(&[], Some(&wide)),
        Err(sqvae_quantum::QuantumError::DimensionMismatch { .. })
    ));

    // New parameters require a new compile; the old tape still answers for
    // the old ones.
    let old: DenseBackend = tape.execute_on(&[], None).unwrap();
    let new: DenseBackend = c.compile(&[1.1]).unwrap().execute_on(&[], None).unwrap();
    let reference: DenseBackend = eager_state(&c, &[0.3], &[]);
    for (a, b) in old.amplitudes().iter().zip(reference.amplitudes()) {
        assert!(a.approx_eq(*b, TOL));
    }
    assert!(old
        .amplitudes()
        .iter()
        .zip(new.amplitudes())
        .any(|(a, b)| !a.approx_eq(*b, 1e-3)));
}
