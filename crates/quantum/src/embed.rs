//! Quantum data embeddings.
//!
//! The paper uses two embeddings (§II-C):
//!
//! * **Amplitude embedding** — a feature vector `x ∈ R^d` is uploaded as
//!   `|x⟩ = (1/‖x‖₂) Σ_j x_j |j⟩`, requiring only `⌈log2 d⌉` qubits (qubit
//!   efficient, used by the baseline/scalable *encoders*).
//! * **Angle embedding** — each feature becomes a rotation angle on its own
//!   qubit (one qubit per feature, used by the *decoders* where the latent
//!   vector is small).

use crate::complex::C64;
use crate::error::{QuantumError, Result};
use crate::gate::{Gate, Param};
use crate::state::StateVector;

/// Number of qubits needed to amplitude-embed `n_features` values.
///
/// # Examples
///
/// ```
/// assert_eq!(sqvae_quantum::embed::qubits_for_features(64), 6);
/// assert_eq!(sqvae_quantum::embed::qubits_for_features(1000), 10);
/// assert_eq!(sqvae_quantum::embed::qubits_for_features(1), 1);
/// ```
pub fn qubits_for_features(n_features: usize) -> usize {
    if n_features <= 2 {
        1
    } else {
        (usize::BITS - (n_features - 1).leading_zeros()) as usize
    }
}

/// Amplitude-embeds `features` into an `n_qubits` register, zero-padding up
/// to `2^n_qubits` and L2-normalizing.
///
/// # Errors
///
/// * [`QuantumError::DimensionMismatch`] if more features than `2^n_qubits`.
/// * [`QuantumError::ZeroNorm`] if every feature is (numerically) zero.
///
/// # Examples
///
/// ```
/// use sqvae_quantum::embed::amplitude_embedding;
///
/// let state = amplitude_embedding(&[1.0, 0.0, 0.0, 1.0], 2)?;
/// assert!((state.probability(0) - 0.5).abs() < 1e-12);
/// assert!((state.probability(3) - 0.5).abs() < 1e-12);
/// # Ok::<(), sqvae_quantum::QuantumError>(())
/// ```
pub fn amplitude_embedding(features: &[f64], n_qubits: usize) -> Result<StateVector> {
    // Validate register size via the canonical constructor.
    StateVector::zero_state(n_qubits)?;
    let dim = 1usize << n_qubits;
    if features.len() > dim {
        return Err(QuantumError::DimensionMismatch {
            expected: dim,
            actual: features.len(),
        });
    }
    let mut amps = vec![C64::ZERO; dim];
    for (a, &f) in amps.iter_mut().zip(features) {
        *a = C64::real(f);
    }
    StateVector::from_amplitudes(amps)
}

/// Rotation axis used by [`angle_embedding_gates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RotationAxis {
    /// Rotate around X.
    X,
    /// Rotate around Y (the paper's choice; keeps amplitudes real).
    #[default]
    Y,
    /// Rotate around Z (phase-only on basis states).
    Z,
}

/// Builds the gate list for an angle embedding: feature `i` becomes a
/// rotation by `Param::Input(input_offset + i)` on wire `i`.
///
/// Returns `n_qubits` gates; callers append them at the front of a circuit.
///
/// # Examples
///
/// ```
/// use sqvae_quantum::embed::{angle_embedding_gates, RotationAxis};
/// use sqvae_quantum::Circuit;
///
/// let mut c = Circuit::new(3)?;
/// c.extend(angle_embedding_gates(3, RotationAxis::Y, 0))?;
/// assert_eq!(c.n_inputs(), 3);
/// # Ok::<(), sqvae_quantum::QuantumError>(())
/// ```
pub fn angle_embedding_gates(
    n_qubits: usize,
    axis: RotationAxis,
    input_offset: usize,
) -> Vec<Gate> {
    (0..n_qubits)
        .map(|w| {
            let p = Param::Input(input_offset + w);
            match axis {
                RotationAxis::X => Gate::RX(w, p),
                RotationAxis::Y => Gate::RY(w, p),
                RotationAxis::Z => Gate::RZ(w, p),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn qubit_counts() {
        assert_eq!(qubits_for_features(2), 1);
        assert_eq!(qubits_for_features(3), 2);
        assert_eq!(qubits_for_features(4), 2);
        assert_eq!(qubits_for_features(64), 6);
        assert_eq!(qubits_for_features(65), 7);
        assert_eq!(qubits_for_features(1024), 10);
    }

    #[test]
    fn amplitude_embedding_normalizes_and_pads() {
        let s = amplitude_embedding(&[3.0, 4.0], 2).unwrap();
        assert_eq!(s.dim(), 4);
        assert!((s.probability(0) - 0.36).abs() < 1e-12);
        assert!((s.probability(1) - 0.64).abs() < 1e-12);
        assert!(s.probability(2).abs() < 1e-15);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_embedding_matches_paper_definition() {
        // |x⟩ = (1/‖x‖₂) Σ x_j |j⟩.
        let x = [0.5, -0.5, 0.5, 0.5];
        let s = amplitude_embedding(&x, 2).unwrap();
        for (j, &xj) in x.iter().enumerate() {
            assert!((s.amplitude(j).re - xj).abs() < 1e-12);
            assert_eq!(s.amplitude(j).im, 0.0);
        }
    }

    #[test]
    fn amplitude_embedding_rejects_oversized_input() {
        assert!(amplitude_embedding(&[1.0; 5], 2).is_err());
    }

    #[test]
    fn amplitude_embedding_rejects_zero_vector() {
        assert_eq!(
            amplitude_embedding(&[0.0; 4], 2).unwrap_err(),
            QuantumError::ZeroNorm
        );
    }

    #[test]
    fn angle_embedding_encodes_each_feature_on_its_wire() {
        let mut c = Circuit::new(2).unwrap();
        c.extend(angle_embedding_gates(2, RotationAxis::Y, 0))
            .unwrap();
        let inputs = [0.4, 1.1];
        let z = c.run_expectations_z(&[], &inputs, None).unwrap();
        // RY(θ)|0⟩ gives ⟨Z⟩ = cos θ on each wire independently.
        assert!((z[0] - inputs[0].cos()).abs() < 1e-12);
        assert!((z[1] - inputs[1].cos()).abs() < 1e-12);
    }

    #[test]
    fn angle_embedding_offset_shifts_input_indices() {
        let gates = angle_embedding_gates(2, RotationAxis::Y, 3);
        assert_eq!(gates[0], Gate::RY(0, Param::Input(3)));
        assert_eq!(gates[1], Gate::RY(1, Param::Input(4)));
    }

    #[test]
    fn z_axis_embedding_leaves_basis_probabilities() {
        let mut c = Circuit::new(1).unwrap();
        c.extend(angle_embedding_gates(1, RotationAxis::Z, 0))
            .unwrap();
        let z = c.run_expectations_z(&[], &[0.9], None).unwrap();
        assert!((z[0] - 1.0).abs() < 1e-12); // phases don't move |0⟩ populations
    }
}
