//! Parameter-shift differentiation.
//!
//! The hardware-compatible gradient rule: for a gate `U(θ) = exp(-iθG/2)`
//! whose generator has eigenvalues `±1/2` (all single-qubit rotations),
//!
//! ```text
//! d⟨M⟩/dθ = [⟨M⟩(θ + π/2) − ⟨M⟩(θ − π/2)] / 2 .
//! ```
//!
//! Controlled rotations (`CRZ`) have generator eigenvalues `{0, ±1/2}` and
//! need the four-term rule with shifts `π/2` and `3π/2` and coefficients
//! `c± = (√2 ± 1)/(4√2)`.
//!
//! A parameter shared by several gates is differentiated gate-by-gate and
//! summed (the product rule). This engine re-executes the circuit per shift,
//! so it is slower than [`crate::grad::adjoint`] but matches what quantum
//! hardware can evaluate; the paper's training relies on exactly this rule on
//! the PennyLane simulator.

use crate::backend::Backend;
use crate::circuit::Circuit;
use crate::error::Result;
use crate::gate::Param;
use crate::grad::CircuitGradients;
use crate::state::StateVector;
use std::f64::consts::FRAC_PI_2;

/// Jacobian pair `(jac_params, jac_inputs)` with `jac[p][o] = ∂out_o/∂θ_p`.
pub type JacobianPair = (Vec<Vec<f64>>, Vec<Vec<f64>>);

/// Shift coefficients for the four-term controlled-rotation rule.
const FOUR_TERM_C_PLUS: f64 = (std::f64::consts::SQRT_2 + 1.0) / (4.0 * std::f64::consts::SQRT_2);
const FOUR_TERM_C_MINUS: f64 = (std::f64::consts::SQRT_2 - 1.0) / (4.0 * std::f64::consts::SQRT_2);

/// Executes `circuit` with gate `gate_idx`'s angle replaced by
/// `override_theta`. The starting register goes through
/// `Circuit::start_state`, so a mismatched `initial` width is a typed
/// dimension error here exactly as it is in `Circuit::run_on`.
fn run_with_override<B: Backend>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&B>,
    gate_idx: usize,
    override_theta: f64,
) -> Result<B> {
    circuit.check_bindings(params, inputs)?;
    let mut state = circuit.start_state(initial)?;
    for (i, g) in circuit.ops().iter().enumerate() {
        let theta = if i == gate_idx {
            override_theta
        } else {
            g.param().map_or(0.0, |p| p.resolve(params, inputs))
        };
        g.apply(&mut state, theta)?;
    }
    Ok(state)
}

/// [`jacobian`] generalized over the simulator [`Backend`]: every shifted
/// execution runs on `B`'s kernels and `measure` reads the `B` register.
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian_on<B, F>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&B>,
    measure: F,
) -> Result<JacobianPair>
where
    B: Backend,
    F: Fn(&B) -> Vec<f64>,
{
    circuit.check_bindings(params, inputs)?;
    let n_out = measure(&circuit.run_on(params, inputs, initial)?).len();
    let mut jac_params = vec![vec![0.0; n_out]; circuit.n_params()];
    let mut jac_inputs = vec![vec![0.0; n_out]; circuit.n_inputs()];

    for (gate_idx, gate) in circuit.ops().iter().enumerate() {
        let binding = match gate.param() {
            Some(Param::Train(i)) => Some((true, i)),
            Some(Param::Input(i)) => Some((false, i)),
            _ => None,
        };
        let Some((is_train, idx)) = binding else {
            continue;
        };
        let theta = gate
            .param()
            .expect("binding implies param")
            .resolve(params, inputs);

        let eval = |t: f64| -> Result<Vec<f64>> {
            Ok(measure(&run_with_override(
                circuit, params, inputs, initial, gate_idx, t,
            )?))
        };

        let grad: Vec<f64> = if gate.is_single_qubit_rotation() {
            let plus = eval(theta + FRAC_PI_2)?;
            let minus = eval(theta - FRAC_PI_2)?;
            plus.iter()
                .zip(&minus)
                .map(|(p, m)| (p - m) / 2.0)
                .collect()
        } else if gate.is_controlled_rotation() {
            let p1 = eval(theta + FRAC_PI_2)?;
            let m1 = eval(theta - FRAC_PI_2)?;
            let p2 = eval(theta + 3.0 * FRAC_PI_2)?;
            let m2 = eval(theta - 3.0 * FRAC_PI_2)?;
            (0..n_out)
                .map(|o| FOUR_TERM_C_PLUS * (p1[o] - m1[o]) - FOUR_TERM_C_MINUS * (p2[o] - m2[o]))
                .collect()
        } else {
            continue;
        };

        let target = if is_train {
            &mut jac_params[idx]
        } else {
            &mut jac_inputs[idx]
        };
        for (t, g) in target.iter_mut().zip(&grad) {
            *t += g;
        }
    }
    Ok((jac_params, jac_inputs))
}

/// Full Jacobian of a measurement vector with respect to trainable
/// parameters and inputs, via parameter shifts on the dense reference
/// backend.
///
/// `measure` maps a final state to the output vector (e.g. per-wire `⟨Z⟩` or
/// probabilities). Returns `(jac_params, jac_inputs)` where
/// `jac_params[p][o] = d out_o / d θ_p`.
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian<F>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
    measure: F,
) -> Result<JacobianPair>
where
    F: Fn(&StateVector) -> Vec<f64>,
{
    jacobian_on(circuit, params, inputs, initial, measure)
}

/// [`jacobian_expectations_z`] generalized over the simulator [`Backend`].
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian_expectations_z_on<B: Backend>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&B>,
) -> Result<JacobianPair> {
    let n = circuit.n_qubits();
    jacobian_on(circuit, params, inputs, initial, |s: &B| {
        (0..n)
            .map(|w| s.expectation_z(w).expect("wire in range"))
            .collect()
    })
}

/// Jacobian of the per-wire `⟨Z⟩` readout.
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian_expectations_z(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
) -> Result<JacobianPair> {
    jacobian_expectations_z_on(circuit, params, inputs, initial)
}

/// [`jacobian_probabilities`] generalized over the simulator [`Backend`].
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian_probabilities_on<B: Backend>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&B>,
) -> Result<JacobianPair> {
    jacobian_on(circuit, params, inputs, initial, |s: &B| s.probabilities())
}

/// Jacobian of the basis-state probability readout.
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian_probabilities(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
) -> Result<JacobianPair> {
    jacobian_probabilities_on(circuit, params, inputs, initial)
}

/// Vector-Jacobian product computed by parameter shift (for cross-checking
/// the adjoint engine): contracts the Jacobian with `upstream`.
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn vjp_expectations_z(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
    upstream: &[f64],
) -> Result<CircuitGradients> {
    let (jp, ji) = jacobian_expectations_z(circuit, params, inputs, initial)?;
    let contract = |jac: &[Vec<f64>]| -> Vec<f64> {
        jac.iter()
            .map(|row| row.iter().zip(upstream).map(|(j, u)| j * u).sum())
            .collect()
    };
    Ok(CircuitGradients {
        params: contract(&jp),
        inputs: contract(&ji),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{angle_embedding_gates, RotationAxis};
    use crate::grad::adjoint;
    use crate::templates::{strongly_entangling_layers, EntangleRange};

    #[test]
    fn two_term_rule_on_single_ry() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        let theta = 0.9;
        let (jp, _) = jacobian_expectations_z(&c, &[theta], &[], None).unwrap();
        assert!((jp[0][0] + theta.sin()).abs() < 1e-12);
    }

    #[test]
    fn four_term_rule_on_crz_matches_finite_difference() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap();
        c.h(1).unwrap();
        c.crz(0, 1, Param::Train(0)).unwrap();
        c.h(1).unwrap();
        let theta = 1.17;
        let (jp, _) = jacobian_expectations_z(&c, &[theta], &[], None).unwrap();
        let f = |t: f64| c.run_expectations_z(&[t], &[], None).unwrap()[1];
        let eps = 1e-6;
        let fd = (f(theta + eps) - f(theta - eps)) / (2.0 * eps);
        assert!((jp[0][1] - fd).abs() < 1e-6, "ps={} fd={fd}", jp[0][1]);
    }

    #[test]
    fn jacobian_covers_inputs() {
        let mut c = Circuit::new(2).unwrap();
        c.extend(angle_embedding_gates(2, RotationAxis::Y, 0))
            .unwrap();
        let x = [0.4, -0.8];
        let (_, ji) = jacobian_expectations_z(&c, &[], &x, None).unwrap();
        assert!((ji[0][0] + x[0].sin()).abs() < 1e-12);
        assert!((ji[1][1] + x[1].sin()).abs() < 1e-12);
        assert!(ji[0][1].abs() < 1e-12); // no cross terms without entanglement
    }

    #[test]
    fn matches_adjoint_on_entangling_circuit() {
        let mut c = Circuit::new(3).unwrap();
        c.extend(angle_embedding_gates(3, RotationAxis::Y, 0))
            .unwrap();
        c.extend(strongly_entangling_layers(3, 2, 0, EntangleRange::Ring).unwrap())
            .unwrap();
        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.05 * (i as f64) - 0.4).collect();
        let inputs = [0.3, -0.2, 0.9];
        let upstream = [0.7, -1.1, 0.4];
        let ps = vjp_expectations_z(&c, &params, &inputs, None, &upstream).unwrap();
        let adj = adjoint::backward_expectations_z(&c, &params, &inputs, None, &upstream).unwrap();
        for (a, b) in ps.params.iter().zip(&adj.params) {
            assert!((a - b).abs() < 1e-10, "params {a} vs {b}");
        }
        for (a, b) in ps.inputs.iter().zip(&adj.inputs) {
            assert!((a - b).abs() < 1e-10, "inputs {a} vs {b}");
        }
    }

    #[test]
    fn probability_jacobian_rows_sum_to_zero() {
        // Σ_i p_i = 1, so d(Σp)/dθ = 0 for every parameter.
        let mut c = Circuit::new(2).unwrap();
        c.extend(strongly_entangling_layers(2, 1, 0, EntangleRange::Ring).unwrap())
            .unwrap();
        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.2 + 0.1 * i as f64).collect();
        let (jp, _) = jacobian_probabilities(&c, &params, &[], None).unwrap();
        for row in &jp {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-10);
        }
    }

    #[test]
    fn shared_binding_sums_gate_contributions() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        let theta = 0.37;
        let (jp, _) = jacobian_expectations_z(&c, &[theta], &[], None).unwrap();
        assert!((jp[0][0] + 2.0 * (2.0 * theta).sin()).abs() < 1e-12);
    }
}
