//! Adjoint (reverse-mode) differentiation.
//!
//! For a circuit `|ψ⟩ = U_N … U_1 |φ₀⟩` and a real diagonal observable `D`,
//! the expectation `E = ⟨ψ|D|ψ⟩` has gradient
//!
//! ```text
//! dE/dθ_k = Im ⟨bra_k | G_k | ψ_k⟩,
//! ```
//!
//! where `ψ_k = U_k … U_1|φ₀⟩`, `bra_k = (U_{k+1} … U_N)† D |ψ⟩`, and `G_k`
//! is the generator of `U_k = exp(-iθ G_k / 2)`. Sweeping `k = N … 1` while
//! un-applying gates from both vectors computes every gradient in one pass
//! (Jones & Gacon, 2020).
//!
//! Because every measurement used by the paper's autoencoders (`⟨Z⟩` per
//! wire, basis-state probabilities) is diagonal, one adjoint pass against the
//! *upstream-weighted* diagonal yields `dL/dθ` and `dL/dx` directly — the
//! quantum layer's `backward()`.
//!
//! Two sweeps are provided per readout: the eager gate-by-gate `*_on`
//! functions (the reference semantics), and the `*_tape` functions that
//! replay a [`CompiledTape`]'s pre-lowered adjoint program — pre-inverted
//! fused fixed segments, pre-resolved inverse rotations, and fused
//! single-pass generator inner products. Batched training compiles once per
//! mini-batch and runs the tape sweep per row.

use crate::backend::Backend;
use crate::circuit::Circuit;
use crate::complex::C64;
use crate::embed::RotationAxis;
use crate::error::{QuantumError, Result};
use crate::gate::{Gate, Param};
use crate::grad::CircuitGradients;
use crate::observable::{probability_diagonal, weighted_z_sum_diagonal};
use crate::state::StateVector;
use crate::tape::{AdjointStep, AdjointStop, CompiledTape, TapeOp};

/// [`vjp_diagonal`] generalized over the simulator [`Backend`]: the forward
/// run, the backward un-application sweep, and the generator inner products
/// all execute on `B`'s kernels.
///
/// This is the **eager, gate-by-gate** reference sweep. The production
/// training path compiles the circuit once per batch and runs
/// [`vjp_diagonal_tape`] instead; the two are property-tested to agree at
/// ≤ 1e-12.
///
/// # Errors
///
/// Returns binding-count or dimension errors from circuit execution, and a
/// dimension error if `diag` does not match the register.
pub fn vjp_diagonal_on<B: Backend>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&B>,
    diag: &[f64],
) -> Result<CircuitGradients> {
    circuit.check_bindings(params, inputs)?;
    let dim = 1usize << circuit.n_qubits();
    if diag.len() != dim {
        return Err(QuantumError::DimensionMismatch {
            expected: dim,
            actual: diag.len(),
        });
    }

    // Forward pass, deliberately eager ([`Backend::apply_ops`], not the
    // compiled tape) so this function stays a tape-independent oracle.
    let mut ket = circuit.start_state(initial)?;
    ket.apply_ops(circuit.ops(), params, inputs)?;
    let mut bra = ket.clone();
    bra.apply_diagonal_real(diag);

    let mut grads = CircuitGradients::zeros(circuit.n_params(), circuit.n_inputs());

    // Backward sweep.
    for gate in circuit.ops().iter().rev() {
        let binding = gate.param();
        let theta = binding.map_or(0.0, |p| p.resolve(params, inputs));
        match binding {
            Some(Param::Train(idx)) => {
                let mut d = ket.clone();
                gate.apply_generator(&mut d)?;
                grads.params[idx] += bra.inner(&d).im;
            }
            Some(Param::Input(idx)) => {
                let mut d = ket.clone();
                gate.apply_generator(&mut d)?;
                grads.inputs[idx] += bra.inner(&d).im;
            }
            _ => {}
        }
        gate.apply_inverse(&mut ket, theta)?;
        gate.apply_inverse(&mut bra, theta)?;
    }
    Ok(grads)
}

/// Vector-Jacobian product of `E = ⟨ψ|diag|ψ⟩` with respect to trainable
/// parameters and embedded inputs, on the dense reference backend.
///
/// `initial` is the embedded starting state (`None` = `|0…0⟩`). The returned
/// gradients accumulate over every gate sharing a parameter index.
///
/// # Errors
///
/// See [`vjp_diagonal_on`].
pub fn vjp_diagonal(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
    diag: &[f64],
) -> Result<CircuitGradients> {
    vjp_diagonal_on(circuit, params, inputs, initial, diag)
}

/// [`backward_expectations_z`] generalized over the simulator [`Backend`].
///
/// # Errors
///
/// Returns a dimension error if `upstream.len() != n_qubits`, plus execution
/// errors.
pub fn backward_expectations_z_on<B: Backend>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&B>,
    upstream: &[f64],
) -> Result<CircuitGradients> {
    let n = circuit.n_qubits();
    if upstream.len() != n {
        return Err(QuantumError::DimensionMismatch {
            expected: n,
            actual: upstream.len(),
        });
    }
    let wires: Vec<usize> = (0..n).collect();
    let diag = weighted_z_sum_diagonal(n, &wires, upstream)?;
    vjp_diagonal_on(circuit, params, inputs, initial, &diag)
}

/// Backward pass for a per-wire `⟨Z⟩` readout: given the upstream gradient
/// `dL/d⟨Z_w⟩` for every wire `w`, returns `dL/dθ` and `dL/dx`.
///
/// # Errors
///
/// See [`backward_expectations_z_on`].
pub fn backward_expectations_z(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
    upstream: &[f64],
) -> Result<CircuitGradients> {
    backward_expectations_z_on(circuit, params, inputs, initial, upstream)
}

/// [`backward_probabilities`] generalized over the simulator [`Backend`].
///
/// # Errors
///
/// Returns a dimension error if `upstream.len() != 2^n_qubits`, plus
/// execution errors.
pub fn backward_probabilities_on<B: Backend>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&B>,
    upstream: &[f64],
) -> Result<CircuitGradients> {
    let diag = probability_diagonal(circuit.n_qubits(), upstream)?;
    vjp_diagonal_on(circuit, params, inputs, initial, &diag)
}

/// Backward pass for a basis-state probability readout: given the upstream
/// gradient `dL/dp_i` for every basis state `i`, returns `dL/dθ` and `dL/dx`.
///
/// # Errors
///
/// See [`backward_probabilities_on`].
pub fn backward_probabilities(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
    upstream: &[f64],
) -> Result<CircuitGradients> {
    backward_probabilities_on(circuit, params, inputs, initial, upstream)
}

/// `Im⟨bra|G|ket⟩` via the generic clone + [`Gate::apply_generator`] path —
/// the fallback for stops outside the fused single-qubit rotation kernel
/// (controlled rotations).
fn generator_inner_im<B: Backend>(bra: &B, ket: &B, gate: &Gate) -> Result<f64> {
    let mut d = ket.clone();
    if gate.apply_generator(&mut d)? {
        Ok(bra.inner(&d).im)
    } else {
        Ok(0.0)
    }
}

/// The Pauli axis generating `gate`, if it is a single-qubit rotation.
fn rotation_axis(gate: &Gate) -> Option<RotationAxis> {
    match gate {
        Gate::RX(..) => Some(RotationAxis::X),
        Gate::RY(..) => Some(RotationAxis::Y),
        Gate::RZ(..) => Some(RotationAxis::Z),
        _ => None,
    }
}

/// Fused-kernel ingredients of a single-qubit rotation stop: the generator
/// axis, the wire, and the inverse 2×2 to un-apply.
struct RotationStop {
    axis: RotationAxis,
    wire: usize,
    inv: [[C64; 2]; 2],
}

/// Resolves a stop into its [`RotationStop`] when its gate is a
/// single-qubit rotation. Trainable stops carry the pre-inverted matrix on
/// the tape; input stops derive it from the late-bound angle. Controlled
/// rotations return `None` (they take the clone-based fallback).
fn rotation_stop_parts(stop: &AdjointStop, inputs: &[f64]) -> Result<Option<RotationStop>> {
    let Some(axis) = rotation_axis(stop.gate()) else {
        return Ok(None);
    };
    match stop {
        AdjointStop::Train {
            inv: TapeOp::OneQ { wire, m },
            ..
        } => Ok(Some(RotationStop {
            axis,
            wire: *wire,
            inv: *m,
        })),
        AdjointStop::Train { .. } => Ok(None),
        AdjointStop::Input { gate, index } => {
            let theta = *inputs.get(*index).ok_or(QuantumError::InputCountMismatch {
                expected: *index + 1,
                actual: inputs.len(),
            })?;
            let (wire, m) = gate
                .single_qubit_matrix(-theta)
                .expect("single-qubit rotations have a 2x2 matrix");
            Ok(Some(RotationStop { axis, wire, inv: m }))
        }
    }
}

/// [`vjp_diagonal_on`] against a pre-compiled tape: the production batched
/// path. The forward run executes the tape, and the backward sweep replays
/// the tape's pre-lowered adjoint program — fixed-gate segments between
/// parametrized stops are already inverted and fused, trainable stops carry
/// pre-resolved inverse matrices, and the generator inner products for
/// single-qubit rotations run as one fused pass over the amplitudes.
///
/// Compile once per batch ([`crate::Circuit::compile`]) and call this per
/// row.
///
/// # Errors
///
/// Returns input-count or dimension errors from tape execution, and a
/// dimension error if `diag` does not match the register.
pub fn vjp_diagonal_tape<B: Backend>(
    tape: &CompiledTape,
    inputs: &[f64],
    initial: Option<&B>,
    diag: &[f64],
) -> Result<CircuitGradients> {
    let dim = 1usize << tape.n_qubits();
    if diag.len() != dim {
        return Err(QuantumError::DimensionMismatch {
            expected: dim,
            actual: diag.len(),
        });
    }

    // Forward pass on the compiled tape.
    let mut ket: B = tape.execute_on(inputs, initial)?;
    let mut bra = ket.clone();
    bra.apply_diagonal_real(diag);

    let mut grads = CircuitGradients::zeros(tape.n_params(), tape.n_inputs());

    // Backward sweep over the pre-lowered adjoint program.
    for step in tape.adjoint_steps() {
        match step {
            AdjointStep::Unapply(ops) => {
                for op in ops {
                    ket.apply_tape_op(op, inputs)?;
                    bra.apply_tape_op(op, inputs)?;
                }
            }
            AdjointStep::Stop(stop) => {
                // Single-qubit rotation stops take the backend's fused
                // kernel: the generator inner product and both
                // un-applications in one traversal per register.
                let g = match rotation_stop_parts(stop, inputs)? {
                    Some(r) => ket.adjoint_rotation_stop(&mut bra, r.axis, r.wire, &r.inv)?,
                    None => {
                        let g = generator_inner_im(&bra, &ket, stop.gate())?;
                        stop.unapply(&mut ket, inputs)?;
                        stop.unapply(&mut bra, inputs)?;
                        g
                    }
                };
                match *stop {
                    AdjointStop::Train { index, .. } => grads.params[index] += g,
                    AdjointStop::Input { index, .. } => grads.inputs[index] += g,
                }
            }
        }
    }
    Ok(grads)
}

/// [`backward_expectations_z_on`] against a pre-compiled tape.
///
/// # Errors
///
/// Returns a dimension error if `upstream.len() != n_qubits`, plus tape
/// execution errors.
pub fn backward_expectations_z_tape<B: Backend>(
    tape: &CompiledTape,
    inputs: &[f64],
    initial: Option<&B>,
    upstream: &[f64],
) -> Result<CircuitGradients> {
    let n = tape.n_qubits();
    if upstream.len() != n {
        return Err(QuantumError::DimensionMismatch {
            expected: n,
            actual: upstream.len(),
        });
    }
    let wires: Vec<usize> = (0..n).collect();
    let diag = weighted_z_sum_diagonal(n, &wires, upstream)?;
    vjp_diagonal_tape(tape, inputs, initial, &diag)
}

/// [`backward_probabilities_on`] against a pre-compiled tape.
///
/// # Errors
///
/// Returns a dimension error if `upstream.len() != 2^n_qubits`, plus tape
/// execution errors.
pub fn backward_probabilities_tape<B: Backend>(
    tape: &CompiledTape,
    inputs: &[f64],
    initial: Option<&B>,
    upstream: &[f64],
) -> Result<CircuitGradients> {
    let diag = probability_diagonal(tape.n_qubits(), upstream)?;
    vjp_diagonal_tape(tape, inputs, initial, &diag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::{amplitude_embedding, angle_embedding_gates, RotationAxis};
    use crate::gate::Param;
    use crate::templates::{strongly_entangling_layers, EntangleRange};

    /// dE/dθ for E = ⟨Z₀⟩ of RY(θ)|0⟩ is -sin θ.
    #[test]
    fn single_ry_analytic_gradient() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        let theta = 0.731;
        let g = backward_expectations_z(&c, &[theta], &[], None, &[1.0]).unwrap();
        assert!((g.params[0] + theta.sin()).abs() < 1e-12);
    }

    #[test]
    fn input_gradient_through_angle_embedding() {
        // ⟨Z₀⟩ of RY(x)|0⟩ = cos x, so dE/dx = -sin x.
        let mut c = Circuit::new(1).unwrap();
        c.extend(angle_embedding_gates(1, RotationAxis::Y, 0))
            .unwrap();
        let x = 1.04;
        let g = backward_expectations_z(&c, &[], &[x], None, &[1.0]).unwrap();
        assert!((g.inputs[0] + x.sin()).abs() < 1e-12);
        assert!(g.params.is_empty());
    }

    #[test]
    fn upstream_weights_scale_gradients() {
        let mut c = Circuit::new(2).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        c.ry(1, Param::Train(1)).unwrap();
        let params = [0.3, 1.2];
        let g1 = backward_expectations_z(&c, &params, &[], None, &[1.0, 0.0]).unwrap();
        let g2 = backward_expectations_z(&c, &params, &[], None, &[2.0, 0.0]).unwrap();
        assert!((g2.params[0] - 2.0 * g1.params[0]).abs() < 1e-12);
        assert!(g1.params[1].abs() < 1e-12); // wire-1 output had zero weight
    }

    #[test]
    fn probability_readout_gradient_matches_finite_difference() {
        let mut c = Circuit::new(2).unwrap();
        c.extend(strongly_entangling_layers(2, 2, 0, EntangleRange::Ring).unwrap())
            .unwrap();
        let n = c.n_params();
        let params: Vec<f64> = (0..n).map(|i| 0.1 + 0.13 * i as f64).collect();
        // Loss: sum_i w_i p_i with arbitrary weights.
        let w = [0.5, -1.5, 2.5, 0.25];
        let g = backward_probabilities(&c, &params, &[], None, &w).unwrap();
        let eps = 1e-6;
        for k in 0..n {
            let mut pp = params.clone();
            pp[k] += eps;
            let lp: f64 = c
                .run_probabilities(&pp, &[], None)
                .unwrap()
                .iter()
                .zip(&w)
                .map(|(p, wi)| p * wi)
                .sum();
            pp[k] -= 2.0 * eps;
            let lm: f64 = c
                .run_probabilities(&pp, &[], None)
                .unwrap()
                .iter()
                .zip(&w)
                .map(|(p, wi)| p * wi)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (g.params[k] - fd).abs() < 1e-5,
                "param {k}: adjoint={} fd={fd}",
                g.params[k]
            );
        }
    }

    #[test]
    fn gradient_with_amplitude_embedded_initial_state() {
        let mut c = Circuit::new(2).unwrap();
        c.extend(strongly_entangling_layers(2, 1, 0, EntangleRange::Ring).unwrap())
            .unwrap();
        let init = amplitude_embedding(&[0.2, 0.4, 0.6, 0.8], 2).unwrap();
        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.07 * (i + 1) as f64).collect();
        let upstream = [1.0, -0.5];
        let g = backward_expectations_z(&c, &params, &[], Some(&init), &upstream).unwrap();
        // Finite-difference oracle on L = z0 - 0.5 z1.
        let loss = |p: &[f64]| {
            let z = c.run_expectations_z(p, &[], Some(&init)).unwrap();
            z[0] - 0.5 * z[1]
        };
        let eps = 1e-6;
        for k in 0..params.len() {
            let mut pp = params.clone();
            pp[k] += eps;
            let lp = loss(&pp);
            pp[k] -= 2.0 * eps;
            let lm = loss(&pp);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((g.params[k] - fd).abs() < 1e-5, "param {k}");
        }
    }

    #[test]
    fn crz_gradient_matches_finite_difference() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap();
        c.h(1).unwrap();
        c.crz(0, 1, Param::Train(0)).unwrap();
        c.h(1).unwrap(); // rotate phase into populations so dE/dθ ≠ 0
        let theta = 0.63;
        let g = backward_expectations_z(&c, &[theta], &[], None, &[0.0, 1.0]).unwrap();
        let eps = 1e-6;
        let f = |t: f64| c.run_expectations_z(&[t], &[], None).unwrap()[1];
        let fd = (f(theta + eps) - f(theta - eps)) / (2.0 * eps);
        assert!(
            (g.params[0] - fd).abs() < 1e-5,
            "adjoint={} fd={fd}",
            g.params[0]
        );
        assert!(
            g.params[0].abs() > 1e-3,
            "test should exercise a non-zero gradient"
        );
    }

    #[test]
    fn shared_parameter_accumulates() {
        // Two RY gates bound to the same trainable index: E = cos(2θ),
        // dE/dθ = -2 sin(2θ).
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        let theta = 0.41;
        let g = backward_expectations_z(&c, &[theta], &[], None, &[1.0]).unwrap();
        assert!((g.params[0] + 2.0 * (2.0 * theta).sin()).abs() < 1e-12);
    }

    #[test]
    fn rejects_wrong_upstream_length() {
        let c = Circuit::new(2).unwrap();
        assert!(backward_expectations_z(&c, &[], &[], None, &[1.0]).is_err());
        assert!(backward_probabilities(&c, &[], &[], None, &[1.0; 3]).is_err());
    }
}
