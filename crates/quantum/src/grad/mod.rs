//! Circuit differentiation.
//!
//! PennyLane's automatic differentiation (used by the paper) is rebuilt here
//! with three interchangeable engines:
//!
//! * [`adjoint`] — reverse-mode vector-Jacobian products against diagonal
//!   observables in a single backward sweep; the production path used by the
//!   hybrid training loop (exact, O(gates · dim)).
//! * [`paramshift`] — the hardware-compatible parameter-shift rule (two-term
//!   for single-qubit rotations, four-term for controlled rotations); the
//!   method the reproduction notes call out for manual gradients.
//! * [`finite_diff`] — central differences, used only as a test oracle.
//!
//! All three agree to high precision; the test suites of each module and the
//! crate-level property tests cross-validate them.

pub mod adjoint;
pub mod finite_diff;
pub mod paramshift;

/// Gradients of a scalar loss with respect to a circuit's trainable
/// parameters and its embedded input features.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CircuitGradients {
    /// `dL/dθ` for each trainable parameter index.
    pub params: Vec<f64>,
    /// `dL/dx` for each input-feature index (angle embeddings).
    pub inputs: Vec<f64>,
}

impl CircuitGradients {
    /// Zero gradients of the given sizes.
    pub fn zeros(n_params: usize, n_inputs: usize) -> Self {
        CircuitGradients {
            params: vec![0.0; n_params],
            inputs: vec![0.0; n_inputs],
        }
    }
}
