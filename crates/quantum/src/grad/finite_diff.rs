//! Central finite differences — the numerical oracle used to validate the
//! analytic engines in tests. Not intended for training (O(2·n_params)
//! executions and truncation error).

use crate::backend::Backend;
use crate::circuit::Circuit;
use crate::error::Result;
use crate::state::StateVector;

/// Default step size balancing truncation and round-off error.
pub const DEFAULT_EPS: f64 = 1e-6;

/// [`jacobian_params`] generalized over the simulator [`Backend`].
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian_params_on<B, F>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&B>,
    eps: f64,
    measure: F,
) -> Result<Vec<Vec<f64>>>
where
    B: Backend,
    F: Fn(&B) -> Vec<f64>,
{
    let mut work = params.to_vec();
    let mut jac = Vec::with_capacity(circuit.n_params());
    for k in 0..circuit.n_params() {
        work[k] = params[k] + eps;
        let plus = measure(&circuit.run_on(&work, inputs, initial)?);
        work[k] = params[k] - eps;
        let minus = measure(&circuit.run_on(&work, inputs, initial)?);
        work[k] = params[k];
        jac.push(
            plus.iter()
                .zip(&minus)
                .map(|(p, m)| (p - m) / (2.0 * eps))
                .collect(),
        );
    }
    Ok(jac)
}

/// Jacobian of `measure` with respect to trainable parameters, via central
/// differences with step `eps` on the dense reference backend. Returns
/// `jac[p][o] = d out_o / d θ_p`.
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian_params<F>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
    eps: f64,
    measure: F,
) -> Result<Vec<Vec<f64>>>
where
    F: Fn(&StateVector) -> Vec<f64>,
{
    jacobian_params_on(circuit, params, inputs, initial, eps, measure)
}

/// [`jacobian_inputs`] generalized over the simulator [`Backend`].
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian_inputs_on<B, F>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&B>,
    eps: f64,
    measure: F,
) -> Result<Vec<Vec<f64>>>
where
    B: Backend,
    F: Fn(&B) -> Vec<f64>,
{
    let mut work = inputs.to_vec();
    let mut jac = Vec::with_capacity(circuit.n_inputs());
    for k in 0..circuit.n_inputs() {
        work[k] = inputs[k] + eps;
        let plus = measure(&circuit.run_on(params, &work, initial)?);
        work[k] = inputs[k] - eps;
        let minus = measure(&circuit.run_on(params, &work, initial)?);
        work[k] = inputs[k];
        jac.push(
            plus.iter()
                .zip(&minus)
                .map(|(p, m)| (p - m) / (2.0 * eps))
                .collect(),
        );
    }
    Ok(jac)
}

/// Jacobian of `measure` with respect to embedded inputs, via central
/// differences on the dense reference backend.
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn jacobian_inputs<F>(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
    eps: f64,
    measure: F,
) -> Result<Vec<Vec<f64>>>
where
    F: Fn(&StateVector) -> Vec<f64>,
{
    jacobian_inputs_on(circuit, params, inputs, initial, eps, measure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Param;
    use crate::grad::paramshift;
    use crate::templates::{strongly_entangling_layers, EntangleRange};

    #[test]
    fn finite_difference_matches_parameter_shift() {
        let mut c = Circuit::new(2).unwrap();
        c.extend(strongly_entangling_layers(2, 2, 0, EntangleRange::Ring).unwrap())
            .unwrap();
        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.11 * (i + 1) as f64).collect();
        let measure =
            |s: &StateVector| vec![s.expectation_z(0).unwrap(), s.expectation_z(1).unwrap()];
        let fd = jacobian_params(&c, &params, &[], None, DEFAULT_EPS, measure).unwrap();
        let (ps, _) = paramshift::jacobian_expectations_z(&c, &params, &[], None).unwrap();
        for (rf, rp) in fd.iter().zip(&ps) {
            for (a, b) in rf.iter().zip(rp) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn input_jacobian_on_single_gate() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Input(0)).unwrap();
        let x = 0.55;
        let jac = jacobian_inputs(&c, &[], &[x], None, DEFAULT_EPS, |s| {
            vec![s.expectation_z(0).unwrap()]
        })
        .unwrap();
        assert!((jac[0][0] + x.sin()).abs() < 1e-6);
    }
}
