//! Parametrized circuit container and executor.

use crate::backend::Backend;
use crate::error::{QuantumError, Result};
use crate::gate::{Gate, Param};
use crate::state::StateVector;
use crate::tape::{self, CompiledTape};

/// An ordered list of gates over a fixed-width register, with deferred
/// parameter binding.
///
/// Trainable angles reference indices into a parameter vector
/// ([`Param::Train`]) and embedded features reference an input vector
/// ([`Param::Input`]); both are supplied at execution time so the same
/// circuit object serves every optimizer step and every batch sample.
///
/// # Examples
///
/// ```
/// use sqvae_quantum::{Circuit, Param};
///
/// let mut c = Circuit::new(2)?;
/// c.ry(0, Param::Input(0))?;
/// c.rot(1, Param::Train(0), Param::Train(1), Param::Train(2))?;
/// c.cnot(0, 1)?;
/// let state = c.run(&[0.1, 0.2, 0.3], &[0.5], None)?;
/// let z = c.expectations_z_all(&state)?;
/// assert_eq!(z.len(), 2);
/// # Ok::<(), sqvae_quantum::QuantumError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Gate>,
    n_params: usize,
    n_inputs: usize,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` wires.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::UnsupportedRegisterSize`] for 0 or > 24 qubits.
    pub fn new(n_qubits: usize) -> Result<Self> {
        // Validate the register size once, here; `run`/`run_on` rely on this
        // and never re-check it.
        StateVector::validate_register(n_qubits)?;
        Ok(Circuit {
            n_qubits,
            ops: Vec::new(),
            n_params: 0,
            n_inputs: 0,
        })
    }

    /// Number of wires.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of distinct trainable parameters referenced (max index + 1).
    #[inline]
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Number of distinct input features referenced (max index + 1).
    #[inline]
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The gate sequence.
    #[inline]
    pub fn ops(&self) -> &[Gate] {
        &self.ops
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn track_param(&mut self, p: Param) {
        match p {
            Param::Train(i) => self.n_params = self.n_params.max(i + 1),
            Param::Input(i) => self.n_inputs = self.n_inputs.max(i + 1),
            Param::Fixed(_) => {}
        }
    }

    /// Appends a validated gate.
    ///
    /// # Errors
    ///
    /// Returns wire-validation errors from [`Gate::validate`].
    pub fn push(&mut self, gate: Gate) -> Result<()> {
        gate.validate(self.n_qubits)?;
        if let Some(p) = gate.param() {
            self.track_param(p);
        }
        self.ops.push(gate);
        Ok(())
    }

    /// Appends every gate in `gates`.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first validation error.
    pub fn extend(&mut self, gates: impl IntoIterator<Item = Gate>) -> Result<()> {
        for g in gates {
            self.push(g)?;
        }
        Ok(())
    }

    /// Appends a Hadamard gate.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid wire.
    pub fn h(&mut self, wire: usize) -> Result<()> {
        self.push(Gate::Hadamard(wire))
    }

    /// Appends a Pauli-X gate.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid wire.
    pub fn x(&mut self, wire: usize) -> Result<()> {
        self.push(Gate::PauliX(wire))
    }

    /// Appends an `RX` rotation.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid wire.
    pub fn rx(&mut self, wire: usize, angle: Param) -> Result<()> {
        self.push(Gate::RX(wire, angle))
    }

    /// Appends an `RY` rotation.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid wire.
    pub fn ry(&mut self, wire: usize, angle: Param) -> Result<()> {
        self.push(Gate::RY(wire, angle))
    }

    /// Appends an `RZ` rotation.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid wire.
    pub fn rz(&mut self, wire: usize, angle: Param) -> Result<()> {
        self.push(Gate::RZ(wire, angle))
    }

    /// Appends the paper's three-parameter rotation
    /// `R(φ, θ, ω) = RZ(ω)·RY(θ)·RZ(φ)` as three gates (applied φ first).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid wire.
    pub fn rot(&mut self, wire: usize, phi: Param, theta: Param, omega: Param) -> Result<()> {
        self.rz(wire, phi)?;
        self.ry(wire, theta)?;
        self.rz(wire, omega)
    }

    /// Appends a CNOT.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid wires or `control == target`.
    pub fn cnot(&mut self, control: usize, target: usize) -> Result<()> {
        self.push(Gate::CNOT(control, target))
    }

    /// Appends a controlled-Z.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid wires or `control == target`.
    pub fn cz(&mut self, control: usize, target: usize) -> Result<()> {
        self.push(Gate::CZ(control, target))
    }

    /// Appends a controlled `RZ` rotation.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid wires or `control == target`.
    pub fn crz(&mut self, control: usize, target: usize, angle: Param) -> Result<()> {
        self.push(Gate::CRZ(control, target, angle))
    }

    /// Checks caller-supplied binding vectors against the circuit's needs.
    pub(crate) fn check_bindings(&self, params: &[f64], inputs: &[f64]) -> Result<()> {
        if params.len() < self.n_params {
            return Err(QuantumError::ParamCountMismatch {
                expected: self.n_params,
                actual: params.len(),
            });
        }
        if inputs.len() < self.n_inputs {
            return Err(QuantumError::InputCountMismatch {
                expected: self.n_inputs,
                actual: inputs.len(),
            });
        }
        Ok(())
    }

    /// Produces the register execution starts from: a dimension-checked
    /// clone of `initial`, or `|0…0⟩`. Centralized so every executor (runs,
    /// parameter shifts, adjoint sweeps) validates embedded states the same
    /// way and returns the same typed error on a width mismatch.
    pub(crate) fn start_state<B: Backend>(&self, initial: Option<&B>) -> Result<B> {
        match initial {
            Some(s) => {
                if s.n_qubits() != self.n_qubits {
                    return Err(QuantumError::DimensionMismatch {
                        expected: 1 << self.n_qubits,
                        actual: s.dim(),
                    });
                }
                Ok(s.clone())
            }
            // The register size was validated at construction; this cannot
            // fail, but stays a typed error rather than a panic path.
            None => B::zero_state(self.n_qubits),
        }
    }

    /// Lowers the circuit against one trainable-parameter vector into a
    /// [`CompiledTape`]: rotation matrices resolve and fuse, CNOT runs
    /// collapse into permutations, controlled phases become diagonal ops,
    /// and input-bound embedding gates stay behind as late slots.
    ///
    /// This is the entry point of the compile-then-execute pipeline every
    /// `run_*` convenience wraps. Callers executing many rows against the
    /// same parameters (a mini-batch) should compile once and reuse the tape
    /// via [`CompiledTape::execute_on`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::ParamCountMismatch`] if `params` is shorter
    /// than the circuit references.
    pub fn compile(&self, params: &[f64]) -> Result<CompiledTape> {
        tape::compile(self, params)
    }

    /// Executes the circuit on a chosen simulator [`Backend`] and returns
    /// the final register.
    ///
    /// A documented wrapper over the compile-then-execute pipeline:
    /// [`Circuit::compile`] followed by [`CompiledTape::execute_on`].
    /// `initial` lets the caller start from an embedded state (amplitude
    /// embedding); `None` starts from `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns binding-count errors, a typed dimension mismatch if `initial`
    /// has a different width, or gate-application errors.
    pub fn run_on<B: Backend>(
        &self,
        params: &[f64],
        inputs: &[f64],
        initial: Option<&B>,
    ) -> Result<B> {
        self.check_bindings(params, inputs)?;
        self.compile(params)?.execute_on(inputs, initial)
    }

    /// Executes the circuit on the dense reference backend
    /// ([`Circuit::run_on`] with `B = StateVector`): a documented wrapper
    /// over [`Circuit::compile`] + [`CompiledTape::execute_on`].
    ///
    /// # Errors
    ///
    /// See [`Circuit::run_on`].
    pub fn run(
        &self,
        params: &[f64],
        inputs: &[f64],
        initial: Option<&StateVector>,
    ) -> Result<StateVector> {
        self.run_on(params, inputs, initial)
    }

    /// Per-wire `⟨Z⟩` for every wire, the measurement layer of the paper's
    /// encoders ("measurement expectation value is taken as output").
    ///
    /// # Errors
    ///
    /// Returns an error if `state` has a different register width.
    pub fn expectations_z_all<B: Backend>(&self, state: &B) -> Result<Vec<f64>> {
        if state.n_qubits() != self.n_qubits {
            return Err(QuantumError::DimensionMismatch {
                expected: 1 << self.n_qubits,
                actual: state.dim(),
            });
        }
        (0..self.n_qubits).map(|w| state.expectation_z(w)).collect()
    }

    /// Convenience: run then measure `⟨Z⟩` on every wire — a documented
    /// wrapper over [`Circuit::compile`] + [`CompiledTape::expectations_z_on`].
    ///
    /// # Errors
    ///
    /// See [`Circuit::run`].
    pub fn run_expectations_z(
        &self,
        params: &[f64],
        inputs: &[f64],
        initial: Option<&StateVector>,
    ) -> Result<Vec<f64>> {
        let state = self.run(params, inputs, initial)?;
        self.expectations_z_all(&state)
    }

    /// Convenience: run then return all basis-state probabilities (the
    /// measurement layer of the baseline quantum decoder) — a documented
    /// wrapper over [`Circuit::compile`] + [`CompiledTape::probabilities_on`].
    ///
    /// # Errors
    ///
    /// See [`Circuit::run`].
    pub fn run_probabilities(
        &self,
        params: &[f64],
        inputs: &[f64],
        initial: Option<&StateVector>,
    ) -> Result<Vec<f64>> {
        Ok(self.run(params, inputs, initial)?.probabilities())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn tracks_param_and_input_counts() {
        let mut c = Circuit::new(3).unwrap();
        c.ry(0, Param::Train(4)).unwrap();
        c.rz(1, Param::Input(2)).unwrap();
        c.rx(2, Param::Fixed(0.4)).unwrap();
        assert_eq!(c.n_params(), 5);
        assert_eq!(c.n_inputs(), 3);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn run_rejects_short_bindings() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        c.rz(0, Param::Input(0)).unwrap();
        assert!(matches!(
            c.run(&[], &[0.0], None),
            Err(QuantumError::ParamCountMismatch { .. })
        ));
        assert!(matches!(
            c.run(&[0.0], &[], None),
            Err(QuantumError::InputCountMismatch { .. })
        ));
    }

    #[test]
    fn run_rejects_mismatched_initial_state() {
        let c = Circuit::new(2).unwrap();
        let s = StateVector::zero_state(3).unwrap();
        assert!(matches!(
            c.run(&[], &[], Some(&s)),
            Err(QuantumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn ry_pi_via_train_binding() {
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Train(0)).unwrap();
        let z = c.run_expectations_z(&[PI], &[], None).unwrap();
        assert!((z[0] + 1.0).abs() < 1e-12);
        let z = c.run_expectations_z(&[0.0], &[], None).unwrap();
        assert!((z[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rot_decomposition_matches_expected_bloch_rotation() {
        // Rot(0, θ, 0) == RY(θ): ⟨Z⟩ = cos θ.
        let mut c = Circuit::new(1).unwrap();
        c.rot(0, Param::Fixed(0.0), Param::Train(0), Param::Fixed(0.0))
            .unwrap();
        let theta = 1.234;
        let z = c.run_expectations_z(&[theta], &[], None).unwrap();
        assert!((z[0] - theta.cos()).abs() < 1e-12);
    }

    #[test]
    fn bell_circuit_probabilities() {
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap();
        c.cnot(0, 1).unwrap();
        let p = c.run_probabilities(&[], &[], None).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extend_validates_each_gate() {
        let mut c = Circuit::new(2).unwrap();
        let r = c.extend([Gate::Hadamard(0), Gate::CNOT(5, 1)]);
        assert!(r.is_err());
        assert_eq!(c.len(), 1); // the valid prefix was appended
    }

    #[test]
    fn initial_state_is_respected() {
        let mut c = Circuit::new(1).unwrap();
        c.x(0).unwrap();
        let mut init = StateVector::zero_state(1).unwrap();
        // |0⟩ → X → |1⟩, starting from |1⟩ → |0⟩.
        Gate::PauliX(0).apply(&mut init, 0.0).unwrap();
        let out = c.run(&[], &[], Some(&init)).unwrap();
        assert!((out.probability(0) - 1.0).abs() < 1e-12);
    }
}
