//! Pluggable simulator backends.
//!
//! Every consumer of the simulator — [`crate::Circuit::run_on`], the whole
//! [`crate::grad`] module, and the quantum layers built on top — is generic
//! over a [`Backend`]: the set of primitive register operations a simulation
//! strategy must provide. Three implementations ship today:
//!
//! * [`DenseBackend`] (an alias for [`StateVector`]) — the reference
//!   semantics: every gate is one pass over the `2^n` amplitudes.
//! * [`FusedDenseBackend`] — the same dense amplitudes behind optimized
//!   kernels: runs of adjacent single-qubit gates on one wire fuse into a
//!   single 2×2 matmul pass, a run of CNOTs (the paper's ring template)
//!   collapses into one permutation pass, and controlled kernels enumerate
//!   only the control-set half-space instead of scanning the full register.
//! * [`SoaDenseBackend`] — amplitudes split into separate re/im `f64`
//!   planes (structure-of-arrays) so every kernel is a branch-free
//!   unit-stride loop the autovectorizer packs into FMA, with cache-blocked
//!   tape execution for large registers (see [`soa`]).
//!
//! The trait is the seam future GPU / sparse / tensor-network backends slot
//! into; the adjoint engine and trainers never name a concrete register type.
//! Backend *selection* (the `SQVAE_BACKEND` environment variable and the
//! `--backend` experiment flag) lives in `sqvae_nn::BackendKind`, next to the
//! analogous `Threads` policy.

pub mod soa;

pub use soa::SoaDenseBackend;

use crate::complex::C64;
use crate::embed::RotationAxis;
use crate::error::{QuantumError, Result};
use crate::gate::Gate;
use crate::state::StateVector;
use crate::tape::{CompiledTape, TapeOp};

/// The dense reference backend: exactly today's [`StateVector`] kernels.
pub type DenseBackend = StateVector;

/// Primitive register operations a simulation strategy must provide.
///
/// Semantics are fixed by [`StateVector`] (the reference implementation);
/// alternative backends may reorder floating-point work, so results are
/// required to match the dense backend only to high precision (the
/// equivalence property tests pin ≤ 1e-12), not bit-for-bit.
pub trait Backend: Clone + std::fmt::Debug {
    /// Short human-readable backend name (for logs and benches).
    const NAME: &'static str;

    /// Creates the all-zeros basis state `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::UnsupportedRegisterSize`] for 0 or more than
    /// [`crate::MAX_QUBITS`] qubits.
    fn zero_state(n_qubits: usize) -> Result<Self>
    where
        Self: Sized;

    /// Wraps an embedded dense state (amplitude embeddings produce a
    /// [`StateVector`]; backends adopt its amplitudes).
    fn from_statevector(state: StateVector) -> Self
    where
        Self: Sized;

    /// Materializes the register as a plain dense state (backends whose
    /// storage is not interleaved `C64`s — e.g. [`SoaDenseBackend`] — build
    /// one here; dense-storage backends clone).
    fn to_statevector(&self) -> StateVector;

    /// Converts back into a plain dense register.
    fn into_statevector(self) -> StateVector;

    /// Resets the register to `|0…0⟩` in place.
    fn reset(&mut self);

    /// Number of qubits in the register.
    fn n_qubits(&self) -> usize;

    /// Hilbert-space dimension `2^n`.
    #[inline]
    fn dim(&self) -> usize {
        1usize << self.n_qubits()
    }

    /// Bit position (from the least significant end) of `wire`.
    #[inline]
    fn bit_of_wire(&self, wire: usize) -> usize {
        self.n_qubits() - 1 - wire
    }

    /// Checks that `wire` addresses this register.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
    fn check_wire(&self, wire: usize) -> Result<()> {
        if wire >= self.n_qubits() {
            Err(QuantumError::WireOutOfRange {
                wire,
                n_qubits: self.n_qubits(),
            })
        } else {
            Ok(())
        }
    }

    /// Applies an arbitrary single-qubit unitary `m` (row-major 2×2) to
    /// `wire`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
    fn apply_single_qubit(&mut self, wire: usize, m: &[[C64; 2]; 2]) -> Result<()>;

    /// Applies a single-qubit unitary to `target`, controlled on `control`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid wires or `control == target`.
    fn apply_controlled(&mut self, control: usize, target: usize, m: &[[C64; 2]; 2]) -> Result<()>;

    /// Applies a CNOT with the given control and target wires.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid wires or `control == target`.
    fn apply_cnot(&mut self, control: usize, target: usize) -> Result<()>;

    /// Multiplies each amplitude by the diagonal entries `d` (the adjoint
    /// engine's observable application).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != self.dim()`.
    fn apply_diagonal_real(&mut self, d: &[f64]);

    /// Expectation value `⟨ψ|Z_wire|ψ⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
    fn expectation_z(&self, wire: usize) -> Result<f64>;

    /// Expectation of an arbitrary real diagonal observable.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != self.dim()`.
    fn expectation_diagonal(&self, d: &[f64]) -> f64;

    /// Probabilities of all `2^n` basis states.
    fn probabilities(&self) -> Vec<f64>;

    /// Writes the probabilities of all `2^n` basis states into `out`
    /// (cleared first, capacity reused) — the allocation-free counterpart of
    /// [`Backend::probabilities`] for batched readout paths that call it
    /// once per row.
    ///
    /// The default falls back to [`Backend::probabilities`]; backends
    /// override it to fill the reused buffer directly.
    fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.probabilities());
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    fn inner(&self, other: &Self) -> C64;

    /// Executes a gate sequence with resolved parameter/input bindings.
    ///
    /// The default walks the ops one gate at a time; backends override it to
    /// fuse or specialize whole sub-sequences (this is where
    /// [`FusedDenseBackend`] earns its name).
    ///
    /// # Errors
    ///
    /// Propagates wire-validation errors from the kernels.
    fn apply_ops(&mut self, ops: &[Gate], params: &[f64], inputs: &[f64]) -> Result<()>
    where
        Self: Sized,
    {
        for g in ops {
            let theta = g.param().map_or(0.0, |p| p.resolve(params, inputs));
            g.apply(self, theta)?;
        }
        Ok(())
    }

    /// Applies one pre-resolved op of a [`CompiledTape`]. `inputs` resolves
    /// late-bound embedding slots ([`TapeOp::Late`]); all other ops ignore
    /// it.
    ///
    /// The default maps each op onto the primitive kernels (a
    /// [`TapeOp::CnotRun`] becomes one CNOT per pair); backends override it
    /// to specialize whole ops, e.g. [`FusedDenseBackend`] applies a CNOT
    /// run as a single permutation pass.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; returns an input-count error if a late
    /// slot's index exceeds `inputs`.
    fn apply_tape_op(&mut self, op: &TapeOp, inputs: &[f64]) -> Result<()>
    where
        Self: Sized,
    {
        match op {
            TapeOp::OneQ { wire, m } => self.apply_single_qubit(*wire, m),
            TapeOp::Controlled { control, target, m } => {
                self.apply_controlled(*control, *target, m)
            }
            TapeOp::Phase { control, target, d } => {
                let m = [[d[0], C64::ZERO], [C64::ZERO, d[1]]];
                self.apply_controlled(*control, *target, &m)
            }
            TapeOp::CnotRun(pairs) => {
                for &(c, t) in pairs {
                    self.apply_cnot(c, t)?;
                }
                Ok(())
            }
            TapeOp::Late { gate, index } => {
                let theta = *inputs.get(*index).ok_or(QuantumError::InputCountMismatch {
                    expected: *index + 1,
                    actual: inputs.len(),
                })?;
                gate.apply(self, theta)
            }
        }
    }

    /// Executes a [`CompiledTape`]'s forward program: the batched
    /// counterpart of [`Backend::apply_ops`], with all parameter-dependent
    /// resolution already hoisted out by [`crate::Circuit::compile`].
    ///
    /// # Errors
    ///
    /// Returns an input-count error if `inputs` is shorter than the tape's
    /// late-bound slots reference, and propagates kernel errors.
    fn execute_tape(&mut self, tape: &CompiledTape, inputs: &[f64]) -> Result<()>
    where
        Self: Sized,
    {
        if inputs.len() < tape.n_inputs() {
            return Err(QuantumError::InputCountMismatch {
                expected: tape.n_inputs(),
                actual: inputs.len(),
            });
        }
        for op in tape.forward_ops() {
            self.apply_tape_op(op, inputs)?;
        }
        Ok(())
    }

    /// One rotation stop of the adjoint backward sweep, fused: returns the
    /// generator inner product `Im⟨bra|G|ket⟩` (where `self` is the ket and
    /// `G` is the Pauli generator of a rotation about `axis` on `wire`),
    /// then un-applies the pre-inverted rotation `inv` to both registers.
    ///
    /// The default materializes both registers as dense states for the
    /// read-only inner-product pass (a clone for non-dense storage), then
    /// performs the two single-qubit un-applications; every shipped backend
    /// overrides it with a clone-free traversal, [`FusedDenseBackend`] and
    /// [`SoaDenseBackend`] with a single fused pass that reads and writes
    /// each amplitude pair of both registers exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
    fn adjoint_rotation_stop(
        &mut self,
        bra: &mut Self,
        axis: RotationAxis,
        wire: usize,
        inv: &[[C64; 2]; 2],
    ) -> Result<f64>
    where
        Self: Sized,
    {
        self.check_wire(wire)?;
        let mask = 1usize << self.bit_of_wire(wire);
        let ket_sv = self.to_statevector();
        let bra_sv = bra.to_statevector();
        let acc = generator_inner_im(ket_sv.amplitudes(), bra_sv.amplitudes(), axis, mask);
        self.apply_single_qubit(wire, inv)?;
        bra.apply_single_qubit(wire, inv)?;
        Ok(acc)
    }
}

/// The generator inner product `Im⟨bra|G|ket⟩` over dense amplitude slices,
/// for the Pauli generator `G` of a rotation about `axis` on the wire whose
/// bit mask is `mask`. Shared by the dense backend's rotation stop and the
/// trait's fallback.
fn generator_inner_im(ket: &[C64], bra_amps: &[C64], axis: RotationAxis, mask: usize) -> f64 {
    let mut acc = 0.0;
    match axis {
        // (X|ψ⟩)_i = ψ_{i⊕m}: Im(conj(b_i)·ψ_{i⊕m}).
        RotationAxis::X => {
            for (i, bi) in bra_amps.iter().enumerate() {
                let x = ket[i ^ mask];
                acc += bi.re * x.im - bi.im * x.re;
            }
        }
        // (Y|ψ⟩)_i = ∓i·ψ_{i⊕m} (− with the bit clear): Im picks ∓Re.
        RotationAxis::Y => {
            for (i, bi) in bra_amps.iter().enumerate() {
                let x = ket[i ^ mask];
                let s = if i & mask == 0 { -1.0 } else { 1.0 };
                acc += s * (bi.re * x.re + bi.im * x.im);
            }
        }
        // (Z|ψ⟩)_i = ±ψ_i (+ with the bit clear).
        RotationAxis::Z => {
            for (i, bi) in bra_amps.iter().enumerate() {
                let x = ket[i];
                let s = if i & mask == 0 { 1.0 } else { -1.0 };
                acc += s * (bi.re * x.im - bi.im * x.re);
            }
        }
    }
    acc
}

impl Backend for StateVector {
    const NAME: &'static str = "dense";

    fn zero_state(n_qubits: usize) -> Result<Self> {
        StateVector::zero_state(n_qubits)
    }

    fn from_statevector(state: StateVector) -> Self {
        state
    }

    fn to_statevector(&self) -> StateVector {
        self.clone()
    }

    fn into_statevector(self) -> StateVector {
        self
    }

    fn reset(&mut self) {
        StateVector::reset(self);
    }

    fn n_qubits(&self) -> usize {
        StateVector::n_qubits(self)
    }

    fn apply_single_qubit(&mut self, wire: usize, m: &[[C64; 2]; 2]) -> Result<()> {
        StateVector::apply_single_qubit(self, wire, m)
    }

    fn apply_controlled(&mut self, control: usize, target: usize, m: &[[C64; 2]; 2]) -> Result<()> {
        StateVector::apply_controlled(self, control, target, m)
    }

    fn apply_cnot(&mut self, control: usize, target: usize) -> Result<()> {
        StateVector::apply_cnot(self, control, target)
    }

    fn apply_diagonal_real(&mut self, d: &[f64]) {
        StateVector::apply_diagonal_real(self, d);
    }

    fn expectation_z(&self, wire: usize) -> Result<f64> {
        StateVector::expectation_z(self, wire)
    }

    fn expectation_diagonal(&self, d: &[f64]) -> f64 {
        StateVector::expectation_diagonal(self, d)
    }

    fn probabilities(&self) -> Vec<f64> {
        StateVector::probabilities(self)
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        StateVector::probabilities_into(self, out);
    }

    fn inner(&self, other: &Self) -> C64 {
        StateVector::inner(self, other)
    }

    fn adjoint_rotation_stop(
        &mut self,
        bra: &mut Self,
        axis: RotationAxis,
        wire: usize,
        inv: &[[C64; 2]; 2],
    ) -> Result<f64> {
        self.check_wire(wire)?;
        let mask = 1usize << Backend::bit_of_wire(self, wire);
        let acc = generator_inner_im(self.amplitudes(), bra.amplitudes(), axis, mask);
        self.apply_single_qubit(wire, inv)?;
        bra.apply_single_qubit(wire, inv)?;
        Ok(acc)
    }
}

/// Dense amplitudes behind fused and half-space-specialized kernels.
///
/// Three optimizations over the reference [`DenseBackend`]:
///
/// 1. **Single-qubit fusion** — adjacent single-qubit gates on the same wire
///    (the template's `RZ·RY·RZ` rotations) compose into one 2×2 matrix
///    applied in a single pass over the amplitudes.
/// 2. **CNOT-run specialization** — a run of consecutive CNOTs (the paper's
///    ring entangler) is a basis-state permutation; the whole run becomes
///    one gather pass instead of one sweep per gate.
/// 3. **Half-space controlled kernels** — [`Backend::apply_controlled`] and
///    [`Backend::apply_cnot`] enumerate only the `dim/4` indices with the
///    control bit set and the target bit clear, instead of scanning and
///    testing all `2^n` indices.
///
/// Because fusion reorders floating-point arithmetic, results match the
/// dense backend to ~1e-15 per amplitude (property-tested at ≤1e-12), not
/// bit-for-bit. For a fixed backend selection, results remain fully
/// deterministic.
///
/// # Examples
///
/// ```
/// use sqvae_quantum::backend::{Backend, FusedDenseBackend};
/// use sqvae_quantum::{Circuit, Param};
///
/// let mut c = Circuit::new(2)?;
/// c.ry(0, Param::Fixed(0.3))?;
/// c.cnot(0, 1)?;
/// let state: FusedDenseBackend = c.run_on(&[], &[], None)?;
/// assert_eq!(state.probabilities().len(), 4);
/// # Ok::<(), sqvae_quantum::QuantumError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FusedDenseBackend(StateVector);

impl FusedDenseBackend {
    /// Enumerates the `dim/4` basis indices with `cbit` set and `tbit`
    /// clear, calling `f(i, j)` for each pair `(i, i | tmask)`.
    fn for_each_controlled_pair(
        &mut self,
        cbit: usize,
        tbit: usize,
        mut f: impl FnMut(usize, usize, &mut [C64]),
    ) {
        let cmask = 1usize << cbit;
        let tmask = 1usize << tbit;
        let (b1, b2) = if cbit < tbit {
            (cbit, tbit)
        } else {
            (tbit, cbit)
        };
        let dim = self.0.dim();
        let amps = self.0.amps_mut();
        // Expand each k in 0..dim/4 to a full index with zero bits inserted
        // at positions b1 and b2, then force the control bit on.
        for k in 0..(dim >> 2) {
            let low = k & ((1usize << b1) - 1);
            let mid = (k >> b1) & ((1usize << (b2 - b1 - 1)) - 1);
            let high = k >> (b2 - 1);
            let base = (high << (b2 + 1)) | (mid << (b1 + 1)) | low;
            let i = base | cmask;
            f(i, i | tmask, amps);
        }
    }

    /// Validates a controlled gate's wires.
    fn check_controlled(&self, control: usize, target: usize) -> Result<()> {
        self.check_wire(control)?;
        self.check_wire(target)?;
        if control == target {
            return Err(QuantumError::ControlEqualsTarget { wire: control });
        }
        Ok(())
    }

    /// Applies a run of consecutive CNOTs as one permutation pass.
    ///
    /// Each CNOT is the basis involution `π(i) = i ⊕ (bit_c(i) << t)`; the
    /// composed circuit sends `amps[σ(i)]` to slot `i`, where `σ` chains the
    /// per-gate involutions in reverse order — one gather over the register
    /// regardless of the run length.
    fn apply_cnot_run(&mut self, pairs: &[(usize, usize)]) -> Result<()> {
        for &(c, t) in pairs {
            self.check_controlled(c, t)?;
        }
        let n = self.0.n_qubits();
        let masks: Vec<(usize, usize)> = pairs
            .iter()
            .map(|&(c, t)| (n - 1 - c, 1usize << (n - 1 - t)))
            .collect();
        let amps = self.0.amps_mut();
        let gathered: Vec<C64> = (0..amps.len())
            .map(|i| {
                let mut src = i;
                for &(cbit, tmask) in masks.iter().rev() {
                    src ^= ((src >> cbit) & 1) * tmask;
                }
                amps[src]
            })
            .collect();
        *amps = gathered;
        Ok(())
    }
}

impl Backend for FusedDenseBackend {
    const NAME: &'static str = "fused";

    fn zero_state(n_qubits: usize) -> Result<Self> {
        Ok(FusedDenseBackend(StateVector::zero_state(n_qubits)?))
    }

    fn from_statevector(state: StateVector) -> Self {
        FusedDenseBackend(state)
    }

    fn to_statevector(&self) -> StateVector {
        self.0.clone()
    }

    fn into_statevector(self) -> StateVector {
        self.0
    }

    fn reset(&mut self) {
        self.0.reset();
    }

    fn n_qubits(&self) -> usize {
        self.0.n_qubits()
    }

    fn apply_single_qubit(&mut self, wire: usize, m: &[[C64; 2]; 2]) -> Result<()> {
        self.0.apply_single_qubit(wire, m)
    }

    fn apply_controlled(&mut self, control: usize, target: usize, m: &[[C64; 2]; 2]) -> Result<()> {
        self.check_controlled(control, target)?;
        let cbit = self.bit_of_wire(control);
        let tbit = self.bit_of_wire(target);
        let m = *m;
        self.for_each_controlled_pair(cbit, tbit, |i, j, amps| {
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = m[0][0] * a0 + m[0][1] * a1;
            amps[j] = m[1][0] * a0 + m[1][1] * a1;
        });
        Ok(())
    }

    fn apply_cnot(&mut self, control: usize, target: usize) -> Result<()> {
        self.check_controlled(control, target)?;
        let cbit = self.bit_of_wire(control);
        let tbit = self.bit_of_wire(target);
        self.for_each_controlled_pair(cbit, tbit, |i, j, amps| amps.swap(i, j));
        Ok(())
    }

    fn apply_diagonal_real(&mut self, d: &[f64]) {
        self.0.apply_diagonal_real(d);
    }

    fn expectation_z(&self, wire: usize) -> Result<f64> {
        self.0.expectation_z(wire)
    }

    fn expectation_diagonal(&self, d: &[f64]) -> f64 {
        self.0.expectation_diagonal(d)
    }

    fn probabilities(&self) -> Vec<f64> {
        self.0.probabilities()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        self.0.probabilities_into(out);
    }

    fn inner(&self, other: &Self) -> C64 {
        self.0.inner(&other.0)
    }

    fn apply_tape_op(&mut self, op: &TapeOp, inputs: &[f64]) -> Result<()> {
        match op {
            // A pre-compiled CNOT run is exactly the permutation pass the
            // eager fusion discovers gate by gate — apply it directly.
            TapeOp::CnotRun(pairs) if pairs.len() >= 2 => self.apply_cnot_run(pairs),
            TapeOp::CnotRun(pairs) => Backend::apply_cnot(self, pairs[0].0, pairs[0].1),
            // Controlled diagonal phases touch two amplitudes per pair with
            // one multiplication each — no 2×2 matmul needed.
            TapeOp::Phase { control, target, d } => {
                self.check_controlled(*control, *target)?;
                let cbit = self.bit_of_wire(*control);
                let tbit = self.bit_of_wire(*target);
                let d = *d;
                self.for_each_controlled_pair(cbit, tbit, |i, j, amps| {
                    amps[i] *= d[0];
                    amps[j] *= d[1];
                });
                Ok(())
            }
            TapeOp::OneQ { wire, m } => self.apply_single_qubit(*wire, m),
            TapeOp::Controlled { control, target, m } => {
                Backend::apply_controlled(self, *control, *target, m)
            }
            TapeOp::Late { gate, index } => {
                let theta = *inputs.get(*index).ok_or(QuantumError::InputCountMismatch {
                    expected: *index + 1,
                    actual: inputs.len(),
                })?;
                gate.apply(self, theta)
            }
        }
    }

    fn adjoint_rotation_stop(
        &mut self,
        bra: &mut Self,
        axis: RotationAxis,
        wire: usize,
        inv: &[[C64; 2]; 2],
    ) -> Result<f64> {
        self.check_wire(wire)?;
        let stride = 1usize << self.bit_of_wire(wire);
        let dim = self.dim();
        let inv = *inv;
        let ket = self.0.amps_mut();
        let bra_amps = bra.0.amps_mut();
        let mut acc = 0.0;
        let mut base = 0usize;
        while base < dim {
            for offset in 0..stride {
                let i0 = base + offset;
                let i1 = i0 + stride;
                let (k0, k1) = (ket[i0], ket[i1]);
                let (b0, b1) = (bra_amps[i0], bra_amps[i1]);
                // Generator inner product before the pair is overwritten:
                // i0 has the wire bit clear, i1 has it set.
                acc += match axis {
                    RotationAxis::X => {
                        (b0.re * k1.im - b0.im * k1.re) + (b1.re * k0.im - b1.im * k0.re)
                    }
                    RotationAxis::Y => {
                        (b1.re * k0.re + b1.im * k0.im) - (b0.re * k1.re + b0.im * k1.im)
                    }
                    RotationAxis::Z => {
                        (b0.re * k0.im - b0.im * k0.re) - (b1.re * k1.im - b1.im * k1.re)
                    }
                };
                ket[i0] = inv[0][0] * k0 + inv[0][1] * k1;
                ket[i1] = inv[1][0] * k0 + inv[1][1] * k1;
                bra_amps[i0] = inv[0][0] * b0 + inv[0][1] * b1;
                bra_amps[i1] = inv[1][0] * b0 + inv[1][1] * b1;
            }
            base += stride << 1;
        }
        Ok(acc)
    }

    fn apply_ops(&mut self, ops: &[Gate], params: &[f64], inputs: &[f64]) -> Result<()> {
        let resolve = |g: &Gate| g.param().map_or(0.0, |p| p.resolve(params, inputs));
        let mut i = 0;
        while i < ops.len() {
            let theta = resolve(&ops[i]);
            if let Some((wire, mut m)) = ops[i].single_qubit_matrix(theta) {
                // Fuse the maximal run of single-qubit gates on this wire.
                let mut j = i + 1;
                while j < ops.len() {
                    match ops[j].single_qubit_matrix(resolve(&ops[j])) {
                        Some((w2, m2)) if w2 == wire => {
                            m = matmul2(&m2, &m);
                            j += 1;
                        }
                        _ => break,
                    }
                }
                self.apply_single_qubit(wire, &m)?;
                i = j;
            } else if matches!(ops[i], Gate::CNOT(..)) {
                // Collect the maximal run of consecutive CNOTs (the ring
                // template) and apply it as one permutation pass.
                let mut pairs = Vec::new();
                let mut j = i;
                while let Some(Gate::CNOT(c, t)) = ops.get(j) {
                    pairs.push((*c, *t));
                    j += 1;
                }
                if pairs.len() >= 2 {
                    self.apply_cnot_run(&pairs)?;
                } else {
                    self.apply_cnot(pairs[0].0, pairs[0].1)?;
                }
                i = j;
            } else {
                ops[i].apply(self, theta)?;
                i += 1;
            }
        }
        Ok(())
    }
}

/// Row-major product `a · b` of two 2×2 complex matrices (gate `b` applied
/// first, then `a`). Shared with the tape compiler's fusion pass.
pub(crate) fn matmul2(a: &[[C64; 2]; 2], b: &[[C64; 2]; 2]) -> [[C64; 2]; 2] {
    [
        [
            a[0][0] * b[0][0] + a[0][1] * b[1][0],
            a[0][0] * b[0][1] + a[0][1] * b[1][1],
        ],
        [
            a[1][0] * b[0][0] + a[1][1] * b[1][0],
            a[1][0] * b[0][1] + a[1][1] * b[1][1],
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{hadamard, pauli_x, ry_matrix, rz_matrix};

    fn assert_states_close(a: &StateVector, b: &StateVector, tol: f64) {
        assert_eq!(a.dim(), b.dim());
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, tol), "{x} != {y}");
        }
    }

    #[test]
    fn names_distinguish_backends() {
        assert_eq!(<DenseBackend as Backend>::NAME, "dense");
        assert_eq!(FusedDenseBackend::NAME, "fused");
    }

    #[test]
    fn fused_half_space_cnot_matches_dense() {
        for n in 2..=4 {
            for c in 0..n {
                for t in 0..n {
                    if c == t {
                        continue;
                    }
                    let mut dense = StateVector::zero_state(n).unwrap();
                    for w in 0..n {
                        dense
                            .apply_single_qubit(w, &ry_matrix(0.3 + w as f64))
                            .unwrap();
                    }
                    let mut fused = FusedDenseBackend::from_statevector(dense.clone());
                    dense.apply_cnot(c, t).unwrap();
                    Backend::apply_cnot(&mut fused, c, t).unwrap();
                    assert_states_close(&dense, &fused.to_statevector(), 1e-15);
                }
            }
        }
    }

    #[test]
    fn fused_half_space_controlled_matches_dense() {
        let m = ry_matrix(1.1);
        for (c, t) in [(0usize, 2usize), (2, 0), (1, 2), (2, 1), (0, 1)] {
            let mut dense = StateVector::zero_state(3).unwrap();
            for w in 0..3 {
                dense.apply_single_qubit(w, &hadamard()).unwrap();
                dense
                    .apply_single_qubit(w, &rz_matrix(0.2 * w as f64))
                    .unwrap();
            }
            let mut fused = FusedDenseBackend::from_statevector(dense.clone());
            dense.apply_controlled(c, t, &m).unwrap();
            Backend::apply_controlled(&mut fused, c, t, &m).unwrap();
            assert_states_close(&dense, &fused.to_statevector(), 1e-15);
        }
    }

    #[test]
    fn cnot_run_is_one_permutation_pass() {
        // The 4-wire ring: CNOT(0,1), (1,2), (2,3), (3,0).
        let ring: Vec<(usize, usize)> = (0..4).map(|w| (w, (w + 1) % 4)).collect();
        let mut dense = StateVector::zero_state(4).unwrap();
        for w in 0..4 {
            dense
                .apply_single_qubit(w, &ry_matrix(0.4 + 0.3 * w as f64))
                .unwrap();
        }
        let mut fused = FusedDenseBackend::from_statevector(dense.clone());
        for &(c, t) in &ring {
            dense.apply_cnot(c, t).unwrap();
        }
        fused.apply_cnot_run(&ring).unwrap();
        // Pure permutations move amplitudes without arithmetic: exact match.
        assert_eq!(dense, fused.to_statevector());
    }

    #[test]
    fn single_qubit_fusion_composes_in_gate_order() {
        // X then H on wire 0 fused = H·X as a matrix.
        let fusedm = matmul2(&hadamard(), &pauli_x());
        let mut seq = StateVector::zero_state(1).unwrap();
        seq.apply_single_qubit(0, &pauli_x()).unwrap();
        seq.apply_single_qubit(0, &hadamard()).unwrap();
        let mut one = StateVector::zero_state(1).unwrap();
        one.apply_single_qubit(0, &fusedm).unwrap();
        assert_states_close(&seq, &one, 1e-15);
    }

    #[test]
    fn kernel_errors_surface_through_the_trait() {
        let mut f = FusedDenseBackend::zero_state(2).unwrap();
        assert!(Backend::apply_cnot(&mut f, 0, 0).is_err());
        assert!(Backend::apply_cnot(&mut f, 0, 5).is_err());
        assert!(Backend::apply_controlled(&mut f, 3, 0, &pauli_x()).is_err());
        assert!(f.apply_cnot_run(&[(0, 1), (1, 1)]).is_err());
    }

    #[test]
    fn reset_and_round_trip() {
        let mut f = FusedDenseBackend::zero_state(2).unwrap();
        Backend::apply_single_qubit(&mut f, 0, &pauli_x()).unwrap();
        assert!(f.to_statevector().probability(0b10) > 0.99);
        f.reset();
        assert!((f.to_statevector().probability(0) - 1.0).abs() < 1e-15);
        let sv = f.clone().into_statevector();
        assert_eq!(sv, f.to_statevector());
    }
}
