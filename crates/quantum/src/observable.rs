//! Diagonal observables.
//!
//! Every measurement in the paper (per-wire `⟨Z⟩`, basis-state probabilities)
//! is diagonal in the computational basis, so the gradient engine only ever
//! needs real diagonal operators. This module builds them.

use crate::error::{QuantumError, Result};

/// The diagonal of `Z` on `wire` in an `n_qubits` register: entry `i` is `+1`
/// when the wire's bit is 0 and `-1` when it is 1.
///
/// # Errors
///
/// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
///
/// # Examples
///
/// ```
/// let d = sqvae_quantum::observable::z_diagonal(2, 0)?;
/// assert_eq!(d, vec![1.0, 1.0, -1.0, -1.0]);
/// # Ok::<(), sqvae_quantum::QuantumError>(())
/// ```
pub fn z_diagonal(n_qubits: usize, wire: usize) -> Result<Vec<f64>> {
    if wire >= n_qubits {
        return Err(QuantumError::WireOutOfRange { wire, n_qubits });
    }
    let dim = 1usize << n_qubits;
    let mask = 1usize << (n_qubits - 1 - wire);
    Ok((0..dim)
        .map(|i| if i & mask == 0 { 1.0 } else { -1.0 })
        .collect())
}

/// The diagonal of the weighted sum `Σ_k w_k · Z_{wire_k}`.
///
/// This is the effective observable for reverse-mode differentiation of a
/// vector of `⟨Z⟩` outputs: with upstream gradient `w`, one adjoint pass
/// against this observable yields `dL/dθ` directly.
///
/// # Errors
///
/// Returns an error if `wires` and `weights` differ in length or a wire is
/// out of range.
pub fn weighted_z_sum_diagonal(
    n_qubits: usize,
    wires: &[usize],
    weights: &[f64],
) -> Result<Vec<f64>> {
    if wires.len() != weights.len() {
        return Err(QuantumError::DimensionMismatch {
            expected: wires.len(),
            actual: weights.len(),
        });
    }
    let dim = 1usize << n_qubits;
    let mut d = vec![0.0; dim];
    for (&w, &c) in wires.iter().zip(weights) {
        let zw = z_diagonal(n_qubits, w)?;
        for (di, zi) in d.iter_mut().zip(zw) {
            *di += c * zi;
        }
    }
    Ok(d)
}

/// The diagonal observable whose expectation is `Σ_i w_i · p_i` where `p_i`
/// are basis-state probabilities — i.e. `w` interpreted as the upstream
/// gradient of a probability readout. (`p_i = ⟨ψ|i⟩⟨i|ψ⟩`, so the weighted
/// sum of projectors is the diagonal operator with entries `w`.)
///
/// # Errors
///
/// Returns a dimension error if `weights.len() != 2^n_qubits`.
pub fn probability_diagonal(n_qubits: usize, weights: &[f64]) -> Result<Vec<f64>> {
    let dim = 1usize << n_qubits;
    if weights.len() != dim {
        return Err(QuantumError::DimensionMismatch {
            expected: dim,
            actual: weights.len(),
        });
    }
    Ok(weights.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    #[test]
    fn z_diagonal_per_wire() {
        assert_eq!(z_diagonal(2, 0).unwrap(), vec![1.0, 1.0, -1.0, -1.0]);
        assert_eq!(z_diagonal(2, 1).unwrap(), vec![1.0, -1.0, 1.0, -1.0]);
        assert!(z_diagonal(2, 2).is_err());
    }

    #[test]
    fn weighted_sum_combines_linearly() {
        let d = weighted_z_sum_diagonal(2, &[0, 1], &[2.0, -1.0]).unwrap();
        // 2·Z0 - Z1 at each basis state.
        assert_eq!(d, vec![2.0 - 1.0, 2.0 + 1.0, -2.0 - 1.0, -2.0 + 1.0]);
    }

    #[test]
    fn weighted_sum_rejects_length_mismatch() {
        assert!(weighted_z_sum_diagonal(2, &[0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn weighted_sum_expectation_matches_direct_sum() {
        let s = StateVector::from_amplitudes(vec![
            crate::C64::real(0.5),
            crate::C64::real(0.5),
            crate::C64::real(0.5),
            crate::C64::real(-0.5),
        ])
        .unwrap();
        let w = [0.7, -0.3];
        let d = weighted_z_sum_diagonal(2, &[0, 1], &w).unwrap();
        let direct = w[0] * s.expectation_z(0).unwrap() + w[1] * s.expectation_z(1).unwrap();
        assert!((s.expectation_diagonal(&d) - direct).abs() < 1e-12);
    }

    #[test]
    fn probability_diagonal_expectation_is_weighted_probs() {
        let s = StateVector::from_amplitudes(vec![
            crate::C64::real(1.0),
            crate::C64::real(2.0),
            crate::C64::real(0.0),
            crate::C64::real(1.0),
        ])
        .unwrap();
        let w = [1.0, 10.0, 100.0, 1000.0];
        let d = probability_diagonal(2, &w).unwrap();
        let p = s.probabilities();
        let expected: f64 = p.iter().zip(&w).map(|(pi, wi)| pi * wi).sum();
        assert!((s.expectation_diagonal(&d) - expected).abs() < 1e-12);
    }

    #[test]
    fn probability_diagonal_checks_dimension() {
        assert!(probability_diagonal(2, &[1.0; 3]).is_err());
    }
}
