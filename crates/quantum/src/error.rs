//! Error type shared across the simulator.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or executing quantum circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantumError {
    /// A wire index was at least the circuit's qubit count.
    WireOutOfRange {
        /// The offending wire.
        wire: usize,
        /// Number of qubits in the register.
        n_qubits: usize,
    },
    /// A control wire equals its target wire.
    ControlEqualsTarget {
        /// The duplicated wire.
        wire: usize,
    },
    /// The provided amplitude/feature vector does not fit the register.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// An amplitude vector had (numerically) zero norm and cannot be embedded.
    ZeroNorm,
    /// The number of bound trainable parameters does not match the circuit.
    ParamCountMismatch {
        /// Parameters the circuit references.
        expected: usize,
        /// Parameters supplied by the caller.
        actual: usize,
    },
    /// The number of bound input features does not match the circuit.
    InputCountMismatch {
        /// Inputs the circuit references.
        expected: usize,
        /// Inputs supplied by the caller.
        actual: usize,
    },
    /// A register size was requested that is not supported (0 or > 24 qubits).
    UnsupportedRegisterSize {
        /// Requested number of qubits.
        n_qubits: usize,
    },
    /// A trajectory average was requested over zero trajectories — there is
    /// no mean of an empty sample, and silently substituting one run would
    /// misreport the caller's requested precision.
    ZeroTrajectories,
}

impl fmt::Display for QuantumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantumError::WireOutOfRange { wire, n_qubits } => {
                write!(f, "wire {wire} out of range for {n_qubits}-qubit register")
            }
            QuantumError::ControlEqualsTarget { wire } => {
                write!(f, "control wire {wire} equals target wire")
            }
            QuantumError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            QuantumError::ZeroNorm => {
                write!(f, "cannot normalize a zero-norm amplitude vector")
            }
            QuantumError::ParamCountMismatch { expected, actual } => {
                write!(
                    f,
                    "parameter count mismatch: circuit uses {expected}, got {actual}"
                )
            }
            QuantumError::InputCountMismatch { expected, actual } => {
                write!(
                    f,
                    "input count mismatch: circuit uses {expected}, got {actual}"
                )
            }
            QuantumError::UnsupportedRegisterSize { n_qubits } => {
                write!(
                    f,
                    "unsupported register size of {n_qubits} qubits (must be 1..=24)"
                )
            }
            QuantumError::ZeroTrajectories => {
                write!(f, "cannot average expectations over zero trajectories")
            }
        }
    }
}

impl Error for QuantumError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, QuantumError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = QuantumError::WireOutOfRange {
            wire: 7,
            n_qubits: 4,
        };
        assert_eq!(e.to_string(), "wire 7 out of range for 4-qubit register");
        let e = QuantumError::ZeroNorm;
        assert!(e.to_string().contains("zero-norm"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantumError>();
    }
}
