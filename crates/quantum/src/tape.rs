//! Batch-compiled op tapes: lower a [`Circuit`] + parameter vector once,
//! execute many times.
//!
//! Within a mini-batch every row shares one trainable-parameter vector — only
//! the embedded inputs differ — yet gate-by-gate execution re-walks the op
//! list and re-derives the same rotation matrices for every row. Compiling
//! the circuit once per batch into a [`CompiledTape`] hoists all of that
//! parameter-dependent work out of the per-row loop:
//!
//! * runs of single-qubit gates **pre-fuse** into one 2×2 matrix per wire
//!   (fusing across gates on *other* wires too, since disjoint single-qubit
//!   unitaries commute — strictly more fusion than the eager
//!   [`FusedDenseBackend`](crate::FusedDenseBackend) pass);
//! * consecutive CNOTs (and SWAPs, as three CNOTs) collapse into one
//!   [`TapeOp::CnotRun`] permutation;
//! * controlled phases (`CZ`, `CRZ`) become two pre-resolved **diagonal
//!   phases** per controlled pair;
//! * input-dependent embedding gates stay behind as **late-bound**
//!   [`TapeOp::Late`] slots, resolved per row at execution time.
//!
//! The tape also carries a pre-lowered **adjoint program**
//! ([`CompiledTape::adjoint_steps`]): the backward sweep of adjoint
//! differentiation visits the same gates in reverse, and every fixed-gate
//! segment between two parametrized stops is pre-inverted and pre-fused the
//! same way. `crate::grad::adjoint` consumes it for the batched backward
//! pass.
//!
//! This is the compile-once/execute-many split of PennyLane-style adjoint
//! pipelines (Jones & Gacon) and Qulacs-style batched statevector execution.
//!
//! # Examples
//!
//! ```
//! use sqvae_quantum::{Circuit, DenseBackend, Param};
//!
//! let mut c = Circuit::new(2)?;
//! c.ry(0, Param::Input(0))?; // late-bound embedding slot
//! c.rot(1, Param::Train(0), Param::Train(1), Param::Train(2))?; // pre-fused
//! c.cnot(0, 1)?;
//!
//! let tape = c.compile(&[0.1, 0.2, 0.3])?; // once per batch
//! for x in [0.5, 1.5] {
//!     let state: DenseBackend = tape.execute_on(&[x], None)?; // per row
//!     assert_eq!(state.dim(), 4);
//! }
//! # Ok::<(), sqvae_quantum::QuantumError>(())
//! ```

use crate::backend::{matmul2, Backend};
use crate::circuit::Circuit;
use crate::complex::C64;
use crate::error::{QuantumError, Result};
use crate::gate::{rx_matrix, ry_matrix, rz_matrix, s_dagger_matrix, t_dagger_matrix, Gate, Param};

/// A pre-resolved operation on a compiled tape.
///
/// Everything that depends only on the circuit structure and the batch's
/// trainable parameters is resolved at compile time; only [`TapeOp::Late`]
/// still consults the per-row input vector.
#[derive(Debug, Clone, PartialEq)]
pub enum TapeOp {
    /// A pre-fused single-qubit unitary (row-major 2×2) on one wire.
    OneQ {
        /// Target wire.
        wire: usize,
        /// The fused 2×2 matrix.
        m: [[C64; 2]; 2],
    },
    /// A controlled single-qubit unitary with a pre-resolved matrix.
    Controlled {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
        /// The 2×2 matrix applied on the target within the control-set
        /// half-space.
        m: [[C64; 2]; 2],
    },
    /// A controlled diagonal phase (`CZ`, `CRZ`): within the control-set
    /// half-space, target-clear amplitudes scale by `d[0]` and target-set
    /// amplitudes by `d[1]`.
    Phase {
        /// Control wire.
        control: usize,
        /// Target wire.
        target: usize,
        /// The two diagonal phases.
        d: [C64; 2],
    },
    /// A run of consecutive CNOTs (the template's ring entangler), applied
    /// as one basis-state permutation by backends that support it.
    CnotRun(Vec<(usize, usize)>),
    /// A late-bound slot: a gate whose angle comes from the per-row input
    /// vector ([`Param::Input`]), resolved at execution time.
    Late {
        /// The deferred gate.
        gate: Gate,
        /// Index into the input-feature vector.
        index: usize,
    },
}

/// One instruction of a tape's pre-lowered backward (adjoint) sweep, stored
/// in reverse circuit order.
#[derive(Debug, Clone, PartialEq)]
pub enum AdjointStep {
    /// A pre-inverted, pre-fused segment of non-differentiated gates,
    /// un-applied from both the ket and the bra in one go.
    Unapply(Vec<TapeOp>),
    /// A parametrized gate the sweep differentiates at.
    Stop(AdjointStop),
}

/// A parametrized stop of the backward sweep: where the adjoint engine takes
/// `Im⟨bra|G|ket⟩` before un-applying the gate from both vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum AdjointStop {
    /// A gate bound to a trainable parameter; its inverse was pre-resolved
    /// at compile time.
    Train {
        /// The original gate (source of the generator).
        gate: Gate,
        /// Index into the trainable-parameter vector.
        index: usize,
        /// The pre-resolved inverse op.
        inv: TapeOp,
    },
    /// A gate bound to a per-row input feature; its inverse is resolved at
    /// execution time.
    Input {
        /// The original gate (source of the generator).
        gate: Gate,
        /// Index into the input-feature vector.
        index: usize,
    },
}

impl AdjointStop {
    /// The gate being differentiated at this stop.
    pub fn gate(&self) -> &Gate {
        match self {
            AdjointStop::Train { gate, .. } | AdjointStop::Input { gate, .. } => gate,
        }
    }

    /// Un-applies the stop's gate from `state`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; returns an input-count error if an
    /// [`AdjointStop::Input`] index exceeds `inputs`.
    pub fn unapply<B: Backend>(&self, state: &mut B, inputs: &[f64]) -> Result<()> {
        match self {
            AdjointStop::Train { inv, .. } => state.apply_tape_op(inv, inputs),
            AdjointStop::Input { gate, index } => {
                let theta = *inputs.get(*index).ok_or(QuantumError::InputCountMismatch {
                    expected: *index + 1,
                    actual: inputs.len(),
                })?;
                gate.apply_inverse(state, theta)
            }
        }
    }
}

/// A circuit lowered against one trainable-parameter vector: the product of
/// [`Circuit::compile`], reusable across every row of a batch.
///
/// Holds a flat forward program ([`CompiledTape::forward_ops`]) and the
/// matching pre-lowered backward sweep ([`CompiledTape::adjoint_steps`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTape {
    n_qubits: usize,
    n_params: usize,
    n_inputs: usize,
    forward: Vec<TapeOp>,
    adjoint: Vec<AdjointStep>,
}

impl CompiledTape {
    /// Number of wires.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of trainable parameters the source circuit references (already
    /// resolved into the tape).
    #[inline]
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Number of input features the tape's late-bound slots reference.
    #[inline]
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The flat forward program.
    #[inline]
    pub fn forward_ops(&self) -> &[TapeOp] {
        &self.forward
    }

    /// The pre-lowered backward sweep, in reverse circuit order.
    #[inline]
    pub fn adjoint_steps(&self) -> &[AdjointStep] {
        &self.adjoint
    }

    /// The register execution starts from: a dimension-checked clone of
    /// `initial`, or `|0…0⟩` (mirrors `Circuit::start_state`).
    pub(crate) fn start_state<B: Backend>(&self, initial: Option<&B>) -> Result<B> {
        match initial {
            Some(s) => {
                if s.n_qubits() != self.n_qubits {
                    return Err(QuantumError::DimensionMismatch {
                        expected: 1 << self.n_qubits,
                        actual: s.dim(),
                    });
                }
                Ok(s.clone())
            }
            None => B::zero_state(self.n_qubits),
        }
    }

    /// Executes the tape for one row and returns the final register.
    ///
    /// `inputs` resolves the late-bound embedding slots; `initial` lets the
    /// caller start from an embedded state (`None` = `|0…0⟩`).
    ///
    /// # Errors
    ///
    /// Returns an input-count error if `inputs` is shorter than the tape
    /// references, or a typed dimension mismatch if `initial` has a
    /// different width.
    pub fn execute_on<B: Backend>(&self, inputs: &[f64], initial: Option<&B>) -> Result<B> {
        let mut state = self.start_state(initial)?;
        state.execute_tape(self, inputs)?;
        Ok(state)
    }

    /// Executes the tape then measures `⟨Z⟩` on every wire.
    ///
    /// # Errors
    ///
    /// See [`CompiledTape::execute_on`].
    pub fn expectations_z_on<B: Backend>(
        &self,
        inputs: &[f64],
        initial: Option<&B>,
    ) -> Result<Vec<f64>> {
        let state = self.execute_on(inputs, initial)?;
        (0..self.n_qubits).map(|w| state.expectation_z(w)).collect()
    }

    /// Executes the tape then returns all basis-state probabilities.
    ///
    /// # Errors
    ///
    /// See [`CompiledTape::execute_on`].
    pub fn probabilities_on<B: Backend>(
        &self,
        inputs: &[f64],
        initial: Option<&B>,
    ) -> Result<Vec<f64>> {
        Ok(self.execute_on(inputs, initial)?.probabilities())
    }

    /// Executes the tape then writes all basis-state probabilities into
    /// `out` (cleared first, capacity reused) — the allocation-free readout
    /// used by batched per-row paths.
    ///
    /// # Errors
    ///
    /// See [`CompiledTape::execute_on`].
    pub fn probabilities_into_on<B: Backend>(
        &self,
        inputs: &[f64],
        initial: Option<&B>,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.execute_on(inputs, initial)?.probabilities_into(out);
        Ok(())
    }
}

/// Incrementally lowers resolved gates into a fused op list.
#[derive(Default)]
struct Lowerer {
    ops: Vec<TapeOp>,
}

impl Lowerer {
    /// Pushes a single-qubit matrix, fusing into the most recent op on the
    /// same wire. Trailing `OneQ` ops on *other* wires are scanned past —
    /// disjoint single-qubit unitaries commute — so interleaved per-wire
    /// rotation columns still fuse to one matrix per wire.
    fn push_single(&mut self, wire: usize, m: [[C64; 2]; 2]) {
        for op in self.ops.iter_mut().rev() {
            match op {
                TapeOp::OneQ { wire: w, m: acc } if *w == wire => {
                    *acc = matmul2(&m, acc);
                    return;
                }
                TapeOp::OneQ { .. } => {}
                _ => break,
            }
        }
        self.ops.push(TapeOp::OneQ { wire, m });
    }

    /// Pushes a CNOT, extending the current permutation run if one is open.
    fn push_cnot(&mut self, control: usize, target: usize) {
        if let Some(TapeOp::CnotRun(pairs)) = self.ops.last_mut() {
            pairs.push((control, target));
        } else {
            self.ops.push(TapeOp::CnotRun(vec![(control, target)]));
        }
    }

    /// Pushes a controlled diagonal phase, fusing into an adjacent phase op
    /// on the same wire pair.
    fn push_phase(&mut self, control: usize, target: usize, d: [C64; 2]) {
        if let Some(TapeOp::Phase {
            control: c,
            target: t,
            d: acc,
        }) = self.ops.last_mut()
        {
            if *c == control && *t == target {
                acc[0] *= d[0];
                acc[1] *= d[1];
                return;
            }
        }
        self.ops.push(TapeOp::Phase { control, target, d });
    }

    /// Lowers one gate with its resolved angle.
    fn lower(&mut self, gate: &Gate, theta: f64) {
        if let Some((w, m)) = gate.single_qubit_matrix(theta) {
            self.push_single(w, m);
            return;
        }
        match *gate {
            Gate::CNOT(c, t) => self.push_cnot(c, t),
            // SWAP = CNOT(a,b)·CNOT(b,a)·CNOT(a,b) merges into the run.
            Gate::SWAP(a, b) => {
                self.push_cnot(a, b);
                self.push_cnot(b, a);
                self.push_cnot(a, b);
            }
            Gate::CZ(c, t) => self.push_phase(c, t, [C64::ONE, -C64::ONE]),
            Gate::CRZ(c, t, _) => self.push_phase(
                c,
                t,
                [
                    C64::from_polar(1.0, -theta / 2.0),
                    C64::from_polar(1.0, theta / 2.0),
                ],
            ),
            Gate::CRX(c, t, _) => self.ops.push(TapeOp::Controlled {
                control: c,
                target: t,
                m: rx_matrix(theta),
            }),
            Gate::CRY(c, t, _) => self.ops.push(TapeOp::Controlled {
                control: c,
                target: t,
                m: ry_matrix(theta),
            }),
            // Every other gate kind reports a single-qubit matrix above.
            _ => unreachable!("gate {gate:?} has no tape lowering"),
        }
    }

    /// Lowers the inverse of a fixed-segment gate (no `Train`/`Input`
    /// binding; `theta` is the gate's fixed angle, if any).
    fn lower_inverse(&mut self, gate: &Gate, theta: f64) {
        match *gate {
            Gate::S(w) => self.push_single(w, s_dagger_matrix()),
            Gate::T(w) => self.push_single(w, t_dagger_matrix()),
            Gate::RX(..)
            | Gate::RY(..)
            | Gate::RZ(..)
            | Gate::CRX(..)
            | Gate::CRY(..)
            | Gate::CRZ(..) => self.lower(gate, -theta),
            // Paulis, Hadamard, CNOT, CZ, SWAP are self-inverse.
            _ => self.lower(gate, theta),
        }
    }
}

/// The pre-resolved inverse op of a trainable rotation stop.
fn inverse_op(gate: &Gate, theta: f64) -> TapeOp {
    match *gate {
        Gate::RX(w, _) => TapeOp::OneQ {
            wire: w,
            m: rx_matrix(-theta),
        },
        Gate::RY(w, _) => TapeOp::OneQ {
            wire: w,
            m: ry_matrix(-theta),
        },
        Gate::RZ(w, _) => TapeOp::OneQ {
            wire: w,
            m: rz_matrix(-theta),
        },
        Gate::CRX(c, t, _) => TapeOp::Controlled {
            control: c,
            target: t,
            m: rx_matrix(-theta),
        },
        Gate::CRY(c, t, _) => TapeOp::Controlled {
            control: c,
            target: t,
            m: ry_matrix(-theta),
        },
        Gate::CRZ(c, t, _) => TapeOp::Phase {
            control: c,
            target: t,
            d: [
                C64::from_polar(1.0, theta / 2.0),
                C64::from_polar(1.0, -theta / 2.0),
            ],
        },
        _ => unreachable!("only rotations carry parameter bindings"),
    }
}

/// Lowers `circuit` against `params` into a [`CompiledTape`] (the body of
/// [`Circuit::compile`]).
pub(crate) fn compile(circuit: &Circuit, params: &[f64]) -> Result<CompiledTape> {
    if params.len() < circuit.n_params() {
        return Err(QuantumError::ParamCountMismatch {
            expected: circuit.n_params(),
            actual: params.len(),
        });
    }

    // Forward program: resolve every non-input angle, fuse as we go. Gates
    // bound to input features stay late-bound and break fusion runs.
    let mut fwd = Lowerer::default();
    for gate in circuit.ops() {
        match gate.param() {
            Some(Param::Input(index)) => fwd.ops.push(TapeOp::Late { gate: *gate, index }),
            Some(Param::Train(i)) => fwd.lower(gate, params[i]),
            Some(Param::Fixed(v)) => fwd.lower(gate, v),
            None => fwd.lower(gate, 0.0),
        }
    }

    // Adjoint program: walk the gates in reverse; fixed gates between two
    // parametrized stops pre-invert and pre-fuse into one segment.
    let mut adjoint = Vec::new();
    let mut seg = Lowerer::default();
    let flush = |seg: &mut Lowerer, adjoint: &mut Vec<AdjointStep>| {
        if !seg.ops.is_empty() {
            adjoint.push(AdjointStep::Unapply(std::mem::take(&mut seg.ops)));
        }
    };
    for gate in circuit.ops().iter().rev() {
        match gate.param() {
            Some(Param::Train(index)) => {
                flush(&mut seg, &mut adjoint);
                adjoint.push(AdjointStep::Stop(AdjointStop::Train {
                    gate: *gate,
                    index,
                    inv: inverse_op(gate, params[index]),
                }));
            }
            Some(Param::Input(index)) => {
                flush(&mut seg, &mut adjoint);
                adjoint.push(AdjointStep::Stop(AdjointStop::Input { gate: *gate, index }));
            }
            Some(Param::Fixed(v)) => seg.lower_inverse(gate, v),
            None => seg.lower_inverse(gate, 0.0),
        }
    }
    flush(&mut seg, &mut adjoint);

    Ok(CompiledTape {
        n_qubits: circuit.n_qubits(),
        n_params: circuit.n_params(),
        n_inputs: circuit.n_inputs(),
        forward: fwd.ops,
        adjoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DenseBackend, FusedDenseBackend};
    use crate::embed::{angle_embedding_gates, RotationAxis};
    use crate::templates::{strongly_entangling_layers, EntangleRange};
    use crate::StateVector;

    fn paper_circuit(n: usize, layers: usize) -> Circuit {
        let mut c = Circuit::new(n).unwrap();
        c.extend(angle_embedding_gates(n, RotationAxis::Y, 0))
            .unwrap();
        c.extend(strongly_entangling_layers(n, layers, 0, EntangleRange::Ring).unwrap())
            .unwrap();
        c
    }

    #[test]
    fn template_compiles_to_one_matrix_per_wire_per_layer() {
        // Per layer: RZ·RY·RZ per wire fuse to one OneQ each, the CNOT ring
        // to one CnotRun; the embedding stays as n late-bound slots.
        let n = 4;
        let layers = 3;
        let c = paper_circuit(n, layers);
        let tape = c.compile(&vec![0.1; c.n_params()]).unwrap();
        let mut late = 0;
        let mut oneq = 0;
        let mut runs = 0;
        for op in tape.forward_ops() {
            match op {
                TapeOp::Late { .. } => late += 1,
                TapeOp::OneQ { .. } => oneq += 1,
                TapeOp::CnotRun(pairs) => {
                    assert_eq!(pairs.len(), n);
                    runs += 1;
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert_eq!(late, n);
        assert_eq!(oneq, n * layers);
        assert_eq!(runs, layers);
    }

    #[test]
    fn fusion_reaches_across_commuting_wires() {
        // H(0), H(1), H(0): the two wire-0 gates fuse through the commuting
        // wire-1 gate, leaving H·H = I on wire 0 and H on wire 1.
        let mut c = Circuit::new(2).unwrap();
        c.h(0).unwrap();
        c.h(1).unwrap();
        c.h(0).unwrap();
        let tape = c.compile(&[]).unwrap();
        assert_eq!(tape.forward_ops().len(), 2);
        let state: DenseBackend = tape.execute_on(&[], None).unwrap();
        let mut reference = StateVector::zero_state(2).unwrap();
        reference.apply_ops(c.ops(), &[], &[]).unwrap();
        for (a, b) in state.amplitudes().iter().zip(reference.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-15), "{a} vs {b}");
        }
    }

    #[test]
    fn swap_joins_the_cnot_run() {
        let mut c = Circuit::new(3).unwrap();
        c.cnot(0, 1).unwrap();
        c.push(Gate::SWAP(1, 2)).unwrap();
        c.cnot(2, 0).unwrap();
        let tape = c.compile(&[]).unwrap();
        assert_eq!(tape.forward_ops().len(), 1);
        assert!(matches!(&tape.forward_ops()[0], TapeOp::CnotRun(p) if p.len() == 5));
    }

    #[test]
    fn adjacent_phases_fuse() {
        let mut c = Circuit::new(2).unwrap();
        c.cz(0, 1).unwrap();
        c.crz(0, 1, Param::Fixed(0.7)).unwrap();
        let tape = c.compile(&[]).unwrap();
        assert_eq!(tape.forward_ops().len(), 1);
        let fused: FusedDenseBackend = {
            let mut s = FusedDenseBackend::zero_state(2).unwrap();
            for w in 0..2 {
                s.apply_single_qubit(w, &crate::gate::hadamard()).unwrap();
            }
            s.execute_tape(&tape, &[]).unwrap();
            s
        };
        let mut dense = StateVector::zero_state(2).unwrap();
        for w in 0..2 {
            dense
                .apply_single_qubit(w, &crate::gate::hadamard())
                .unwrap();
        }
        dense.apply_ops(c.ops(), &[], &[]).unwrap();
        for (a, b) in fused
            .to_statevector()
            .amplitudes()
            .iter()
            .zip(dense.amplitudes())
        {
            assert!(a.approx_eq(*b, 1e-15), "{a} vs {b}");
        }
    }

    #[test]
    fn execute_rejects_short_inputs_and_bad_initial() {
        let c = paper_circuit(3, 1);
        let tape = c.compile(&vec![0.0; c.n_params()]).unwrap();
        assert!(matches!(
            tape.execute_on::<DenseBackend>(&[0.0], None),
            Err(QuantumError::InputCountMismatch { .. })
        ));
        let wide = StateVector::zero_state(4).unwrap();
        assert!(matches!(
            tape.execute_on(&[0.0; 3], Some(&wide)),
            Err(QuantumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn compile_rejects_short_params() {
        let c = paper_circuit(2, 1);
        assert!(matches!(
            c.compile(&[0.0]),
            Err(QuantumError::ParamCountMismatch { .. })
        ));
    }

    #[test]
    fn adjoint_program_alternates_stops_and_fused_segments() {
        let c = paper_circuit(4, 2);
        let tape = c.compile(&vec![0.2; c.n_params()]).unwrap();
        let stops = tape
            .adjoint_steps()
            .iter()
            .filter(|s| matches!(s, AdjointStep::Stop(_)))
            .count();
        // Every rotation (3 per wire per layer) plus every embedding gate is
        // a stop; the CNOT rings are the only fixed segments.
        assert_eq!(stops, c.n_params() + c.n_inputs());
        let segments = tape
            .adjoint_steps()
            .iter()
            .filter(|s| matches!(s, AdjointStep::Unapply(_)))
            .count();
        assert_eq!(segments, 2); // one inverted CNOT ring per layer
    }
}
