//! Variational layer templates.
//!
//! The paper fixes its repeatable hidden layer to "rotation gates R(ψ, θ, ω)
//! acting on each qubit, followed by CNOT gates with a periodic layout"
//! (§III-A) — PennyLane's `StronglyEntanglingLayers`. This module generates
//! that structure as a reusable gate list.

use crate::error::Result;
use crate::gate::{Gate, Param};

/// How the entangling CNOT range is chosen per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntangleRange {
    /// Fixed range 1: CNOT(i, (i+1) mod n) — the "periodic layout" drawn in
    /// the paper's Fig. 2(b).
    #[default]
    Ring,
    /// PennyLane's default: layer `l` uses range `(l mod (n-1)) + 1`.
    PennyLane,
}

/// Number of trainable parameters consumed by
/// [`strongly_entangling_layers`]: `n_layers × n_qubits × 3`.
///
/// # Examples
///
/// ```
/// // The paper's baseline: L=3 layers on 6 qubits → 54 parameters per
/// // network, 108 for encoder+decoder (Table I).
/// assert_eq!(sqvae_quantum::templates::entangling_layer_params(6, 3), 54);
/// ```
pub fn entangling_layer_params(n_qubits: usize, n_layers: usize) -> usize {
    n_layers * n_qubits * 3
}

/// Builds `n_layers` strongly-entangling layers over `n_qubits` wires.
///
/// Each layer applies `Rot(φ, θ, ω)` (three trainable angles) to every wire,
/// then a cyclic cascade of CNOTs. Trainable parameters are bound to indices
/// `param_offset .. param_offset + n_layers*n_qubits*3` in layer-major,
/// wire-minor order.
///
/// Single-qubit registers get no entanglers (there is nothing to entangle).
///
/// # Errors
///
/// This function itself cannot fail for valid inputs; the `Result` propagates
/// the (unreachable for `n_qubits ≥ 1`) wire-validation plumbing so callers
/// can use `?` uniformly.
pub fn strongly_entangling_layers(
    n_qubits: usize,
    n_layers: usize,
    param_offset: usize,
    range: EntangleRange,
) -> Result<Vec<Gate>> {
    let mut gates = Vec::with_capacity(n_layers * n_qubits * 4);
    let mut p = param_offset;
    for layer in 0..n_layers {
        for w in 0..n_qubits {
            gates.push(Gate::RZ(w, Param::Train(p)));
            gates.push(Gate::RY(w, Param::Train(p + 1)));
            gates.push(Gate::RZ(w, Param::Train(p + 2)));
            p += 3;
        }
        if n_qubits > 1 {
            let r = match range {
                EntangleRange::Ring => 1,
                EntangleRange::PennyLane => (layer % (n_qubits - 1)) + 1,
            };
            for w in 0..n_qubits {
                gates.push(Gate::CNOT(w, (w + r) % n_qubits));
            }
        }
    }
    Ok(gates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn parameter_count_matches_paper_table1() {
        // 2 networks × 3 layers × 6 qubits × 3 = 108 quantum parameters.
        assert_eq!(2 * entangling_layer_params(6, 3), 108);
    }

    #[test]
    fn gate_counts_per_layer() {
        let gates = strongly_entangling_layers(4, 2, 0, EntangleRange::Ring).unwrap();
        // Per layer: 4 wires × 3 rotations + 4 CNOTs = 16 gates.
        assert_eq!(gates.len(), 2 * 16);
        let cnots = gates.iter().filter(|g| matches!(g, Gate::CNOT(..))).count();
        assert_eq!(cnots, 8);
    }

    #[test]
    fn parameters_are_contiguous_from_offset() {
        let gates = strongly_entangling_layers(3, 2, 10, EntangleRange::Ring).unwrap();
        let mut c = Circuit::new(3).unwrap();
        c.extend(gates).unwrap();
        assert_eq!(c.n_params(), 10 + entangling_layer_params(3, 2));
    }

    #[test]
    fn ring_entanglement_wraps_around() {
        let gates = strongly_entangling_layers(3, 1, 0, EntangleRange::Ring).unwrap();
        let cnots: Vec<_> = gates
            .iter()
            .filter_map(|g| match g {
                Gate::CNOT(c, t) => Some((*c, *t)),
                _ => None,
            })
            .collect();
        assert_eq!(cnots, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn pennylane_ranges_vary_by_layer() {
        let gates = strongly_entangling_layers(4, 3, 0, EntangleRange::PennyLane).unwrap();
        let cnots: Vec<_> = gates
            .iter()
            .filter_map(|g| match g {
                Gate::CNOT(c, t) => Some((*c, *t)),
                _ => None,
            })
            .collect();
        // Layer 0: r=1, layer 1: r=2, layer 2: r=3.
        assert_eq!(&cnots[0..4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(&cnots[4..8], &[(0, 2), (1, 3), (2, 0), (3, 1)]);
        assert_eq!(&cnots[8..12], &[(0, 3), (1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn single_qubit_register_has_no_entanglers() {
        let gates = strongly_entangling_layers(1, 3, 0, EntangleRange::Ring).unwrap();
        assert!(gates.iter().all(|g| !matches!(g, Gate::CNOT(..))));
        assert_eq!(gates.len(), 9); // 3 layers × 3 rotations
    }

    #[test]
    fn layers_execute_on_a_circuit() {
        let gates = strongly_entangling_layers(4, 5, 0, EntangleRange::Ring).unwrap();
        let mut c = Circuit::new(4).unwrap();
        c.extend(gates).unwrap();
        let n = c.n_params();
        assert_eq!(n, entangling_layer_params(4, 5));
        let params: Vec<f64> = (0..n).map(|i| 0.01 * i as f64).collect();
        let z = c.run_expectations_z(&params, &[], None).unwrap();
        assert_eq!(z.len(), 4);
        for zi in z {
            assert!((-1.0..=1.0).contains(&zi));
        }
    }
}
