//! Stochastic Pauli-noise trajectories.
//!
//! The paper targets "near-term quantum computers" but evaluates on a
//! noiseless simulator. This module adds the standard NISQ realism knob as
//! an *extension* (DESIGN.md §7): a depolarizing channel of strength `p`
//! after every gate, unravelled as stochastic Pauli insertions (trajectory
//! / Monte-Carlo wave-function method). Averaging expectations over
//! trajectories converges to the density-matrix result.

use crate::circuit::Circuit;
use crate::error::Result;
use crate::gate::Gate;
use crate::state::StateVector;
use rand::Rng;

/// A depolarizing noise model applied per gate per touched wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Probability of a depolarizing event on each wire a gate touches.
    pub p_depolarizing: f64,
}

impl NoiseModel {
    /// A noiseless model (trajectories reduce to exact simulation).
    pub fn noiseless() -> Self {
        NoiseModel {
            p_depolarizing: 0.0,
        }
    }

    /// A model with the given per-gate depolarizing probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn depolarizing(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        NoiseModel { p_depolarizing: p }
    }
}

/// Runs one noisy trajectory: after each gate, each touched wire suffers a
/// uniformly random Pauli (X, Y, or Z) with probability `p`.
///
/// # Errors
///
/// Returns circuit-execution errors.
pub fn run_trajectory(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
    noise: NoiseModel,
    rng: &mut impl Rng,
) -> Result<StateVector> {
    circuit.check_bindings(params, inputs)?;
    let mut state = match initial {
        Some(s) => s.clone(),
        None => StateVector::zero_state(circuit.n_qubits())?,
    };
    for g in circuit.ops() {
        let theta = g.param().map_or(0.0, |p| p.resolve(params, inputs));
        g.apply(&mut state, theta)?;
        if noise.p_depolarizing > 0.0 {
            for w in g.wires() {
                if rng.gen_bool(noise.p_depolarizing) {
                    let pauli = match rng.gen_range(0..3) {
                        0 => Gate::PauliX(w),
                        1 => Gate::PauliY(w),
                        _ => Gate::PauliZ(w),
                    };
                    pauli.apply(&mut state, 0.0)?;
                }
            }
        }
    }
    Ok(state)
}

/// Averages per-wire `⟨Z⟩` over `n_trajectories` noisy runs.
///
/// # Errors
///
/// Returns [`crate::error::QuantumError::ZeroTrajectories`] when
/// `n_trajectories == 0` (an empty sample has no mean; earlier versions
/// silently ran one trajectory instead), and circuit-execution errors
/// otherwise.
pub fn noisy_expectations_z(
    circuit: &Circuit,
    params: &[f64],
    inputs: &[f64],
    initial: Option<&StateVector>,
    noise: NoiseModel,
    n_trajectories: usize,
    rng: &mut impl Rng,
) -> Result<Vec<f64>> {
    if n_trajectories == 0 {
        return Err(crate::error::QuantumError::ZeroTrajectories);
    }
    let n = circuit.n_qubits();
    let mut acc = vec![0.0; n];
    for _ in 0..n_trajectories {
        let state = run_trajectory(circuit, params, inputs, initial, noise, rng)?;
        for (a, w) in acc.iter_mut().zip(0..n) {
            *a += state.expectation_z(w)?;
        }
    }
    let inv = 1.0 / n_trajectories as f64;
    Ok(acc.into_iter().map(|a| a * inv).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Param;
    use crate::templates::{strongly_entangling_layers, EntangleRange};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_circuit() -> (Circuit, Vec<f64>) {
        let mut c = Circuit::new(3).unwrap();
        c.extend(strongly_entangling_layers(3, 2, 0, EntangleRange::Ring).unwrap())
            .unwrap();
        let params: Vec<f64> = (0..c.n_params()).map(|i| 0.15 * i as f64 - 0.8).collect();
        (c, params)
    }

    #[test]
    fn noiseless_trajectory_matches_exact_simulation() {
        let (c, params) = test_circuit();
        let mut rng = StdRng::seed_from_u64(1);
        let exact = c.run(&params, &[], None).unwrap();
        let traj =
            run_trajectory(&c, &params, &[], None, NoiseModel::noiseless(), &mut rng).unwrap();
        // `run` executes the batch-compiled tape (fused matrices), the
        // trajectory applies gates one at a time: equal to fp tolerance.
        for (a, b) in exact.amplitudes().iter().zip(traj.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn noise_damps_expectations_toward_zero() {
        // A single RY(0.3) leaves ⟨Z⟩ ≈ 0.955; depolarizing noise must pull
        // the trajectory average toward 0.
        let mut c = Circuit::new(1).unwrap();
        c.ry(0, Param::Fixed(0.3)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let clean = noisy_expectations_z(&c, &[], &[], None, NoiseModel::noiseless(), 1, &mut rng)
            .unwrap()[0];
        let noisy = noisy_expectations_z(
            &c,
            &[],
            &[],
            None,
            NoiseModel::depolarizing(0.3),
            400,
            &mut rng,
        )
        .unwrap()[0];
        assert!(clean > 0.9);
        assert!(noisy.abs() < clean, "noisy {noisy} vs clean {clean}");
    }

    #[test]
    fn stronger_noise_damps_more() {
        let (c, params) = test_circuit();
        let expectation_magnitude = |p: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let z = noisy_expectations_z(
                &c,
                &params,
                &[],
                None,
                NoiseModel::depolarizing(p),
                300,
                &mut rng,
            )
            .unwrap();
            z.iter().map(|x| x.abs()).sum::<f64>()
        };
        let weak = expectation_magnitude(0.01, 3);
        let strong = expectation_magnitude(0.25, 3);
        assert!(strong < weak, "strong {strong} vs weak {weak}");
    }

    #[test]
    fn trajectories_stay_normalized() {
        let (c, params) = test_circuit();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let s = run_trajectory(
                &c,
                &params,
                &[],
                None,
                NoiseModel::depolarizing(0.5),
                &mut rng,
            )
            .unwrap();
            assert!((s.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_probability() {
        NoiseModel::depolarizing(1.5);
    }

    #[test]
    fn zero_trajectories_is_a_typed_error_not_a_silent_clamp() {
        let (c, params) = test_circuit();
        let mut rng = StdRng::seed_from_u64(5);
        let err =
            noisy_expectations_z(&c, &params, &[], None, NoiseModel::noiseless(), 0, &mut rng)
                .unwrap_err();
        assert_eq!(err, crate::error::QuantumError::ZeroTrajectories);
        // The RNG must be untouched: no hidden trajectory ran.
        use rand::RngCore;
        assert_eq!(rng.next_u64(), StdRng::seed_from_u64(5).next_u64());
    }
}
