//! Structure-of-arrays dense backend: split re/im planes for SIMD.
//!
//! [`SoaDenseBackend`] stores the register's `2^n` amplitudes as two
//! separate `Vec<f64>` planes (all real parts, then all imaginary parts)
//! instead of interleaved `C64`s. Every kernel then walks four (or eight)
//! independent unit-stride `f64` slices with branch-free loop bodies — the
//! access pattern the autovectorizer turns into packed FMA, which the
//! interleaved layout blocks behind shuffles.
//!
//! Two traversal strategies stack on top of the layout:
//!
//! * **Pair-block kernels** — every single-qubit / controlled / phase pass
//!   is decomposed into disjoint `(lo, hi)` slice pairs obtained with
//!   `split_at_mut`, so the innermost loop is pure `a[k]`/`b[k]` indexing
//!   over equal-length slices (no index arithmetic, no bounds-check
//!   residue, no branches).
//! * **Cache-blocked run execution** — [`Backend::execute_tape`] applies a
//!   run of consecutive single-qubit tape ops on *distinct* wires (they
//!   commute) one L1-sized tile at a time: each tile of amplitudes is
//!   loaded once and every op of the run is applied to it before moving on,
//!   instead of streaming the whole register from memory once per op. Only
//!   ops whose stride fits inside a tile participate; larger strides run as
//!   ordinary full passes. Tiling never reorders the ops, so the arithmetic
//!   is bit-identical to the untiled pass.
//!
//! Like the fused backend, reordered floating-point work means results
//! match the dense reference to ~1e-15 per amplitude (property-tested at
//! ≤ 1e-12), not bit-for-bit; for a fixed backend selection, results remain
//! fully deterministic across thread counts.

use crate::backend::Backend;
use crate::complex::C64;
use crate::embed::RotationAxis;
use crate::error::{QuantumError, Result};
use crate::state::StateVector;
use crate::tape::{CompiledTape, TapeOp};

/// Amplitudes per cache tile for run execution: 2048 amplitudes are two
/// 16 KiB planes, so one tile (re + im) fits comfortably in a 32 KiB L1d
/// alongside the loop's working set.
const TILE: usize = 1 << 11;

/// A row-major 2×2 complex matrix unpacked into scalar components, so the
/// kernel loop bodies are pure `f64` arithmetic on named lanes.
#[derive(Clone, Copy)]
struct M2 {
    r00: f64,
    i00: f64,
    r01: f64,
    i01: f64,
    r10: f64,
    i10: f64,
    r11: f64,
    i11: f64,
}

impl M2 {
    fn new(m: &[[C64; 2]; 2]) -> Self {
        M2 {
            r00: m[0][0].re,
            i00: m[0][0].im,
            r01: m[0][1].re,
            i01: m[0][1].im,
            r10: m[1][0].re,
            i10: m[1][0].im,
            r11: m[1][1].re,
            i11: m[1][1].im,
        }
    }
}

/// Applies the 2×2 matrix `m` to the amplitude pairs `(i0 + k, i1 + k)`
/// for `k in 0..len`, where the two blocks are disjoint (`i0 + len <= i1`).
/// Splitting both planes at `i1` yields four equal-length unit-stride
/// slices, which is exactly the shape the autovectorizer packs into FMA.
#[inline]
fn pair_block(re: &mut [f64], im: &mut [f64], i0: usize, i1: usize, len: usize, m: &M2) {
    debug_assert!(i0 + len <= i1);
    let (rl, rh) = re.split_at_mut(i1);
    let (il, ih) = im.split_at_mut(i1);
    let r0 = &mut rl[i0..i0 + len];
    let m0 = &mut il[i0..i0 + len];
    let r1 = &mut rh[..len];
    let m1 = &mut ih[..len];
    for k in 0..len {
        let ar = r0[k];
        let ai = m0[k];
        let br = r1[k];
        let bi = m1[k];
        r0[k] = m.r00 * ar - m.i00 * ai + m.r01 * br - m.i01 * bi;
        m0[k] = m.r00 * ai + m.i00 * ar + m.r01 * bi + m.i01 * br;
        r1[k] = m.r10 * ar - m.i10 * ai + m.r11 * br - m.i11 * bi;
        m1[k] = m.r10 * ai + m.i10 * ar + m.r11 * bi + m.i11 * br;
    }
}

/// Swaps the amplitude pairs `(i0 + k, i1 + k)` for `k in 0..len` (the CNOT
/// target flip on a half-space block).
#[inline]
fn swap_block(re: &mut [f64], im: &mut [f64], i0: usize, i1: usize, len: usize) {
    debug_assert!(i0 + len <= i1);
    let (rl, rh) = re.split_at_mut(i1);
    let (il, ih) = im.split_at_mut(i1);
    rl[i0..i0 + len].swap_with_slice(&mut rh[..len]);
    il[i0..i0 + len].swap_with_slice(&mut ih[..len]);
}

/// Multiplies the block starting at `i0` by `d0` and the block at `i1` by
/// `d1` (a controlled diagonal phase: one complex scalar per half-space).
#[inline]
fn phase_block(re: &mut [f64], im: &mut [f64], i0: usize, i1: usize, len: usize, d0: C64, d1: C64) {
    debug_assert!(i0 + len <= i1);
    let (rl, rh) = re.split_at_mut(i1);
    let (il, ih) = im.split_at_mut(i1);
    let r0 = &mut rl[i0..i0 + len];
    let m0 = &mut il[i0..i0 + len];
    let r1 = &mut rh[..len];
    let m1 = &mut ih[..len];
    for k in 0..len {
        let (ar, ai) = (r0[k], m0[k]);
        r0[k] = d0.re * ar - d0.im * ai;
        m0[k] = d0.re * ai + d0.im * ar;
        let (br, bi) = (r1[k], m1[k]);
        r1[k] = d1.re * br - d1.im * bi;
        m1[k] = d1.re * bi + d1.im * br;
    }
}

/// Dense amplitudes in structure-of-arrays form: split re/im `f64` planes
/// behind branch-free unit-stride kernels, plus cache-blocked tape
/// execution for large registers.
///
/// Pick it (`SQVAE_BACKEND=soa`, `--backend soa`,
/// `BackendKind::Soa`) when register size — not gate count — dominates:
/// at ≥ 10 qubits the packed-FMA passes pull ahead of the fused backend's
/// interleaved kernels, and the gap widens with every extra qubit.
///
/// # Examples
///
/// ```
/// use sqvae_quantum::backend::{Backend, SoaDenseBackend};
/// use sqvae_quantum::{Circuit, Param};
///
/// let mut c = Circuit::new(2)?;
/// c.ry(0, Param::Fixed(0.3))?;
/// c.cnot(0, 1)?;
/// let state: SoaDenseBackend = c.run_on(&[], &[], None)?;
/// assert_eq!(state.probabilities().len(), 4);
/// # Ok::<(), sqvae_quantum::QuantumError>(())
/// ```
#[derive(Debug)]
pub struct SoaDenseBackend {
    n_qubits: usize,
    re: Vec<f64>,
    im: Vec<f64>,
    /// Reused by the CNOT-run gather pass; not part of the logical state.
    scratch_re: Vec<f64>,
    scratch_im: Vec<f64>,
}

impl Clone for SoaDenseBackend {
    fn clone(&self) -> Self {
        // The adjoint sweep clones the ket into the bra register on the hot
        // path; the gather scratch is transient, so don't copy it.
        SoaDenseBackend {
            n_qubits: self.n_qubits,
            re: self.re.clone(),
            im: self.im.clone(),
            scratch_re: Vec::new(),
            scratch_im: Vec::new(),
        }
    }
}

impl PartialEq for SoaDenseBackend {
    fn eq(&self, other: &Self) -> bool {
        self.n_qubits == other.n_qubits && self.re == other.re && self.im == other.im
    }
}

impl SoaDenseBackend {
    /// Validates a controlled gate's wires.
    fn check_controlled(&self, control: usize, target: usize) -> Result<()> {
        self.check_wire(control)?;
        self.check_wire(target)?;
        if control == target {
            return Err(QuantumError::ControlEqualsTarget { wire: control });
        }
        Ok(())
    }

    /// Enumerates the half-space with `cbit` set and `tbit` clear as
    /// maximal unit-stride blocks, calling `f(re, im, i0, i1, len)` per
    /// block with `i1 = i0 + tmask`. Three nested loops cover the index
    /// bits above, between, and below the two fixed bits, so the inner
    /// extent is always `2^min(cbit, tbit)` contiguous amplitudes.
    fn for_each_controlled_block(
        &mut self,
        cbit: usize,
        tbit: usize,
        mut f: impl FnMut(&mut [f64], &mut [f64], usize, usize, usize),
    ) {
        let cmask = 1usize << cbit;
        let tmask = 1usize << tbit;
        let (b1, b2) = if cbit < tbit {
            (cbit, tbit)
        } else {
            (tbit, cbit)
        };
        let (s1, s2) = (1usize << b1, 1usize << b2);
        let dim = 1usize << self.n_qubits;
        let mut hi = 0;
        while hi < dim {
            let mut mid = 0;
            while mid < s2 {
                let i0 = hi + mid + cmask;
                f(&mut self.re, &mut self.im, i0, i0 + tmask, s1);
                mid += s1 << 1;
            }
            hi += s2 << 1;
        }
    }

    /// Applies a run of consecutive CNOTs.
    ///
    /// While the planes fit in L1 (`dim <= TILE`) the whole run collapses
    /// into one permutation gather through reused scratch planes (same
    /// index chaining as the fused backend's pass, but allocation-free
    /// after the first run). Larger registers take one streaming half-space
    /// swap per CNOT instead: the gather's scattered reads thrash the cache
    /// once the planes outgrow it, while `swap_with_slice` blocks stay
    /// unit-stride at every size.
    fn apply_cnot_run(&mut self, pairs: &[(usize, usize)]) -> Result<()> {
        for &(c, t) in pairs {
            self.check_controlled(c, t)?;
        }
        if pairs.len() == 1 || (1usize << self.n_qubits) > TILE {
            for &(c, t) in pairs {
                let cbit = self.bit_of_wire(c);
                let tbit = self.bit_of_wire(t);
                self.for_each_controlled_block(cbit, tbit, swap_block);
            }
            return Ok(());
        }
        let n = self.n_qubits;
        let masks: Vec<(usize, usize)> = pairs
            .iter()
            .map(|&(c, t)| (n - 1 - c, 1usize << (n - 1 - t)))
            .collect();
        let dim = 1usize << n;
        self.scratch_re.resize(dim, 0.0);
        self.scratch_im.resize(dim, 0.0);
        for i in 0..dim {
            let mut src = i;
            for &(cbit, tmask) in masks.iter().rev() {
                src ^= ((src >> cbit) & 1) * tmask;
            }
            self.scratch_re[i] = self.re[src];
            self.scratch_im[i] = self.im[src];
        }
        std::mem::swap(&mut self.re, &mut self.scratch_re);
        std::mem::swap(&mut self.im, &mut self.scratch_im);
        Ok(())
    }

    /// Applies a run of single-qubit matrices on distinct wires tile by
    /// tile: each `TILE`-amplitude window is brought into L1 once and every
    /// op of the run is applied to it before the next window streams in.
    /// Callers guarantee every `stride` satisfies `2 * stride <= tile`, so
    /// each op's pair blocks are tile-local and op order within a tile
    /// matches the untiled pass bit for bit.
    fn apply_oneq_run_tiled(&mut self, run: &[(usize, M2)]) {
        let dim = 1usize << self.n_qubits;
        let tile = TILE.min(dim);
        let mut t0 = 0;
        while t0 < dim {
            let re = &mut self.re[t0..t0 + tile];
            let im = &mut self.im[t0..t0 + tile];
            for &(stride, ref m) in run {
                let mut base = 0;
                while base < tile {
                    pair_block(re, im, base, base + stride, stride, m);
                    base += stride << 1;
                }
            }
            t0 += tile;
        }
    }

    /// One fused adjoint rotation-stop pass: per amplitude pair of both
    /// registers, accumulate `acc_fn(k0, k1, b0, b1)` (the axis-specific
    /// generator term, components ordered `k0r, k0i, k1r, k1i, b0r, b0i,
    /// b1r, b1i`), then overwrite both pairs with the pre-inverted rotation.
    fn adjoint_stop_pass<F>(&mut self, bra: &mut Self, stride: usize, m: &M2, acc_fn: F) -> f64
    where
        F: Fn(f64, f64, f64, f64, f64, f64, f64, f64) -> f64,
    {
        let dim = 1usize << self.n_qubits;
        let mut acc = 0.0;
        let mut base = 0;
        while base < dim {
            let i1 = base + stride;
            let (krl, krh) = self.re.split_at_mut(i1);
            let (kil, kih) = self.im.split_at_mut(i1);
            let (brl, brh) = bra.re.split_at_mut(i1);
            let (bil, bih) = bra.im.split_at_mut(i1);
            let kr0 = &mut krl[base..];
            let ki0 = &mut kil[base..];
            let kr1 = &mut krh[..stride];
            let ki1 = &mut kih[..stride];
            let br0 = &mut brl[base..];
            let bi0 = &mut bil[base..];
            let br1 = &mut brh[..stride];
            let bi1 = &mut bih[..stride];
            for k in 0..stride {
                let (k0r, k0i) = (kr0[k], ki0[k]);
                let (k1r, k1i) = (kr1[k], ki1[k]);
                let (b0r, b0i) = (br0[k], bi0[k]);
                let (b1r, b1i) = (br1[k], bi1[k]);
                acc += acc_fn(k0r, k0i, k1r, k1i, b0r, b0i, b1r, b1i);
                kr0[k] = m.r00 * k0r - m.i00 * k0i + m.r01 * k1r - m.i01 * k1i;
                ki0[k] = m.r00 * k0i + m.i00 * k0r + m.r01 * k1i + m.i01 * k1r;
                kr1[k] = m.r10 * k0r - m.i10 * k0i + m.r11 * k1r - m.i11 * k1i;
                ki1[k] = m.r10 * k0i + m.i10 * k0r + m.r11 * k1i + m.i11 * k1r;
                br0[k] = m.r00 * b0r - m.i00 * b0i + m.r01 * b1r - m.i01 * b1i;
                bi0[k] = m.r00 * b0i + m.i00 * b0r + m.r01 * b1i + m.i01 * b1r;
                br1[k] = m.r10 * b0r - m.i10 * b0i + m.r11 * b1r - m.i11 * b1i;
                bi1[k] = m.r10 * b0i + m.i10 * b0r + m.r11 * b1i + m.i11 * b1r;
            }
            base += stride << 1;
        }
        acc
    }
}

impl Backend for SoaDenseBackend {
    const NAME: &'static str = "soa";

    fn zero_state(n_qubits: usize) -> Result<Self> {
        StateVector::validate_register(n_qubits)?;
        let dim = 1usize << n_qubits;
        let mut re = vec![0.0; dim];
        re[0] = 1.0;
        Ok(SoaDenseBackend {
            n_qubits,
            re,
            im: vec![0.0; dim],
            scratch_re: Vec::new(),
            scratch_im: Vec::new(),
        })
    }

    fn from_statevector(state: StateVector) -> Self {
        let n_qubits = state.n_qubits();
        let amps = state.amplitudes();
        SoaDenseBackend {
            n_qubits,
            re: amps.iter().map(|a| a.re).collect(),
            im: amps.iter().map(|a| a.im).collect(),
            scratch_re: Vec::new(),
            scratch_im: Vec::new(),
        }
    }

    fn to_statevector(&self) -> StateVector {
        let mut sv = StateVector::zero_state(self.n_qubits).expect("register validated");
        for (a, (&r, &i)) in sv
            .amps_mut()
            .iter_mut()
            .zip(self.re.iter().zip(self.im.iter()))
        {
            *a = C64 { re: r, im: i };
        }
        sv
    }

    fn into_statevector(self) -> StateVector {
        self.to_statevector()
    }

    fn reset(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
        self.re[0] = 1.0;
    }

    fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    fn apply_single_qubit(&mut self, wire: usize, m: &[[C64; 2]; 2]) -> Result<()> {
        self.check_wire(wire)?;
        let stride = 1usize << self.bit_of_wire(wire);
        let m = M2::new(m);
        let dim = 1usize << self.n_qubits;
        let mut base = 0;
        while base < dim {
            pair_block(&mut self.re, &mut self.im, base, base + stride, stride, &m);
            base += stride << 1;
        }
        Ok(())
    }

    fn apply_controlled(&mut self, control: usize, target: usize, m: &[[C64; 2]; 2]) -> Result<()> {
        self.check_controlled(control, target)?;
        let cbit = self.bit_of_wire(control);
        let tbit = self.bit_of_wire(target);
        let m = M2::new(m);
        self.for_each_controlled_block(cbit, tbit, |re, im, i0, i1, len| {
            pair_block(re, im, i0, i1, len, &m);
        });
        Ok(())
    }

    fn apply_cnot(&mut self, control: usize, target: usize) -> Result<()> {
        self.check_controlled(control, target)?;
        let cbit = self.bit_of_wire(control);
        let tbit = self.bit_of_wire(target);
        self.for_each_controlled_block(cbit, tbit, swap_block);
        Ok(())
    }

    fn apply_diagonal_real(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.re.len(), "diagonal length mismatch");
        for (r, dk) in self.re.iter_mut().zip(d) {
            *r *= dk;
        }
        for (i, dk) in self.im.iter_mut().zip(d) {
            *i *= dk;
        }
    }

    fn expectation_z(&self, wire: usize) -> Result<f64> {
        self.check_wire(wire)?;
        let stride = 1usize << self.bit_of_wire(wire);
        let dim = 1usize << self.n_qubits;
        let mut acc = 0.0;
        let mut base = 0;
        while base < dim {
            let r0 = &self.re[base..base + stride];
            let i0 = &self.im[base..base + stride];
            let r1 = &self.re[base + stride..base + 2 * stride];
            let i1 = &self.im[base + stride..base + 2 * stride];
            let mut lo = 0.0;
            let mut hi = 0.0;
            for k in 0..stride {
                lo += r0[k] * r0[k] + i0[k] * i0[k];
                hi += r1[k] * r1[k] + i1[k] * i1[k];
            }
            acc += lo - hi;
            base += stride << 1;
        }
        Ok(acc)
    }

    fn expectation_diagonal(&self, d: &[f64]) -> f64 {
        assert_eq!(d.len(), self.re.len(), "diagonal length mismatch");
        let mut acc = 0.0;
        for ((r, i), dk) in self.re.iter().zip(self.im.iter()).zip(d) {
            acc += (r * r + i * i) * dk;
        }
        acc
    }

    fn probabilities(&self) -> Vec<f64> {
        self.re
            .iter()
            .zip(self.im.iter())
            .map(|(r, i)| r * r + i * i)
            .collect()
    }

    fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.re
                .iter()
                .zip(self.im.iter())
                .map(|(r, i)| r * r + i * i),
        );
    }

    fn inner(&self, other: &Self) -> C64 {
        assert_eq!(self.n_qubits, other.n_qubits, "dimension mismatch");
        let mut re = 0.0;
        let mut im = 0.0;
        for k in 0..self.re.len() {
            let (ar, ai) = (self.re[k], self.im[k]);
            let (br, bi) = (other.re[k], other.im[k]);
            re += ar * br + ai * bi;
            im += ar * bi - ai * br;
        }
        C64 { re, im }
    }

    fn apply_tape_op(&mut self, op: &TapeOp, inputs: &[f64]) -> Result<()> {
        match op {
            TapeOp::OneQ { wire, m } => self.apply_single_qubit(*wire, m),
            TapeOp::Controlled { control, target, m } => {
                Backend::apply_controlled(self, *control, *target, m)
            }
            // Controlled diagonal phases touch two amplitudes per pair with
            // one complex scalar each — no 2×2 matmul needed.
            TapeOp::Phase { control, target, d } => {
                self.check_controlled(*control, *target)?;
                let cbit = self.bit_of_wire(*control);
                let tbit = self.bit_of_wire(*target);
                let d = *d;
                self.for_each_controlled_block(cbit, tbit, |re, im, i0, i1, len| {
                    phase_block(re, im, i0, i1, len, d[0], d[1]);
                });
                Ok(())
            }
            TapeOp::CnotRun(pairs) => self.apply_cnot_run(pairs),
            TapeOp::Late { gate, index } => {
                let theta = *inputs.get(*index).ok_or(QuantumError::InputCountMismatch {
                    expected: *index + 1,
                    actual: inputs.len(),
                })?;
                gate.apply(self, theta)
            }
        }
    }

    fn execute_tape(&mut self, tape: &CompiledTape, inputs: &[f64]) -> Result<()> {
        if inputs.len() < tape.n_inputs() {
            return Err(QuantumError::InputCountMismatch {
                expected: tape.n_inputs(),
                actual: inputs.len(),
            });
        }
        let ops = tape.forward_ops();
        let tile = TILE.min(1usize << self.n_qubits);
        let mut run: Vec<(usize, M2)> = Vec::new();
        let mut i = 0;
        while i < ops.len() {
            // Collect the maximal run of consecutive single-qubit ops on
            // distinct wires whose pair blocks fit inside one tile; distinct
            // single-qubit unitaries commute, so the run can be applied
            // tile-by-tile without reordering any op relative to another.
            run.clear();
            let mut seen_wires = 0u32;
            let mut j = i;
            while let Some(TapeOp::OneQ { wire, m }) = ops.get(j) {
                let stride = 1usize << self.bit_of_wire(*wire);
                let bit = 1u32 << (*wire as u32);
                if stride << 1 > tile || seen_wires & bit != 0 {
                    break;
                }
                seen_wires |= bit;
                run.push((stride, M2::new(m)));
                j += 1;
            }
            if run.len() >= 2 {
                self.apply_oneq_run_tiled(&run);
                i = j;
            } else {
                self.apply_tape_op(&ops[i], inputs)?;
                i += 1;
            }
        }
        Ok(())
    }

    fn adjoint_rotation_stop(
        &mut self,
        bra: &mut Self,
        axis: RotationAxis,
        wire: usize,
        inv: &[[C64; 2]; 2],
    ) -> Result<f64> {
        self.check_wire(wire)?;
        let stride = 1usize << self.bit_of_wire(wire);
        let m = M2::new(inv);
        // The axis-specific generator terms (index 0 has the wire bit
        // clear, index 1 has it set), matching the fused backend's fused
        // traversal formulas.
        let acc = match axis {
            RotationAxis::X => {
                self.adjoint_stop_pass(bra, stride, &m, |k0r, k0i, k1r, k1i, b0r, b0i, b1r, b1i| {
                    (b0r * k1i - b0i * k1r) + (b1r * k0i - b1i * k0r)
                })
            }
            RotationAxis::Y => {
                self.adjoint_stop_pass(bra, stride, &m, |k0r, k0i, k1r, k1i, b0r, b0i, b1r, b1i| {
                    (b1r * k0r + b1i * k0i) - (b0r * k1r + b0i * k1i)
                })
            }
            RotationAxis::Z => {
                self.adjoint_stop_pass(bra, stride, &m, |k0r, k0i, k1r, k1i, b0r, b0i, b1r, b1i| {
                    (b0r * k0i - b0i * k0r) - (b1r * k1i - b1i * k1r)
                })
            }
        };
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{hadamard, pauli_x, ry_matrix, rz_matrix};

    fn assert_states_close(a: &StateVector, b: &StateVector, tol: f64) {
        assert_eq!(a.dim(), b.dim());
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!(x.approx_eq(*y, tol), "{x} != {y}");
        }
    }

    /// A dense register with every amplitude distinct and nonzero.
    fn busy_state(n: usize) -> StateVector {
        let mut s = StateVector::zero_state(n).unwrap();
        for w in 0..n {
            s.apply_single_qubit(w, &hadamard()).unwrap();
            s.apply_single_qubit(w, &ry_matrix(0.3 + 0.4 * w as f64))
                .unwrap();
            s.apply_single_qubit(w, &rz_matrix(0.2 * w as f64 + 0.1))
                .unwrap();
        }
        s
    }

    #[test]
    fn round_trips_through_statevector() {
        let dense = busy_state(4);
        let soa = SoaDenseBackend::from_statevector(dense.clone());
        assert_eq!(soa.to_statevector(), dense);
        assert_eq!(soa.clone().into_statevector(), dense);
    }

    #[test]
    fn single_qubit_matches_dense_on_every_wire() {
        for n in 1..=5 {
            for w in 0..n {
                let mut dense = busy_state(n);
                let mut soa = SoaDenseBackend::from_statevector(dense.clone());
                let m = ry_matrix(0.7 + w as f64);
                dense.apply_single_qubit(w, &m).unwrap();
                Backend::apply_single_qubit(&mut soa, w, &m).unwrap();
                assert_states_close(&dense, &soa.to_statevector(), 1e-14);
            }
        }
    }

    #[test]
    fn controlled_and_cnot_match_dense_on_every_wire_pair() {
        let m = ry_matrix(1.1);
        for n in 2..=4 {
            for c in 0..n {
                for t in 0..n {
                    if c == t {
                        continue;
                    }
                    let mut dense = busy_state(n);
                    let mut soa = SoaDenseBackend::from_statevector(dense.clone());
                    dense.apply_controlled(c, t, &m).unwrap();
                    Backend::apply_controlled(&mut soa, c, t, &m).unwrap();
                    assert_states_close(&dense, &soa.to_statevector(), 1e-14);

                    let mut dense2 = busy_state(n);
                    let mut soa2 = SoaDenseBackend::from_statevector(dense2.clone());
                    dense2.apply_cnot(c, t).unwrap();
                    Backend::apply_cnot(&mut soa2, c, t).unwrap();
                    // A CNOT only moves amplitudes: exact match.
                    assert_eq!(dense2, soa2.to_statevector());
                }
            }
        }
    }

    #[test]
    fn cnot_run_gather_matches_gate_by_gate() {
        let ring: Vec<(usize, usize)> = (0..5).map(|w| (w, (w + 1) % 5)).collect();
        let mut dense = busy_state(5);
        let mut soa = SoaDenseBackend::from_statevector(dense.clone());
        for &(c, t) in &ring {
            dense.apply_cnot(c, t).unwrap();
        }
        soa.apply_cnot_run(&ring).unwrap();
        assert_eq!(dense, soa.to_statevector());
        // The scratch planes were taken by the swap and must not leak into
        // equality or a cloned register.
        let clone = soa.clone();
        assert_eq!(clone, soa);
    }

    #[test]
    fn measurements_match_dense() {
        let dense = busy_state(5);
        let soa = SoaDenseBackend::from_statevector(dense.clone());
        for w in 0..5 {
            let a = dense.expectation_z(w).unwrap();
            let b = Backend::expectation_z(&soa, w).unwrap();
            assert!((a - b).abs() < 1e-13, "wire {w}: {a} vs {b}");
        }
        let d: Vec<f64> = (0..dense.dim()).map(|i| 0.1 * i as f64 - 0.4).collect();
        assert!((dense.expectation_diagonal(&d) - soa.expectation_diagonal(&d)).abs() < 1e-13);
        let pd = dense.probabilities();
        let ps = soa.probabilities();
        let mut reused = vec![0.0; 3]; // wrong size on purpose: must be replaced
        soa.probabilities_into(&mut reused);
        for ((a, b), c) in pd.iter().zip(&ps).zip(&reused) {
            assert!((a - b).abs() < 1e-15);
            assert_eq!(b, c);
        }
        let other = SoaDenseBackend::from_statevector(busy_state(5));
        let di = dense.inner(&other.to_statevector());
        let si = soa.inner(&other);
        assert!((di.re - si.re).abs() < 1e-13 && (di.im - si.im).abs() < 1e-13);
    }

    #[test]
    fn diagonal_phase_blocks_match_dense() {
        let mut dense = busy_state(3);
        let mut soa = SoaDenseBackend::from_statevector(dense.clone());
        let d: Vec<f64> = (0..8).map(|i| 1.0 - 0.05 * i as f64).collect();
        dense.apply_diagonal_real(&d);
        Backend::apply_diagonal_real(&mut soa, &d);
        assert_states_close(&dense, &soa.to_statevector(), 1e-15);
    }

    #[test]
    fn reset_and_zero_state() {
        let mut soa = SoaDenseBackend::from_statevector(busy_state(3));
        soa.reset();
        assert_eq!(soa, SoaDenseBackend::zero_state(3).unwrap());
        assert!(SoaDenseBackend::zero_state(0).is_err());
        assert_eq!(SoaDenseBackend::NAME, "soa");
    }

    #[test]
    fn kernel_errors_surface_through_the_trait() {
        let mut s = SoaDenseBackend::zero_state(2).unwrap();
        assert!(Backend::apply_single_qubit(&mut s, 5, &pauli_x()).is_err());
        assert!(Backend::apply_cnot(&mut s, 0, 0).is_err());
        assert!(Backend::apply_cnot(&mut s, 0, 5).is_err());
        assert!(Backend::apply_controlled(&mut s, 3, 0, &pauli_x()).is_err());
        assert!(s.apply_cnot_run(&[(0, 1), (1, 1)]).is_err());
    }

    #[test]
    fn tiled_run_execution_is_bit_identical_to_per_op_passes() {
        // A register big enough that several strides fit the tile and at
        // least one (wire 0) exceeds it when TILE is small relative to dim;
        // at 13 qubits dim = 8192 = 4 tiles of 2048.
        let n = 13;
        let mut c = crate::Circuit::new(n).unwrap();
        c.extend(
            crate::templates::strongly_entangling_layers(
                n,
                2,
                0,
                crate::templates::EntangleRange::Ring,
            )
            .unwrap(),
        )
        .unwrap();
        let params: Vec<f64> = (0..c.n_params()).map(|k| 0.01 * k as f64 - 1.0).collect();
        let tape = c.compile(&params).unwrap();

        let mut tiled = SoaDenseBackend::zero_state(n).unwrap();
        tiled.execute_tape(&tape, &[]).unwrap();

        // The untiled reference: every op through apply_tape_op directly.
        let mut untiled = SoaDenseBackend::zero_state(n).unwrap();
        for op in tape.forward_ops() {
            untiled.apply_tape_op(op, &[]).unwrap();
        }
        assert_eq!(tiled, untiled);
    }
}
