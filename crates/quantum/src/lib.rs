//! # sqvae-quantum
//!
//! A self-contained statevector quantum-circuit simulator with analytic
//! gradients, built as the quantum substrate for the DATE 2022 paper
//! *Scalable Variational Quantum Circuits for Autoencoder-based Drug
//! Discovery* (Li & Ghosh). It plays the role PennyLane's simulator plays in
//! the paper's experiments.
//!
//! ## What it provides
//!
//! * [`StateVector`] — dense `2^n`-amplitude register with single-qubit,
//!   controlled, and diagonal kernels plus `⟨Z⟩`/probability measurements.
//! * [`backend`] — the simulator [`Backend`] trait behind every executor:
//!   [`DenseBackend`] (the reference semantics), [`FusedDenseBackend`]
//!   (gate fusion + half-space controlled kernels), and [`SoaDenseBackend`]
//!   (split re/im planes + cache-blocked SIMD-friendly kernels); the seam
//!   future GPU/sparse/tensor-network backends plug into.
//! * [`Circuit`] — a gate list with deferred [`Param`] binding (trainable
//!   parameters vs. embedded input features).
//! * [`tape`] — the batch-compiled execution pipeline: [`Circuit::compile`]
//!   lowers the gate list against one parameter vector into a
//!   [`CompiledTape`] (pre-fused matrices, CNOT-run permutations, diagonal
//!   phases, late-bound embedding slots) that every row of a mini-batch
//!   reuses; every `run_*` convenience wraps it.
//! * [`embed`] — amplitude and angle embeddings (§II-C of the paper).
//! * [`templates`] — the paper's repeatable hidden layer
//!   (strongly-entangling `Rot` + CNOT-ring layers).
//! * [`grad`] — adjoint reverse-mode differentiation (production path),
//!   the parameter-shift rule (hardware-compatible path), and a
//!   finite-difference oracle, all cross-validated.
//!
//! ## Example: a trainable circuit and its gradient
//!
//! ```
//! use sqvae_quantum::{Circuit, Param};
//! use sqvae_quantum::templates::{strongly_entangling_layers, EntangleRange};
//! use sqvae_quantum::grad::adjoint;
//!
//! # fn main() -> Result<(), sqvae_quantum::QuantumError> {
//! let mut circuit = Circuit::new(4)?;
//! circuit.extend(strongly_entangling_layers(4, 3, 0, EntangleRange::Ring)?)?;
//! let params = vec![0.1; circuit.n_params()];
//!
//! // Forward: per-wire ⟨Z⟩ — the paper's encoder readout.
//! let z = circuit.run_expectations_z(&params, &[], None)?;
//! assert_eq!(z.len(), 4);
//!
//! // Backward: one adjoint pass gives dL/dθ for an upstream gradient.
//! let upstream = vec![1.0; 4];
//! let grads = adjoint::backward_expectations_z(&circuit, &params, &[], None, &upstream)?;
//! assert_eq!(grads.params.len(), params.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod circuit;
mod complex;
mod error;
mod gate;
mod state;

pub mod backend;
pub mod embed;
pub mod grad;
pub mod noise;
pub mod observable;
pub mod tape;
pub mod templates;

pub use backend::{Backend, DenseBackend, FusedDenseBackend, SoaDenseBackend};
pub use circuit::Circuit;
pub use complex::C64;
pub use error::{QuantumError, Result};
pub use gate::{
    hadamard, pauli_x, pauli_y, pauli_z, rx_matrix, ry_matrix, rz_matrix, s_dagger_matrix,
    s_matrix, t_dagger_matrix, t_matrix,
};
pub use gate::{Gate, Param};
pub use state::{StateVector, MAX_QUBITS};
pub use tape::CompiledTape;
