//! Gate intermediate representation.
//!
//! Gates carry [`Param`] bindings so one circuit can be re-executed with
//! different trainable parameters (`Param::Train`) and input features
//! (`Param::Input`) without rebuilding the op list — the same role PennyLane's
//! QNode plays in the paper's stack.

use crate::backend::Backend;
use crate::complex::C64;
use crate::error::{QuantumError, Result};

/// Where a gate angle comes from when the circuit is executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Param {
    /// A constant angle baked into the circuit.
    Fixed(f64),
    /// Index into the trainable parameter vector.
    Train(usize),
    /// Index into the input-feature vector (angle embedding).
    Input(usize),
}

impl Param {
    /// Resolves the binding against parameter and input vectors.
    #[inline]
    pub fn resolve(&self, params: &[f64], inputs: &[f64]) -> f64 {
        match *self {
            Param::Fixed(v) => v,
            Param::Train(i) => params[i],
            Param::Input(i) => inputs[i],
        }
    }
}

/// A quantum gate acting on one or two wires.
///
/// The parametrized rotations follow the PennyLane conventions used by the
/// paper: `RY(θ) = exp(-iθY/2)`, `RZ(θ) = exp(-iθZ/2)`,
/// `CRZ(θ) = diag(1, 1, e^{-iθ/2}, e^{iθ/2})`. The three-parameter rotation
/// `R(φ, θ, ω) = RZ(ω)·RY(θ)·RZ(φ)` is expressed as three consecutive
/// single-parameter gates by [`crate::circuit::Circuit::rot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Pauli-X on a wire.
    PauliX(usize),
    /// Pauli-Y on a wire.
    PauliY(usize),
    /// Pauli-Z on a wire.
    PauliZ(usize),
    /// Hadamard on a wire.
    Hadamard(usize),
    /// X-rotation `exp(-iθX/2)`.
    RX(usize, Param),
    /// Y-rotation `exp(-iθY/2)`.
    RY(usize, Param),
    /// Z-rotation `exp(-iθZ/2)`.
    RZ(usize, Param),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// T gate `diag(1, e^{iπ/4})`.
    T(usize),
    /// Controlled X-rotation (control, target, angle).
    CRX(usize, usize, Param),
    /// Controlled Y-rotation (control, target, angle).
    CRY(usize, usize, Param),
    /// Controlled Z-rotation (control, target, angle).
    CRZ(usize, usize, Param),
    /// Controlled-NOT (control, target).
    CNOT(usize, usize),
    /// Controlled-Z (control, target).
    CZ(usize, usize),
    /// SWAP of two wires.
    SWAP(usize, usize),
}

impl Gate {
    /// The parameter binding, when this gate is parametrized.
    pub fn param(&self) -> Option<Param> {
        match *self {
            Gate::RX(_, p)
            | Gate::RY(_, p)
            | Gate::RZ(_, p)
            | Gate::CRX(_, _, p)
            | Gate::CRY(_, _, p)
            | Gate::CRZ(_, _, p) => Some(p),
            _ => None,
        }
    }

    /// Whether this is a controlled rotation (differentiable with the
    /// four-term parameter-shift rule).
    pub fn is_controlled_rotation(&self) -> bool {
        matches!(self, Gate::CRX(..) | Gate::CRY(..) | Gate::CRZ(..))
    }

    /// Whether this gate's angle is differentiable with the two-term
    /// parameter-shift rule (generator eigenvalues ±1/2).
    pub fn is_single_qubit_rotation(&self) -> bool {
        matches!(self, Gate::RX(..) | Gate::RY(..) | Gate::RZ(..))
    }

    /// All wires the gate touches.
    pub fn wires(&self) -> Vec<usize> {
        match *self {
            Gate::PauliX(w)
            | Gate::PauliY(w)
            | Gate::PauliZ(w)
            | Gate::Hadamard(w)
            | Gate::S(w)
            | Gate::T(w)
            | Gate::RX(w, _)
            | Gate::RY(w, _)
            | Gate::RZ(w, _) => vec![w],
            Gate::CRX(c, t, _)
            | Gate::CRY(c, t, _)
            | Gate::CRZ(c, t, _)
            | Gate::CNOT(c, t)
            | Gate::CZ(c, t)
            | Gate::SWAP(c, t) => vec![c, t],
        }
    }

    /// Validates the gate's wires against a register size.
    ///
    /// # Errors
    ///
    /// Returns an error if a wire is out of range or control equals target.
    pub fn validate(&self, n_qubits: usize) -> Result<()> {
        for w in self.wires() {
            if w >= n_qubits {
                return Err(QuantumError::WireOutOfRange { wire: w, n_qubits });
            }
        }
        if let Gate::CRX(c, t, _)
        | Gate::CRY(c, t, _)
        | Gate::CRZ(c, t, _)
        | Gate::CNOT(c, t)
        | Gate::CZ(c, t)
        | Gate::SWAP(c, t) = *self
        {
            if c == t {
                return Err(QuantumError::ControlEqualsTarget { wire: c });
            }
        }
        Ok(())
    }

    /// The wire and 2×2 matrix of a purely single-qubit gate (with `theta`
    /// as the resolved angle), or `None` for multi-qubit gates. Backends use
    /// this to fuse runs of adjacent single-qubit gates on one wire into a
    /// single kernel pass.
    pub fn single_qubit_matrix(&self, theta: f64) -> Option<(usize, [[C64; 2]; 2])> {
        match *self {
            Gate::PauliX(w) => Some((w, pauli_x())),
            Gate::PauliY(w) => Some((w, pauli_y())),
            Gate::PauliZ(w) => Some((w, pauli_z())),
            Gate::Hadamard(w) => Some((w, hadamard())),
            Gate::S(w) => Some((w, s_matrix())),
            Gate::T(w) => Some((w, t_matrix())),
            Gate::RX(w, _) => Some((w, rx_matrix(theta))),
            Gate::RY(w, _) => Some((w, ry_matrix(theta))),
            Gate::RZ(w, _) => Some((w, rz_matrix(theta))),
            _ => None,
        }
    }

    /// Applies the gate to `state` with `theta` as the resolved angle (ignored
    /// for non-parametrized gates). Generic over the simulator [`Backend`];
    /// plain [`crate::StateVector`] registers use the dense reference kernels.
    ///
    /// # Errors
    ///
    /// Propagates wire-validation errors from the state kernels.
    pub fn apply<B: Backend>(&self, state: &mut B, theta: f64) -> Result<()> {
        match *self {
            Gate::PauliX(w) => state.apply_single_qubit(w, &pauli_x()),
            Gate::PauliY(w) => state.apply_single_qubit(w, &pauli_y()),
            Gate::PauliZ(w) => state.apply_single_qubit(w, &pauli_z()),
            Gate::Hadamard(w) => state.apply_single_qubit(w, &hadamard()),
            Gate::S(w) => state.apply_single_qubit(w, &s_matrix()),
            Gate::T(w) => state.apply_single_qubit(w, &t_matrix()),
            Gate::RX(w, _) => state.apply_single_qubit(w, &rx_matrix(theta)),
            Gate::RY(w, _) => state.apply_single_qubit(w, &ry_matrix(theta)),
            Gate::RZ(w, _) => state.apply_single_qubit(w, &rz_matrix(theta)),
            Gate::CRX(c, t, _) => state.apply_controlled(c, t, &rx_matrix(theta)),
            Gate::CRY(c, t, _) => state.apply_controlled(c, t, &ry_matrix(theta)),
            Gate::CRZ(c, t, _) => state.apply_controlled(c, t, &rz_matrix(theta)),
            Gate::CNOT(c, t) => state.apply_cnot(c, t),
            Gate::CZ(c, t) => state.apply_controlled(c, t, &pauli_z()),
            Gate::SWAP(a, b) => {
                // SWAP = CNOT(a,b)·CNOT(b,a)·CNOT(a,b).
                state.apply_cnot(a, b)?;
                state.apply_cnot(b, a)?;
                state.apply_cnot(a, b)
            }
        }
    }

    /// Applies the inverse (adjoint) of the gate.
    ///
    /// # Errors
    ///
    /// Propagates wire-validation errors from the state kernels.
    pub fn apply_inverse<B: Backend>(&self, state: &mut B, theta: f64) -> Result<()> {
        match *self {
            // Self-inverse gates.
            Gate::PauliX(_)
            | Gate::PauliY(_)
            | Gate::PauliZ(_)
            | Gate::Hadamard(_)
            | Gate::CNOT(..)
            | Gate::CZ(..)
            | Gate::SWAP(..) => self.apply(state, theta),
            // Fixed phase gates invert by conjugating the phase.
            Gate::S(w) => state.apply_single_qubit(w, &s_dagger_matrix()),
            Gate::T(w) => state.apply_single_qubit(w, &t_dagger_matrix()),
            // Rotations invert by negating the angle.
            Gate::RX(..)
            | Gate::RY(..)
            | Gate::RZ(..)
            | Gate::CRX(..)
            | Gate::CRY(..)
            | Gate::CRZ(..) => self.apply(state, -theta),
        }
    }

    /// Applies the gate's generator `G` (from `U(θ) = exp(-iθG/2)`) to
    /// `state`, in place. Used by adjoint differentiation:
    /// `dU/dθ |ψ⟩ = (-i/2)·G·U|ψ⟩`.
    ///
    /// # Errors
    ///
    /// Propagates wire-validation errors. Returns `Ok(false)` (leaving the
    /// state untouched) for non-parametrized gates.
    pub fn apply_generator<B: Backend>(&self, state: &mut B) -> Result<bool> {
        match *self {
            Gate::RX(w, _) => {
                state.apply_single_qubit(w, &pauli_x())?;
                Ok(true)
            }
            Gate::RY(w, _) => {
                state.apply_single_qubit(w, &pauli_y())?;
                Ok(true)
            }
            Gate::RZ(w, _) => {
                state.apply_single_qubit(w, &pauli_z())?;
                Ok(true)
            }
            Gate::CRZ(c, t, _) => {
                // Generator is |1⟩⟨1|_c ⊗ Z_t: zero out control-clear
                // amplitudes and apply Z on the target within the
                // control-set subspace. Implemented as a diagonal.
                state.check_wire(c)?;
                state.check_wire(t)?;
                let cmask = 1usize << state.bit_of_wire(c);
                let tmask = 1usize << state.bit_of_wire(t);
                let dim = state.dim();
                let mut d = vec![0.0f64; dim];
                for (i, di) in d.iter_mut().enumerate() {
                    if i & cmask != 0 {
                        *di = if i & tmask == 0 { 1.0 } else { -1.0 };
                    }
                }
                state.apply_diagonal_real(&d);
                Ok(true)
            }
            Gate::CRX(c, t, _) | Gate::CRY(c, t, _) => {
                // Generator |1⟩⟨1|_c ⊗ P_t: apply the Pauli on the target
                // within the control-set subspace, then project out the
                // control-clear subspace.
                let pauli = if matches!(self, Gate::CRX(..)) {
                    pauli_x()
                } else {
                    pauli_y()
                };
                state.apply_controlled(c, t, &pauli)?;
                let cmask = 1usize << state.bit_of_wire(c);
                let dim = state.dim();
                let d: Vec<f64> = (0..dim)
                    .map(|i| if i & cmask != 0 { 1.0 } else { 0.0 })
                    .collect();
                state.apply_diagonal_real(&d);
                Ok(true)
            }
            _ => Ok(false),
        }
    }
}

/// Pauli-X matrix.
pub fn pauli_x() -> [[C64; 2]; 2] {
    [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]
}

/// Pauli-Y matrix.
pub fn pauli_y() -> [[C64; 2]; 2] {
    [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]
}

/// Pauli-Z matrix.
pub fn pauli_z() -> [[C64; 2]; 2] {
    [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]]
}

/// Hadamard matrix.
pub fn hadamard() -> [[C64; 2]; 2] {
    let h = C64::real(std::f64::consts::FRAC_1_SQRT_2);
    [[h, h], [h, -h]]
}

/// Phase gate `S = diag(1, i)`.
pub fn s_matrix() -> [[C64; 2]; 2] {
    [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]]
}

/// `S† = diag(1, -i)`.
pub fn s_dagger_matrix() -> [[C64; 2]; 2] {
    [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::I]]
}

/// T gate `diag(1, e^{iπ/4})`.
pub fn t_matrix() -> [[C64; 2]; 2] {
    [
        [C64::ONE, C64::ZERO],
        [C64::ZERO, C64::from_polar(1.0, std::f64::consts::FRAC_PI_4)],
    ]
}

/// `T† = diag(1, e^{-iπ/4})`.
pub fn t_dagger_matrix() -> [[C64; 2]; 2] {
    [
        [C64::ONE, C64::ZERO],
        [
            C64::ZERO,
            C64::from_polar(1.0, -std::f64::consts::FRAC_PI_4),
        ],
    ]
}

/// `RX(θ) = exp(-iθX/2)`.
pub fn rx_matrix(theta: f64) -> [[C64; 2]; 2] {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [
        [C64::real(c), C64::new(0.0, -s)],
        [C64::new(0.0, -s), C64::real(c)],
    ]
}

/// `RY(θ) = exp(-iθY/2)`, the real rotation used by angle embedding (Fig. 3
/// of the paper lists its matrix).
pub fn ry_matrix(theta: f64) -> [[C64; 2]; 2] {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    [[C64::real(c), C64::real(-s)], [C64::real(s), C64::real(c)]]
}

/// `RZ(θ) = diag(e^{-iθ/2}, e^{iθ/2})`.
pub fn rz_matrix(theta: f64) -> [[C64; 2]; 2] {
    [
        [C64::from_polar(1.0, -theta / 2.0), C64::ZERO],
        [C64::ZERO, C64::from_polar(1.0, theta / 2.0)],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use std::f64::consts::PI;

    fn fresh(n: usize) -> StateVector {
        StateVector::zero_state(n).unwrap()
    }

    #[test]
    fn param_resolution() {
        let params = [0.5, 1.5];
        let inputs = [2.5];
        assert_eq!(Param::Fixed(9.0).resolve(&params, &inputs), 9.0);
        assert_eq!(Param::Train(1).resolve(&params, &inputs), 1.5);
        assert_eq!(Param::Input(0).resolve(&params, &inputs), 2.5);
    }

    #[test]
    fn ry_pi_flips_qubit() {
        let mut s = fresh(1);
        Gate::RY(0, Param::Fixed(PI)).apply(&mut s, PI).unwrap();
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ry_matches_paper_matrix() {
        // Paper Fig. 3: RY(φ) = [[cos(φ/2), -sin(φ/2)], [sin(φ/2), cos(φ/2)]].
        let m = ry_matrix(0.8);
        assert!((m[0][0].re - (0.4f64).cos()).abs() < 1e-15);
        assert!((m[0][1].re + (0.4f64).sin()).abs() < 1e-15);
        assert!((m[1][0].re - (0.4f64).sin()).abs() < 1e-15);
        assert!((m[1][1].re - (0.4f64).cos()).abs() < 1e-15);
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let m = rz_matrix(1.2);
        assert!((m[0][0] - C64::from_polar(1.0, -0.6)).abs() < 1e-15);
        assert!((m[1][1] - C64::from_polar(1.0, 0.6)).abs() < 1e-15);
        assert_eq!(m[0][1], C64::ZERO);
    }

    #[test]
    fn gate_inverse_round_trips() {
        let gates = vec![
            Gate::Hadamard(0),
            Gate::RX(0, Param::Fixed(0.3)),
            Gate::RY(1, Param::Fixed(-0.7)),
            Gate::RZ(0, Param::Fixed(1.9)),
            Gate::CNOT(0, 1),
            Gate::CRZ(0, 1, Param::Fixed(0.4)),
            Gate::CRX(0, 1, Param::Fixed(0.8)),
            Gate::CRY(1, 0, Param::Fixed(-1.1)),
            Gate::CZ(1, 0),
            Gate::S(0),
            Gate::T(1),
            Gate::SWAP(0, 1),
            Gate::PauliY(1),
        ];
        let mut s = fresh(2);
        // Put the register into a non-trivial state first.
        Gate::Hadamard(0).apply(&mut s, 0.0).unwrap();
        Gate::RY(1, Param::Fixed(0.0)).apply(&mut s, 0.9).unwrap();
        let reference = s.clone();
        for g in &gates {
            let theta = g.param().map_or(0.0, |p| p.resolve(&[], &[]));
            g.apply(&mut s, theta).unwrap();
        }
        for g in gates.iter().rev() {
            let theta = g.param().map_or(0.0, |p| p.resolve(&[], &[]));
            g.apply_inverse(&mut s, theta).unwrap();
        }
        for (a, b) in s.amplitudes().iter().zip(reference.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} != {b}");
        }
    }

    #[test]
    fn crz_matches_paper_matrix() {
        // CRZ(φ) = diag(1, 1, e^{-iφ/2}, e^{iφ/2}) with control = wire 0.
        let theta = 0.9;
        for (basis, expected) in [
            (0b00, C64::ONE),
            (0b01, C64::ONE),
            (0b10, C64::from_polar(1.0, -theta / 2.0)),
            (0b11, C64::from_polar(1.0, theta / 2.0)),
        ] {
            let mut s = fresh(2);
            // Prepare |basis⟩.
            if basis & 0b10 != 0 {
                Gate::PauliX(0).apply(&mut s, 0.0).unwrap();
            }
            if basis & 0b01 != 0 {
                Gate::PauliX(1).apply(&mut s, 0.0).unwrap();
            }
            Gate::CRZ(0, 1, Param::Fixed(theta))
                .apply(&mut s, theta)
                .unwrap();
            assert!(
                s.amplitude(basis).approx_eq(expected, 1e-12),
                "basis {basis:02b}: {} != {expected}",
                s.amplitude(basis)
            );
        }
    }

    #[test]
    fn generator_matches_finite_difference_of_gate() {
        // dU/dθ |ψ⟩ ≈ (U(θ+ε) - U(θ-ε))|ψ⟩ / (2ε) must equal (-i/2)·G·U(θ)|ψ⟩.
        let theta = 0.77;
        let eps = 1e-6;
        for gate in [
            Gate::RX(0, Param::Fixed(theta)),
            Gate::RY(0, Param::Fixed(theta)),
            Gate::RZ(0, Param::Fixed(theta)),
            Gate::CRX(0, 1, Param::Fixed(theta)),
            Gate::CRY(0, 1, Param::Fixed(theta)),
            Gate::CRZ(0, 1, Param::Fixed(theta)),
        ] {
            let mut base = fresh(2);
            Gate::Hadamard(0).apply(&mut base, 0.0).unwrap();
            Gate::Hadamard(1).apply(&mut base, 0.0).unwrap();

            let mut plus = base.clone();
            gate.apply(&mut plus, theta + eps).unwrap();
            let mut minus = base.clone();
            gate.apply(&mut minus, theta - eps).unwrap();

            let mut analytic = base.clone();
            gate.apply(&mut analytic, theta).unwrap();
            assert!(gate.apply_generator(&mut analytic).unwrap());

            for i in 0..base.dim() {
                let fd = (plus.amplitude(i) - minus.amplitude(i)) / (2.0 * eps);
                let an = analytic.amplitude(i).mul_i().scale(-0.5); // (-i/2)·G·U|ψ⟩
                assert!(
                    fd.approx_eq(an, 1e-5),
                    "{gate:?} amp {i}: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn generator_is_noop_for_fixed_gates() {
        let mut s = fresh(1);
        assert!(!Gate::Hadamard(0).apply_generator(&mut s).unwrap());
        assert_eq!(s, fresh(1));
    }

    #[test]
    fn validate_rejects_bad_wires() {
        assert!(Gate::RY(3, Param::Fixed(0.0)).validate(2).is_err());
        assert!(Gate::CNOT(0, 0).validate(2).is_err());
        assert!(Gate::CNOT(0, 1).validate(2).is_ok());
    }
}
