//! Dense statevector register.
//!
//! A [`StateVector`] stores the `2^n` complex amplitudes of an `n`-qubit
//! register. Wire 0 is the **most significant** bit of the basis index, i.e.
//! basis state `|q0 q1 … q(n-1)⟩` has index `q0·2^(n-1) + … + q(n-1)`,
//! matching the PennyLane convention used by the paper.

use crate::complex::C64;
use crate::error::{QuantumError, Result};

/// Maximum register size supported (keeps memory below ~512 MiB).
pub const MAX_QUBITS: usize = 24;

/// A normalized `n`-qubit pure state in the computational basis.
///
/// # Examples
///
/// ```
/// use sqvae_quantum::StateVector;
///
/// let state = StateVector::zero_state(3).unwrap();
/// assert_eq!(state.dim(), 8);
/// assert!((state.probability(0) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the all-zeros basis state `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::UnsupportedRegisterSize`] when `n_qubits` is 0
    /// or exceeds [`MAX_QUBITS`].
    pub fn zero_state(n_qubits: usize) -> Result<Self> {
        Self::validate_register(n_qubits)?;
        let mut amps = vec![C64::ZERO; 1 << n_qubits];
        amps[0] = C64::ONE;
        Ok(StateVector { n_qubits, amps })
    }

    /// Checks a register size against the simulator's supported range without
    /// allocating any amplitudes (used by [`crate::Circuit::new`] so circuits
    /// validate once at construction instead of on every run).
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::UnsupportedRegisterSize`] when `n_qubits` is 0
    /// or exceeds [`MAX_QUBITS`].
    pub fn validate_register(n_qubits: usize) -> Result<()> {
        if n_qubits == 0 || n_qubits > MAX_QUBITS {
            return Err(QuantumError::UnsupportedRegisterSize { n_qubits });
        }
        Ok(())
    }

    /// Resets the register to `|0…0⟩` in place (no reallocation).
    pub fn reset(&mut self) {
        for a in &mut self.amps {
            *a = C64::ZERO;
        }
        self.amps[0] = C64::ONE;
    }

    /// Creates a state from raw amplitudes, normalizing them.
    ///
    /// # Errors
    ///
    /// * [`QuantumError::DimensionMismatch`] if `amps.len()` is not a power of
    ///   two (or too large).
    /// * [`QuantumError::ZeroNorm`] if the amplitudes have zero norm.
    pub fn from_amplitudes(amps: Vec<C64>) -> Result<Self> {
        let dim = amps.len();
        if dim < 2 || !dim.is_power_of_two() || dim > (1 << MAX_QUBITS) {
            return Err(QuantumError::DimensionMismatch {
                expected: dim.max(2).next_power_of_two(),
                actual: dim,
            });
        }
        let n_qubits = dim.trailing_zeros() as usize;
        let mut state = StateVector { n_qubits, amps };
        state.normalize()?;
        Ok(state)
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Immutable view of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable access to the raw amplitude storage, for the optimized
    /// kernels of [`crate::backend::FusedDenseBackend`]. Crate-internal:
    /// callers must preserve the length invariant (`2^n_qubits`).
    #[inline]
    pub(crate) fn amps_mut(&mut self) -> &mut Vec<C64> {
        &mut self.amps
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    #[inline]
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// `|⟨index|ψ⟩|²`, the probability of measuring basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    #[inline]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Probabilities of all `2^n` basis states (sums to 1).
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Writes the probabilities of all `2^n` basis states into `out`,
    /// clearing it first and reusing its capacity — the allocation-free
    /// counterpart of [`StateVector::probabilities`] for per-row readout in
    /// batched paths.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.amps.iter().map(|a| a.norm_sqr()));
    }

    /// The L2 norm of the state (1 for normalized states).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales amplitudes to unit norm.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::ZeroNorm`] when the norm is numerically zero.
    pub fn normalize(&mut self) -> Result<()> {
        let n = self.norm();
        if n < 1e-300 {
            return Err(QuantumError::ZeroNorm);
        }
        let inv = 1.0 / n;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
        Ok(())
    }

    /// The inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.dim(), other.dim(), "inner product dimension mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Bit position (from the least significant end) of `wire`.
    #[inline]
    pub(crate) fn bit_of_wire(&self, wire: usize) -> usize {
        self.n_qubits - 1 - wire
    }

    /// Checks that `wire` addresses this register.
    pub(crate) fn check_wire(&self, wire: usize) -> Result<()> {
        if wire >= self.n_qubits {
            Err(QuantumError::WireOutOfRange {
                wire,
                n_qubits: self.n_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Applies an arbitrary single-qubit unitary `m` (row-major 2×2) to `wire`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
    pub fn apply_single_qubit(&mut self, wire: usize, m: &[[C64; 2]; 2]) -> Result<()> {
        self.check_wire(wire)?;
        let bit = self.bit_of_wire(wire);
        let stride = 1usize << bit;
        let dim = self.dim();
        let mut base = 0usize;
        while base < dim {
            for offset in 0..stride {
                let i0 = base + offset;
                let i1 = i0 + stride;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i1] = m[1][0] * a0 + m[1][1] * a1;
            }
            base += stride << 1;
        }
        Ok(())
    }

    /// Applies a single-qubit unitary to `target`, controlled on `control`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid wires or `control == target`.
    pub fn apply_controlled(
        &mut self,
        control: usize,
        target: usize,
        m: &[[C64; 2]; 2],
    ) -> Result<()> {
        self.check_wire(control)?;
        self.check_wire(target)?;
        if control == target {
            return Err(QuantumError::ControlEqualsTarget { wire: control });
        }
        let cbit = self.bit_of_wire(control);
        let tbit = self.bit_of_wire(target);
        let cmask = 1usize << cbit;
        let tmask = 1usize << tbit;
        let dim = self.dim();
        for i in 0..dim {
            // Visit each (i0, i1) pair exactly once: require control set and
            // target clear.
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
        Ok(())
    }

    /// Applies a CNOT with the given control and target wires.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid wires or `control == target`.
    pub fn apply_cnot(&mut self, control: usize, target: usize) -> Result<()> {
        self.check_wire(control)?;
        self.check_wire(target)?;
        if control == target {
            return Err(QuantumError::ControlEqualsTarget { wire: control });
        }
        let cmask = 1usize << self.bit_of_wire(control);
        let tmask = 1usize << self.bit_of_wire(target);
        for i in 0..self.dim() {
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                self.amps.swap(i, j);
            }
        }
        Ok(())
    }

    /// Multiplies each amplitude by the diagonal entries `d` (a diagonal
    /// operator application, used by the adjoint differentiation engine).
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != self.dim()`.
    pub fn apply_diagonal_real(&mut self, d: &[f64]) {
        assert_eq!(d.len(), self.dim(), "diagonal operator dimension mismatch");
        for (a, &x) in self.amps.iter_mut().zip(d) {
            *a = a.scale(x);
        }
    }

    /// Expectation value `⟨ψ|Z_wire|ψ⟩ ∈ [-1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
    pub fn expectation_z(&self, wire: usize) -> Result<f64> {
        self.check_wire(wire)?;
        let mask = 1usize << self.bit_of_wire(wire);
        let mut e = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if i & mask == 0 {
                e += p;
            } else {
                e -= p;
            }
        }
        Ok(e)
    }

    /// Expectation of an arbitrary real diagonal observable.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != self.dim()`.
    pub fn expectation_diagonal(&self, d: &[f64]) -> f64 {
        assert_eq!(
            d.len(),
            self.dim(),
            "diagonal observable dimension mismatch"
        );
        self.amps
            .iter()
            .zip(d)
            .map(|(a, &x)| a.norm_sqr() * x)
            .sum()
    }

    /// Marginal probability distribution over a subset of wires (in the
    /// order given): entry `k` is the probability that the selected wires
    /// read the bits of `k` (first selected wire = most significant).
    ///
    /// Useful for inspecting patched sub-circuits and latent registers.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
    pub fn marginal_probabilities(&self, wires: &[usize]) -> Result<Vec<f64>> {
        for &w in wires {
            self.check_wire(w)?;
        }
        let mut out = vec![0.0; 1 << wires.len()];
        for (i, a) in self.amps.iter().enumerate() {
            let mut k = 0usize;
            for &w in wires {
                k <<= 1;
                if i & (1 << self.bit_of_wire(w)) != 0 {
                    k |= 1;
                }
            }
            out[k] += a.norm_sqr();
        }
        Ok(out)
    }

    /// Draws `shots` computational-basis measurement outcomes from the
    /// state's probability distribution (inverse-CDF sampling).
    ///
    /// The cumulative distribution is precomputed once and each draw is a
    /// binary search, so sampling costs `O(dim + shots·log dim)` instead of
    /// the naive `O(shots·dim)` linear scan. The RNG stream consumption is
    /// identical to the scan (one uniform draw per shot), so the sampler is
    /// fully deterministic per seed. Outcomes match the scan except for
    /// draws landing inside the floating-point rounding gap of a bin
    /// boundary (the scan subtracts probabilities sequentially, the CDF
    /// accumulates them — a measure-≈0 event; the seed tests pin agreement
    /// on reference states).
    ///
    /// This models the finite-shot readout of real hardware; the rest of
    /// the reproduction uses exact expectations, as the paper's simulator
    /// does.
    pub fn sample_measurements(&self, shots: usize, rng: &mut impl rand::Rng) -> Vec<usize> {
        let mut cdf = Vec::with_capacity(self.dim());
        let mut acc = 0.0;
        for a in &self.amps {
            acc += a.norm_sqr();
            cdf.push(acc);
        }
        let last = self.dim() - 1;
        (0..shots)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                // First index with u < cdf[i]; a numerical remainder beyond
                // the final cumulative sum lands on the last state, exactly
                // as the linear scan's fallback did.
                cdf.partition_point(|&c| c <= u).min(last)
            })
            .collect()
    }

    /// Shot-based estimate of `⟨Z_wire⟩` from `shots` samples.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
    pub fn estimate_expectation_z(
        &self,
        wire: usize,
        shots: usize,
        rng: &mut impl rand::Rng,
    ) -> Result<f64> {
        self.check_wire(wire)?;
        let mask = 1usize << self.bit_of_wire(wire);
        let outcomes = self.sample_measurements(shots, rng);
        let plus = outcomes.iter().filter(|&&o| o & mask == 0).count();
        Ok((2 * plus) as f64 / shots.max(1) as f64 - 1.0)
    }

    /// Variance of the Pauli-Z observable on `wire`: `1 - ⟨Z⟩²`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantumError::WireOutOfRange`] for an invalid wire.
    pub fn variance_z(&self, wire: usize) -> Result<f64> {
        let e = self.expectation_z(wire)?;
        Ok(1.0 - e * e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn h_matrix() -> [[C64; 2]; 2] {
        let h = C64::real(FRAC_1_SQRT_2);
        [[h, h], [h, -h]]
    }

    #[test]
    fn zero_state_is_basis_zero() {
        let s = StateVector::zero_state(2).unwrap();
        assert_eq!(s.amplitude(0), C64::ONE);
        assert_eq!(s.probabilities(), vec![1.0, 0.0, 0.0, 0.0]);
        assert!((s.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_bad_register_sizes() {
        assert!(StateVector::zero_state(0).is_err());
        assert!(StateVector::zero_state(MAX_QUBITS + 1).is_err());
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(vec![C64::real(3.0), C64::real(4.0)]).unwrap();
        assert!((s.probability(0) - 9.0 / 25.0).abs() < 1e-12);
        assert!((s.probability(1) - 16.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_rejects_non_power_of_two() {
        let v = vec![C64::ONE; 3];
        assert!(StateVector::from_amplitudes(v).is_err());
    }

    #[test]
    fn from_amplitudes_rejects_zero_vector() {
        let v = vec![C64::ZERO; 4];
        assert_eq!(
            StateVector::from_amplitudes(v).unwrap_err(),
            QuantumError::ZeroNorm
        );
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::zero_state(1).unwrap();
        s.apply_single_qubit(0, &h_matrix()).unwrap();
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wire_zero_is_most_significant() {
        // Flip wire 0 of a 2-qubit register with X: |00> -> |10> = index 2.
        let x = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
        let mut s = StateVector::zero_state(2).unwrap();
        s.apply_single_qubit(0, &x).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
        // Flip wire 1: |00> -> |01> = index 1.
        let mut s = StateVector::zero_state(2).unwrap();
        s.apply_single_qubit(1, &x).unwrap();
        assert!((s.probability(0b01) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cnot_entangles_bell_state() {
        let mut s = StateVector::zero_state(2).unwrap();
        s.apply_single_qubit(0, &h_matrix()).unwrap();
        s.apply_cnot(0, 1).unwrap();
        assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
        assert!(s.probability(0b01) < 1e-12);
        assert!(s.probability(0b10) < 1e-12);
    }

    #[test]
    fn cnot_rejects_same_wires() {
        let mut s = StateVector::zero_state(2).unwrap();
        assert!(matches!(
            s.apply_cnot(1, 1),
            Err(QuantumError::ControlEqualsTarget { wire: 1 })
        ));
    }

    #[test]
    fn expectation_z_on_basis_states() {
        let s = StateVector::zero_state(2).unwrap();
        assert!((s.expectation_z(0).unwrap() - 1.0).abs() < 1e-12);
        let x = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
        let mut s = StateVector::zero_state(2).unwrap();
        s.apply_single_qubit(1, &x).unwrap();
        assert!((s.expectation_z(1).unwrap() + 1.0).abs() < 1e-12);
        assert!((s.expectation_z(0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_z_of_superposition_is_zero() {
        let mut s = StateVector::zero_state(1).unwrap();
        s.apply_single_qubit(0, &h_matrix()).unwrap();
        assert!(s.expectation_z(0).unwrap().abs() < 1e-12);
        assert!((s.variance_z(0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_diagonal_matches_z() {
        let mut s = StateVector::zero_state(2).unwrap();
        s.apply_single_qubit(0, &h_matrix()).unwrap();
        s.apply_cnot(0, 1).unwrap();
        // Z on wire 0 has diagonal (+1, +1, -1, -1).
        let d = vec![1.0, 1.0, -1.0, -1.0];
        let ez = s.expectation_z(0).unwrap();
        assert!((s.expectation_diagonal(&d) - ez).abs() < 1e-12);
    }

    #[test]
    fn controlled_gate_acts_only_when_control_set() {
        let x = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
        // Control clear: nothing happens.
        let mut s = StateVector::zero_state(2).unwrap();
        s.apply_controlled(0, 1, &x).unwrap();
        assert!((s.probability(0b00) - 1.0).abs() < 1e-12);
        // Control set: target flips.
        let mut s = StateVector::zero_state(2).unwrap();
        s.apply_single_qubit(0, &x).unwrap(); // |10>
        s.apply_controlled(0, 1, &x).unwrap(); // -> |11>
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_of_orthogonal_states() {
        let s0 = StateVector::zero_state(1).unwrap();
        let x = [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]];
        let mut s1 = StateVector::zero_state(1).unwrap();
        s1.apply_single_qubit(0, &x).unwrap();
        assert!(s0.inner(&s1).abs() < 1e-12);
        assert!((s0.inner(&s0) - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn marginal_probabilities_of_bell_state() {
        let mut s = StateVector::zero_state(2).unwrap();
        s.apply_single_qubit(0, &h_matrix()).unwrap();
        s.apply_cnot(0, 1).unwrap();
        // Each single wire is maximally mixed.
        for w in 0..2 {
            let m = s.marginal_probabilities(&[w]).unwrap();
            assert!((m[0] - 0.5).abs() < 1e-12);
            assert!((m[1] - 0.5).abs() < 1e-12);
        }
        // Both wires jointly recover the full distribution.
        let m = s.marginal_probabilities(&[0, 1]).unwrap();
        assert!((m[0] - 0.5).abs() < 1e-12);
        assert!((m[3] - 0.5).abs() < 1e-12);
        // Reversed wire order permutes the basis consistently.
        let r = s.marginal_probabilities(&[1, 0]).unwrap();
        assert_eq!(m, r); // Bell state is symmetric
        assert!(s.marginal_probabilities(&[5]).is_err());
    }

    #[test]
    fn marginals_sum_to_one_on_product_states() {
        let mut s = StateVector::zero_state(3).unwrap();
        s.apply_single_qubit(1, &h_matrix()).unwrap();
        let m = s.marginal_probabilities(&[1, 2]).unwrap();
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((m[0b00] - 0.5).abs() < 1e-12);
        assert!((m[0b10] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unitaries_preserve_norm() {
        let mut s = StateVector::from_amplitudes(vec![
            C64::new(0.3, 0.1),
            C64::new(-0.2, 0.4),
            C64::new(0.5, -0.5),
            C64::new(0.1, 0.2),
        ])
        .unwrap();
        s.apply_single_qubit(1, &h_matrix()).unwrap();
        s.apply_cnot(1, 0).unwrap();
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }
}
