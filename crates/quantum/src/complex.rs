//! Minimal double-precision complex arithmetic.
//!
//! The offline dependency set does not include `num-complex`, so the simulator
//! carries its own [`C64`] type. Only the operations needed by a statevector
//! simulator are provided: field arithmetic, conjugation, modulus, and polar
//! construction.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use sqvae_quantum::C64;
///
/// let z = C64::new(3.0, 4.0);
/// assert_eq!(z.norm_sqr(), 25.0);
/// assert_eq!(z.conj(), C64::new(3.0, -4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates `r * e^{i θ}` from polar coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// use sqvae_quantum::C64;
    /// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// The complex conjugate `re - i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The modulus `sqrt(re² + im²)`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplies by the imaginary unit (`i·z`).
    #[inline]
    pub fn mul_i(self) -> Self {
        C64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Returns `true` when both components are within `tol` of `other`.
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |acc, z| acc + z)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> C64 {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(1.5, -2.5);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert_eq!(-z + z, C64::ZERO);
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = C64::new(2.0, 3.0);
        let b = C64::new(-1.0, 4.0);
        // (2+3i)(-1+4i) = -2 + 8i - 3i + 12i^2 = -14 + 5i
        assert_eq!(a * b, C64::new(-14.0, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn conj_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj().im, -4.0);
        assert_eq!((z * z.conj()).re, z.norm_sqr());
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn polar_round_trip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.im.atan2(z.re) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn mul_i_rotates_by_quarter_turn() {
        let z = C64::new(1.0, 2.0);
        assert_eq!(z.mul_i(), C64::new(-2.0, 1.0));
        assert_eq!(z.mul_i().mul_i(), -z);
    }

    #[test]
    fn sum_of_complex() {
        let v = vec![C64::new(1.0, 1.0), C64::new(2.0, -3.0)];
        let s: C64 = v.into_iter().sum();
        assert_eq!(s, C64::new(3.0, -2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn assign_ops() {
        let mut z = C64::new(1.0, 1.0);
        z += C64::new(2.0, 0.5);
        assert_eq!(z, C64::new(3.0, 1.5));
        z -= C64::new(1.0, 0.5);
        assert_eq!(z, C64::new(2.0, 1.0));
        z *= C64::I;
        assert_eq!(z, C64::new(-1.0, 2.0));
    }
}
