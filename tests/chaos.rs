//! Chaos suite: drives the serving and training stacks under deterministic
//! fault injection ([`sqvae::faults`]) and checks the robustness contract:
//!
//! * every accepted request resolves — a result or a typed error, never a
//!   hang (these tests finishing at all is the proof);
//! * every request that succeeds under chaos returns bytes identical to
//!   the fault-free run;
//! * the supervisor respawns panicked workers, checkpoint corruption heals
//!   from the `.bak` generation, and NaN losses roll back and continue.
//!
//! The injector is process-global, so this suite lives in its own
//! integration binary and serializes itself through `GATE`. CI runs it a
//! second time with `SQVAE_FAULTS` set (fixed seed); the environment plan
//! feeds the serving storm test, and every assertion is written to hold
//! for arbitrary rates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::{models, Autoencoder, NanGuard, TrainConfig, Trainer};
use sqvae::datasets::qm9::{generate as gen_qm9, Qm9Config};
use sqvae::faults::{self, FaultPlan, FaultPoint, FaultScope};
use sqvae::nn::{Matrix, Threads};
use sqvae::serve::{
    publish_model, shard_index, InferenceServer, Op, Request, RetryPolicy, ServeError, ServerConfig,
};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

// The fault injector is process-global: every test that installs a plan
// must hold this while it runs.
static GATE: Mutex<()> = Mutex::new(());

fn temp_path(name: &str) -> String {
    let dir = std::env::temp_dir().join("sqvae-chaos-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

/// Publishes a small SQ-VAE checkpoint with no faults active (the chaos
/// under test starts after the model exists on disk).
fn published_model(name: &str, seed: u64) -> (String, Autoencoder) {
    assert!(!faults::active(), "publish must happen fault-free");
    let mut model = models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(seed));
    let path = temp_path(name);
    publish_model(&mut model, seed, &path).unwrap();
    (path, model)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn a_dying_worker_resolves_every_outstanding_ticket_and_is_respawned() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let (path, mut direct) = published_model("worker-gone.ckpt", 1);
    let server = InferenceServer::start(ServerConfig {
        retry: RetryPolicy::none(),
        ..ServerConfig::default()
    });

    // Queue a burst while paused, then let the (always-panicking) worker
    // steal it: every stolen ticket must fail typed, none may hang.
    server.pause();
    let ids: Vec<u64> = (0..8)
        .map(|seed| {
            server
                .submit(Request::new(path.clone(), Op::Sample { n: 1, seed }))
                .unwrap()
        })
        .collect();
    let scope = FaultScope::install(FaultPlan::quiet(7).with_rate(FaultPoint::WorkerPanic, 1.0));
    let results: Vec<Result<Matrix, ServeError>> = std::thread::scope(|s| {
        let server = &server;
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| s.spawn(move || server.wait(id)))
            .collect();
        server.resume();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in results {
        assert_eq!(r.unwrap_err(), ServeError::WorkerGone);
    }

    // With the fault still armed, a fresh request fails typed too (the
    // respawned worker dies again) — still no hang.
    assert_eq!(
        server
            .request(Request::new(path.clone(), Op::Sample { n: 1, seed: 90 }))
            .unwrap_err(),
        ServeError::WorkerGone
    );

    // Disarm: the supervisor's latest respawn serves again, bit-identically.
    drop(scope);
    let healed = server
        .request(Request::new(path, Op::Sample { n: 2, seed: 91 }))
        .unwrap();
    let want = direct.sample(2, &mut StdRng::seed_from_u64(91)).unwrap();
    assert_eq!(bits(&healed), bits(&want));

    let health = server.health();
    assert!(health.worker_alive);
    assert!(health.respawns >= 1, "supervisor never respawned");
    server.shutdown();
}

#[test]
fn chaos_storm_loses_no_request_and_survivors_are_bit_identical() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let (path, mut direct) = published_model("storm.ckpt", 2);

    // Fault-free reference for the whole schedule, from direct model calls
    // (the engine's coalescing guarantee makes these the served bytes).
    let xs: Vec<Matrix> = (0..40)
        .map(|i| Matrix::from_fn(1, 16, |_, c| ((i * 16 + c) as f64).cos() / 2.0))
        .collect();
    let reference: Vec<Vec<u64>> = (0..40u64)
        .map(|i| {
            if i % 2 == 0 {
                bits(
                    &direct
                        .sample(1 + (i as usize % 3), &mut StdRng::seed_from_u64(i))
                        .unwrap(),
                )
            } else {
                bits(&direct.reconstruct(&xs[i as usize]).unwrap())
            }
        })
        .collect();

    // Rates come from SQVAE_FAULTS when CI sets it; only the serving
    // points matter here (no saves or training happen under this scope),
    // and worker panics are forced on so the test always exercises them.
    let base = FaultPlan::from_env().unwrap_or(FaultPlan::quiet(42));
    let plan = FaultPlan::quiet(base.seed)
        .with_rate(
            FaultPoint::WorkerPanic,
            base.rate(FaultPoint::WorkerPanic).max(0.25),
        )
        .with_rate(
            FaultPoint::QueueSaturation,
            base.rate(FaultPoint::QueueSaturation).max(0.15),
        );
    let scope = FaultScope::install(plan);

    let server = InferenceServer::start(ServerConfig {
        retry: RetryPolicy {
            max_attempts: 6,
            backoff: Duration::from_millis(1),
        },
        ..ServerConfig::default()
    });
    let mut successes = 0usize;
    for i in 0..40u64 {
        let op = if i % 2 == 0 {
            Op::Sample {
                n: 1 + (i as usize % 3),
                seed: i,
            }
        } else {
            Op::Reconstruct(xs[i as usize].clone())
        };
        // Every round trip resolves — success or typed error, never a
        // hang. Retries are part of the contract: a lost worker or a
        // saturated queue is transient.
        match server.request(Request::new(path.clone(), op)) {
            Ok(m) => {
                assert_eq!(bits(&m), reference[i as usize], "request {i} diverged");
                successes += 1;
            }
            Err(e) => assert!(
                e.is_retryable(),
                "request {i} failed with a non-transient error: {e}"
            ),
        }
    }

    let stats = faults::stats().unwrap();
    drop(scope);

    // Fault-free epilogue: the server is healthy again after the storm.
    let healed = server
        .request(Request::new(path, Op::Sample { n: 1, seed: 1000 }))
        .unwrap();
    let want = direct.sample(1, &mut StdRng::seed_from_u64(1000)).unwrap();
    assert_eq!(bits(&healed), bits(&want));

    let health = server.health();
    assert!(health.worker_alive);
    if stats.fired_at(FaultPoint::WorkerPanic) > 0 {
        assert!(health.respawns >= 1, "worker died but was never respawned");
    }
    let engine_stats = server.shutdown();
    // The storm's successes all flowed through some worker generation.
    assert!(engine_stats.requests >= successes);
    assert!(successes > 0, "chaos drowned every request");
}

#[test]
fn one_dead_worker_in_a_pool_of_four_takes_only_its_own_requests_down() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);

    // One checkpoint per shard of a 4-worker pool: probe candidate names
    // until every home shard {0,1,2,3} is covered (the shard map hashes the
    // model path, so coverage is a property of the names we pick). Sample
    // ops all share one (kind, width) regardless of seed, so each model's
    // requests are pinned to its shard.
    let probe_op = Op::Sample { n: 1, seed: 0 };
    let mut path_for_shard: [Option<(String, Autoencoder)>; 4] = [None, None, None, None];
    let mut candidate = 0u64;
    while path_for_shard.iter().any(Option::is_none) {
        let name = format!("pool-shard-{candidate}.ckpt");
        let shard = shard_index(&temp_path(&name), &probe_op, 4);
        if path_for_shard[shard].is_none() {
            path_for_shard[shard] = Some(published_model(&name, 70 + candidate));
        }
        candidate += 1;
    }
    let mut shard_models: Vec<(String, Autoencoder)> =
        path_for_shard.into_iter().map(Option::unwrap).collect();

    let server = InferenceServer::start(ServerConfig {
        workers: Threads::Fixed(4),
        retry: RetryPolicy::none(),
        // Pin requests to their home shards: spillover must not reroute
        // the doomed worker's traffic before the panic lands.
        spill_depth: usize::MAX,
        ..ServerConfig::default()
    });

    // Queue a burst while paused — three seeded samples per shard — then
    // arm a plan that kills ONLY worker 0 and let the pool steal.
    server.pause();
    let ids: Vec<(usize, u64, Vec<u64>)> = (0..4usize)
        .flat_map(|shard| {
            let (path, model) = &mut shard_models[shard];
            let path = path.clone();
            (0..3u64)
                .map(|j| {
                    let seed = shard as u64 * 10 + j;
                    let want = bits(&model.sample(2, &mut StdRng::seed_from_u64(seed)).unwrap());
                    let id = server
                        .submit(Request::new(path.clone(), Op::Sample { n: 2, seed }))
                        .unwrap();
                    (shard, id, want)
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let seed = FaultPlan::from_env().map(|p| p.seed).unwrap_or(13);
    let scope = FaultScope::install(
        FaultPlan::quiet(seed)
            .with_rate(FaultPoint::WorkerPanic, 1.0)
            .with_worker(0),
    );
    let results: Vec<(usize, Result<Matrix, ServeError>, Vec<u64>)> = std::thread::scope(|s| {
        let server = &server;
        let handles: Vec<_> = ids
            .into_iter()
            .map(|(shard, id, want)| (shard, s.spawn(move || server.wait(id)), want))
            .collect();
        server.resume();
        handles
            .into_iter()
            .map(|(shard, h, want)| (shard, h.join().unwrap(), want))
            .collect()
    });

    // Blast radius is exactly worker 0: its requests fail typed, every
    // other shard's requests succeed with fault-free bytes.
    for (shard, result, want) in results {
        if shard == 0 {
            assert_eq!(
                result.unwrap_err(),
                ServeError::WorkerGone,
                "worker 0's requests must fail typed"
            );
        } else {
            assert_eq!(
                bits(&result.unwrap_or_else(|e| panic!("shard {shard} infected: {e}"))),
                want,
                "a surviving worker's bytes diverged"
            );
        }
    }

    // Disarm and touch worker 0's shard again: the respawned member serves
    // bit-identically.
    drop(scope);
    let (path0, model0) = &mut shard_models[0];
    let healed = server
        .request(Request::new(path0.clone(), Op::Sample { n: 2, seed: 999 }))
        .unwrap();
    let want = model0.sample(2, &mut StdRng::seed_from_u64(999)).unwrap();
    assert_eq!(bits(&healed), bits(&want));

    // Exactly one respawn: worker 0 died once, nobody else ever did (the
    // worker filter silenced their streams), and the respawned generation
    // never re-panicked (it woke to an empty queue).
    let health = server.health();
    assert!(health.worker_alive, "pool not fully healed");
    assert_eq!(health.workers, 4);
    assert_eq!(health.respawns, 1, "expected exactly one respawn");
    server.shutdown();
}

#[test]
fn corrupted_checkpoint_heals_from_backup_bit_identically() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let mut model = models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(3));
    let path = temp_path("healing.ckpt");
    // Two clean saves of the same model: the second rotates the first into
    // `.bak`, so backup and primary hold identical bytes.
    publish_model(&mut model, 3, &path).unwrap();
    publish_model(&mut model, 3, &path).unwrap();

    // Third save under a guaranteed bit-flip: the primary is now corrupt,
    // the backup is the clean second save.
    {
        let _scope =
            FaultScope::install(FaultPlan::quiet(9).with_rate(FaultPoint::CheckpointFlip, 1.0));
        publish_model(&mut model, 3, &path).unwrap();
    }

    // Serving that path must heal through the backup and return exactly
    // the bytes the uncorrupted model produces.
    let server = InferenceServer::start(ServerConfig::default());
    let served = server
        .request(Request::new(path, Op::Sample { n: 3, seed: 33 }))
        .unwrap();
    let want = model.sample(3, &mut StdRng::seed_from_u64(33)).unwrap();
    assert_eq!(bits(&served), bits(&want));
    let stats = server.shutdown();
    assert!(
        stats.checkpoint_recoveries >= 1,
        "recovery path never exercised"
    );
}

#[test]
fn nan_loss_faults_roll_back_and_training_still_converges_on_a_result() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let data = gen_qm9(&Qm9Config {
        n_samples: 32,
        seed: 4,
    });
    let mut model = models::classical_vae(64, 4, &mut StdRng::seed_from_u64(5));
    let seed = FaultPlan::from_env().map(|p| p.seed).unwrap_or(42);
    let _scope = FaultScope::install(FaultPlan::quiet(seed).with_rate(FaultPoint::NanLoss, 0.25));
    let history = Trainer::new(TrainConfig {
        epochs: 4,
        batch_size: 8,
        nan_guard: Some(NanGuard {
            max_recoveries: 10_000,
            ..NanGuard::default()
        }),
        ..TrainConfig::default()
    })
    .train(&mut model, &data, None)
    .unwrap();

    let fired = faults::stats().unwrap().fired_at(FaultPoint::NanLoss);
    assert!(fired > 0, "rate 0.25 over 16 batches never fired");
    assert_eq!(history.anomalies.len() as u64, fired);
    assert_eq!(history.records.len(), 4);
    assert!(history.final_train_mse().unwrap().is_finite());
}

#[test]
fn saturation_faults_surface_as_typed_backpressure() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let (path, _) = published_model("saturated.ckpt", 6);
    let _scope =
        FaultScope::install(FaultPlan::quiet(11).with_rate(FaultPoint::QueueSaturation, 1.0));
    let server = InferenceServer::start(ServerConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_micros(100),
        },
        ..ServerConfig::default()
    });
    // Saturation on every attempt: retries exhaust into the typed
    // backpressure error, not a hang or a panic.
    assert_eq!(
        server
            .request(Request::new(path, Op::Sample { n: 1, seed: 0 }))
            .unwrap_err(),
        ServeError::QueueFull { capacity: 256 }
    );
    server.shutdown();
}
