//! Checkpoint round-trip coverage across the whole model zoo: every
//! `models::*` factory, under every simulator backend, must survive
//! save → load with bit-identical behavior; malformed files must fail with
//! typed errors, never garbage weights.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::checkpoint::{self, Checkpoint, CheckpointError};
use sqvae::core::{models, Autoencoder};
use sqvae::nn::{BackendKind, ExecPolicy, Matrix, Threads};

const DIM: usize = 16;

/// Every factory in the zoo at a 16-feature (4-qubit) scale.
fn zoo() -> Vec<(&'static str, Autoencoder)> {
    let mut rng = StdRng::seed_from_u64(99);
    vec![
        ("classical_ae", models::classical_ae(DIM, 4, &mut rng)),
        ("classical_vae", models::classical_vae(DIM, 4, &mut rng)),
        ("f_bq_ae", models::f_bq_ae(DIM, 1, &mut rng)),
        ("f_bq_vae", models::f_bq_vae(DIM, 1, &mut rng)),
        ("h_bq_ae", models::h_bq_ae(DIM, 1, &mut rng)),
        ("h_bq_vae", models::h_bq_vae(DIM, 1, &mut rng)),
        ("sq_ae", models::sq_ae(DIM, 2, 1, &mut rng)),
        ("sq_vae", models::sq_vae(DIM, 2, 1, &mut rng)),
    ]
}

fn probe() -> Matrix {
    Matrix::from_fn(3, DIM, |r, c| ((r * DIM + c) as f64).sin().abs() * 0.5)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn checkpoint_bytes(model: &mut Autoencoder) -> Vec<u8> {
    let ckpt = Checkpoint::capture(model, 7).expect("factory models carry specs");
    let mut buf = Vec::new();
    ckpt.write_to(&mut buf).expect("in-memory write succeeds");
    buf
}

#[test]
fn every_factory_round_trips_bit_identically_on_all_backends() {
    let x = probe();
    for backend in [BackendKind::Dense, BackendKind::Fused, BackendKind::Soa] {
        for (name, mut model) in zoo() {
            model.set_exec_policy(ExecPolicy::new(Threads::Off, backend));
            let want = model.reconstruct(&x).expect("direct reconstruct");

            let buf = checkpoint_bytes(&mut model);
            let ckpt = Checkpoint::read_from(buf.as_slice()).expect("read back");
            assert_eq!(ckpt.backend, backend, "{name}: backend survives");
            assert_eq!(ckpt.seed, 7, "{name}: seed survives");
            let mut rebuilt = ckpt.build_model().expect("rebuild");
            // Threads come from the local environment, but the recorded
            // backend must win.
            assert_eq!(rebuilt.exec_policy().backend, backend);

            let got = rebuilt.reconstruct(&x).expect("rebuilt reconstruct");
            assert_eq!(
                bits(&want),
                bits(&got),
                "{name} on {backend:?}: reconstruction must be bit-identical"
            );
            // Sampling (the generative half) must round-trip too.
            let want_s = model.sample(2, &mut StdRng::seed_from_u64(5)).unwrap();
            let got_s = rebuilt.sample(2, &mut StdRng::seed_from_u64(5)).unwrap();
            assert_eq!(bits(&want_s), bits(&got_s), "{name}: sampling round trip");
        }
    }
}

#[test]
fn file_round_trip_through_the_convenience_api() {
    let dir = std::env::temp_dir().join("sqvae-ckpt-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let x = probe();
    for (name, mut model) in zoo() {
        let path = dir
            .join(format!("{name}.ckpt"))
            .to_string_lossy()
            .into_owned();
        checkpoint::save_model(&mut model, 7, &path).expect("save");
        let mut reloaded = checkpoint::load_model(&path).expect("load");
        assert_eq!(
            bits(&model.reconstruct(&x).unwrap()),
            bits(&reloaded.reconstruct(&x).unwrap()),
            "{name}: file round trip"
        );
    }
}

#[test]
fn corrupt_files_yield_typed_errors() {
    let model = &mut zoo().remove(7).1; // sq_vae
    let buf = checkpoint_bytes(model);

    // Bad magic.
    let mut bad = buf.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        Checkpoint::read_from(bad.as_slice()),
        Err(CheckpointError::BadMagic)
    ));

    // Future format version.
    let mut future = buf.clone();
    future[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Checkpoint::read_from(future.as_slice()),
        Err(CheckpointError::UnsupportedVersion { found: u32::MAX })
    ));

    // A flipped body bit fails the checksum before any weight is trusted.
    let mut flipped = buf.clone();
    let mid = 20 + (buf.len() - 28) / 2;
    flipped[mid] ^= 0x01;
    assert!(matches!(
        Checkpoint::read_from(flipped.as_slice()),
        Err(CheckpointError::ChecksumMismatch)
    ));

    // Truncation at every section boundary is an I/O error, not a panic.
    for cut in [0, 7, 11, 19, buf.len() / 2, buf.len() - 1] {
        match Checkpoint::read_from(&buf[..cut]) {
            Err(CheckpointError::Io(_)) => {}
            other => panic!("truncation at {cut} gave {other:?}"),
        }
    }

    // Extra bytes inside the declared body (with a recomputed valid
    // checksum, so only the structural check can catch them) are rejected.
    let body_len = u64::from_le_bytes(buf[12..20].try_into().unwrap()) as usize;
    let mut padded_body = buf[20..20 + body_len].to_vec();
    padded_body.push(0);
    let mut padded = buf[..12].to_vec();
    padded.extend_from_slice(&(padded_body.len() as u64).to_le_bytes());
    padded.extend_from_slice(&padded_body);
    let digest = padded_body.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    padded.extend_from_slice(&digest.to_le_bytes());
    assert!(matches!(
        Checkpoint::read_from(padded.as_slice()),
        Err(CheckpointError::Corrupt(_))
    ));
}

#[test]
fn restoring_across_architectures_is_rejected() {
    let mut zoo = zoo();
    let small = &mut zoo[7].1; // sq_vae(16, 2, 1)
    let buf = checkpoint_bytes(small);
    let ckpt = Checkpoint::read_from(buf.as_slice()).unwrap();
    // A different architecture refuses the foreign weights...
    let mut other = models::classical_ae(DIM, 4, &mut StdRng::seed_from_u64(1));
    let fingerprint = |m: &mut Autoencoder| -> Vec<Vec<u64>> {
        use sqvae::core::ParamGroup;
        [ParamGroup::Quantum, ParamGroup::Classical]
            .into_iter()
            .flat_map(|g| {
                m.parameters_of(g)
                    .iter()
                    .map(|p| p.value.as_slice().iter().map(|v| v.to_bits()).collect())
                    .collect::<Vec<Vec<u64>>>()
            })
            .collect()
    };
    let before = fingerprint(&mut other);
    assert!(ckpt.params.restore(&mut other).is_err());
    // ...and is left untouched by the failed restore.
    assert_eq!(before, fingerprint(&mut other));
}
