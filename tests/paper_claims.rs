//! The paper's qualitative claims, encoded as (miniature) assertions.
//!
//! Each test runs a scaled-down version of the corresponding experiment and
//! asserts the *shape* the paper reports — the same checks EXPERIMENTS.md
//! makes at full scale, kept small enough for `cargo test`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::{models, ParamGroup, TrainConfig, Trainer};
use sqvae::datasets::qm9::{generate as gen_qm9, Qm9Config};
use sqvae::datasets::Dataset;

fn toy(n: usize, width: usize, seed: u64) -> Dataset {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_samples(
        (0..n)
            .map(|_| (0..width).map(|_| rng.gen_range(0.0..2.0)).collect())
            .collect(),
    )
    .expect("non-empty")
}

/// §III-B / Fig. 4(b): on normalized data the fully quantum model starts at
/// a loss the classical model needs several epochs to reach ("learns
/// faster … in terms of the number of training epochs").
#[test]
fn claim_quantum_advantage_on_normalized_molecules() {
    let data = gen_qm9(&Qm9Config {
        n_samples: 40,
        seed: 2,
    })
    .l1_normalized();
    let config = TrainConfig {
        epochs: 2,
        batch_size: 8,
        quantum_lr: 0.01,
        classical_lr: 0.01,
        ..TrainConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let mut fbq = models::f_bq_vae(64, 2, &mut rng);
    let quantum_first = Trainer::new(config.clone())
        .train(&mut fbq, &data, None)
        .unwrap()
        .records[0]
        .train_mse;
    let mut cvae = models::classical_vae(64, 6, &mut rng);
    let classical_first = Trainer::new(config)
        .train(&mut cvae, &data, None)
        .unwrap()
        .records[0]
        .train_mse;
    assert!(
        quantum_first * 5.0 < classical_first,
        "quantum {quantum_first} should start far below classical {classical_first}"
    );
}

/// §III-C / Fig. 5(a): the fully quantum baseline barely learns
/// original-scale data (probability outputs cannot reach code scales),
/// while the hybrid variant does.
#[test]
fn claim_fully_quantum_cannot_fit_original_scale() {
    let data = toy(24, 16, 4);
    let config = TrainConfig {
        epochs: 4,
        batch_size: 8,
        ..TrainConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(5);
    let mut fbq = models::f_bq_ae(16, 1, &mut rng);
    let f_hist = Trainer::new(config.clone())
        .train(&mut fbq, &data, None)
        .unwrap();
    let f_drop = f_hist.records[0].train_mse - f_hist.final_train_mse().unwrap();
    let mut hbq = models::h_bq_ae(16, 1, &mut rng);
    let h_hist = Trainer::new(config).train(&mut hbq, &data, None).unwrap();
    let h_drop = h_hist.records[0].train_mse - h_hist.final_train_mse().unwrap();
    assert!(
        h_drop > 2.0 * f_drop.max(0.0),
        "hybrid should improve much faster: hybrid drop {h_drop}, fully quantum drop {f_drop}"
    );
}

/// §III-C / §IV-D: the patched circuit enlarges the latent space
/// (`p·log2(d/p)` vs `log2(d)`) and with it the reconstruction capacity.
#[test]
fn claim_patching_enlarges_latent_space_and_capacity() {
    // Latent arithmetic (exact, the paper's §IV-D numbers).
    assert!(sqvae::core::patched_latent_dim(1024, 8) > sqvae::core::patched_latent_dim(1024, 1));

    // Capacity at miniature scale: SQ-AE (p=8 on 64 features → LSD 24)
    // reaches a lower loss than the baseline hybrid (LSD 6) on the same
    // data and budget.
    let data = toy(32, 64, 6);
    let config = TrainConfig {
        epochs: 4,
        batch_size: 8,
        ..TrainConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let mut sq = models::sq_ae(64, 8, 1, &mut rng);
    let sq_final = Trainer::new(config.clone())
        .train(&mut sq, &data, None)
        .unwrap()
        .final_train_mse()
        .unwrap();
    let mut hbq = models::h_bq_ae(64, 1, &mut rng);
    let hbq_final = Trainer::new(config)
        .train(&mut hbq, &data, None)
        .unwrap()
        .final_train_mse()
        .unwrap();
    assert!(
        sq_final < hbq_final,
        "patched {sq_final} should beat baseline {hbq_final}"
    );
}

/// §III-C / Fig. 7: quantum and classical parameter groups really do train
/// under their own learning rates.
#[test]
fn claim_heterogeneous_learning_rates_move_both_groups() {
    let data = toy(16, 16, 8);
    let mut rng = StdRng::seed_from_u64(9);
    let mut model = models::sq_ae(16, 2, 1, &mut rng);
    let before_q: Vec<f64> = model
        .parameters_of(ParamGroup::Quantum)
        .iter()
        .flat_map(|p| p.value.as_slice().to_vec())
        .collect();
    let before_c: Vec<f64> = model
        .parameters_of(ParamGroup::Classical)
        .iter()
        .flat_map(|p| p.value.as_slice().to_vec())
        .collect();
    Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 8,
        quantum_lr: 0.03,
        classical_lr: 0.01,
        ..TrainConfig::default()
    })
    .train(&mut model, &data, None)
    .unwrap();
    let after_q: Vec<f64> = model
        .parameters_of(ParamGroup::Quantum)
        .iter()
        .flat_map(|p| p.value.as_slice().to_vec())
        .collect();
    let after_c: Vec<f64> = model
        .parameters_of(ParamGroup::Classical)
        .iter()
        .flat_map(|p| p.value.as_slice().to_vec())
        .collect();
    let moved = |a: &[f64], b: &[f64]| a.iter().zip(b).any(|(x, y)| (x - y).abs() > 1e-9);
    assert!(moved(&before_q, &after_q), "quantum group should move");
    assert!(moved(&before_c, &after_c), "classical group should move");
}

/// Table I: the quantum parameter count is two orders of magnitude below
/// the classical baseline ("apart from using fewer parameters…").
#[test]
fn claim_quantum_models_use_far_fewer_parameters() {
    let mut rng = StdRng::seed_from_u64(10);
    let mut fbq = models::f_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
    let mut cvae = models::classical_vae(64, 6, &mut rng);
    let q = fbq.parameter_count().total();
    let c = cvae.parameter_count().total();
    assert!(
        q * 20 < c,
        "fully quantum total {q} should be ≫ smaller than classical {c}"
    );
}
