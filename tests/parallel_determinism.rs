//! Thread-count invariance of the training pipeline.
//!
//! The parallel batching path (PR 2 tentpole) shards batch rows across OS
//! threads in the quantum layers' forward and adjoint backward passes. These
//! tests pin the central guarantee: training histories, parameters, and
//! gradients are **bit-identical** for `Threads::Off`, `Fixed(1)`, and
//! `Fixed(4)` on the same seed, for both the hybrid baseline and the
//! patched scalable model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqvae_core::{models, Autoencoder, History, ParamGroup, Threads, TrainConfig, Trainer};
use sqvae_datasets::Dataset;

fn toy_dataset(n: usize, width: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_samples(
        (0..n)
            .map(|_| (0..width).map(|_| rng.gen_range(0.0..2.0)).collect())
            .collect(),
    )
    .expect("non-empty")
}

/// Everything a run can observably produce: the per-epoch history plus the
/// final parameter values and leftover gradients of both groups.
#[derive(Debug, PartialEq)]
struct RunArtifacts {
    history: History,
    params: Vec<Vec<f64>>,
    grads: Vec<Vec<f64>>,
}

fn train_with(make: fn(&mut StdRng) -> Autoencoder, threads: Threads) -> RunArtifacts {
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = make(&mut rng);
    let data = toy_dataset(12, 16, 8);
    let (train, test) = data.shuffle_split(0.75, 0);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 4,
        threads,
        ..TrainConfig::default()
    });
    let history = trainer.train(&mut model, &train, Some(&test)).unwrap();
    let collect = |model: &mut Autoencoder, grad: bool| {
        [ParamGroup::Quantum, ParamGroup::Classical]
            .into_iter()
            .flat_map(|g| {
                model
                    .parameters_of(g)
                    .iter()
                    .map(|p| {
                        if grad {
                            p.grad.as_slice().to_vec()
                        } else {
                            p.value.as_slice().to_vec()
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    };
    let params = collect(&mut model, false);
    let grads = collect(&mut model, true);
    RunArtifacts {
        history,
        params,
        grads,
    }
}

fn assert_thread_count_invariant(make: fn(&mut StdRng) -> Autoencoder) {
    let baseline = train_with(make, Threads::Off);
    assert_eq!(baseline.history.records.len(), 2);
    assert!(baseline.params.iter().flatten().all(|v| v.is_finite()));
    assert!(baseline
        .grads
        .iter()
        .any(|g| g.iter().any(|v| v.abs() > 0.0)));
    for threads in [Threads::Fixed(1), Threads::Fixed(4), Threads::Auto] {
        let run = train_with(make, threads);
        assert_eq!(
            run, baseline,
            "{threads:?} diverged from the sequential path"
        );
    }
}

#[test]
fn hybrid_model_training_is_thread_count_invariant() {
    assert_thread_count_invariant(|rng| models::h_bq_ae(16, 1, rng));
}

#[test]
fn patched_model_training_is_thread_count_invariant() {
    assert_thread_count_invariant(|rng| models::sq_ae(16, 2, 1, rng));
}

#[test]
fn patched_vae_training_is_thread_count_invariant() {
    // The VAE exercises the reparametrization RNG too: the trainer's RNG
    // stream must not depend on the thread count.
    assert_thread_count_invariant(|rng| models::sq_vae(16, 2, 1, rng));
}

#[test]
fn evaluation_is_thread_count_invariant() {
    let data = toy_dataset(10, 16, 21);
    let evaluate = |threads: Threads| {
        let mut rng = StdRng::seed_from_u64(20);
        let mut model = models::h_bq_ae(16, 1, &mut rng);
        model.set_exec_policy(sqvae_core::ExecPolicy::default().with_threads(threads));
        Trainer::evaluate_batched(&mut model, &data, 4).unwrap()
    };
    let seq = evaluate(Threads::Off);
    assert!(seq.is_finite());
    assert_eq!(evaluate(Threads::Fixed(4)), seq);
}
