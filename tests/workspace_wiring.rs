//! Workspace-wiring smoke tests: every crate the `sqvae` facade re-exports
//! is reachable under its advertised path, and the cross-crate pipeline runs
//! deterministically under a fixed seed. These guard the Cargo manifests
//! themselves — a broken re-export or dependency edge fails here first.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::{models, TrainConfig, Trainer};
use sqvae::datasets::qm9::{generate, Qm9Config};

#[test]
fn every_reexported_crate_is_reachable() {
    // sqvae::quantum
    let circuit = sqvae::quantum::Circuit::new(2).expect("quantum crate reachable");
    assert_eq!(circuit.n_qubits(), 2);

    // sqvae::nn
    let m = sqvae::nn::Matrix::filled(2, 2, 1.5);
    assert_eq!(m.shape(), (2, 2));

    // sqvae::chem
    let mol = sqvae::chem::smiles::parse("CCO").expect("chem crate reachable");
    assert_eq!(mol.n_atoms(), 3);

    // sqvae::datasets
    let data = generate(&Qm9Config {
        n_samples: 4,
        seed: 0,
    });
    assert_eq!(data.len(), 4);

    // sqvae::core
    let mut rng = StdRng::seed_from_u64(0);
    let model = models::classical_ae(64, 6, &mut rng);
    assert!(!model.name.is_empty());
}

#[test]
fn tiny_train_step_is_deterministic_under_fixed_seed() {
    let run = || {
        let data = generate(&Qm9Config {
            n_samples: 16,
            seed: 3,
        });
        let mut rng = StdRng::seed_from_u64(7);
        let mut model = models::h_bq_ae(64, 2, &mut rng);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 8,
            ..TrainConfig::default()
        });
        let history = trainer
            .train(&mut model, &data, None)
            .expect("train step succeeds");
        history.final_train_mse().expect("one epoch recorded")
    };

    let first = run();
    let second = run();
    assert!(first.is_finite());
    assert_eq!(
        first.to_bits(),
        second.to_bits(),
        "identical seeds must yield bit-identical training losses ({first} vs {second})"
    );
}
