//! Cross-crate integration tests: the full pipeline from synthetic data
//! through hybrid training to molecule sampling and scoring.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::chem::{properties::DrugProperties, smiles, valence, MoleculeMatrix};
use sqvae::core::{models, sampling, ParamGroup, TrainConfig, Trainer};
use sqvae::datasets::pdbbind::{generate as gen_pdbbind, PdbbindConfig};
use sqvae::datasets::qm9::{generate as gen_qm9, Qm9Config};
use sqvae::nn::Matrix;

fn quick(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 8,
        ..TrainConfig::default()
    }
}

#[test]
fn qm9_pipeline_classical_vae() {
    let data = gen_qm9(&Qm9Config {
        n_samples: 48,
        seed: 1,
    });
    let (train, test) = data.shuffle_split(0.85, 0);
    let mut rng = StdRng::seed_from_u64(2);
    let mut model = models::classical_vae(64, 6, &mut rng);
    let hist = Trainer::new(quick(6))
        .train(&mut model, &train, Some(&test))
        .unwrap();
    assert!(hist.final_train_mse().unwrap() < hist.records[0].train_mse);
    assert!(hist.final_test_mse().unwrap().is_finite());
}

#[test]
fn qm9_pipeline_fully_quantum_on_normalized_data() {
    let data = gen_qm9(&Qm9Config {
        n_samples: 32,
        seed: 3,
    })
    .l1_normalized();
    let mut rng = StdRng::seed_from_u64(4);
    let mut model = models::f_bq_vae(64, 2, &mut rng);
    let hist = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 8,
        quantum_lr: 0.01,
        classical_lr: 0.01,
        ..TrainConfig::default()
    })
    .train(&mut model, &data, None)
    .unwrap();
    // Normalized data + probability outputs: losses live on the 1e-3 scale
    // (the paper's Fig. 4(b) axis) from the very first epoch.
    assert!(hist.records[0].train_mse < 0.05);
    assert!(hist.final_train_mse().unwrap() <= hist.records[0].train_mse + 1e-9);
}

#[test]
fn ligand_pipeline_sq_vae_trains_and_samples() {
    let data = gen_pdbbind(&PdbbindConfig {
        n_samples: 24,
        seed: 5,
    });
    let mut rng = StdRng::seed_from_u64(6);
    let mut model = models::sq_vae(1024, 8, 1, &mut rng);
    let hist = Trainer::new(quick(3))
        .train(&mut model, &data, None)
        .unwrap();
    assert!(hist.final_train_mse().unwrap() < hist.records[0].train_mse);

    let mut srng = StdRng::seed_from_u64(7);
    let out = sampling::sample_molecules(&mut model, 30, 32, None, &mut srng).unwrap();
    assert_eq!(out.attempted, 30);
    // Every surviving molecule is valence-clean, connected, and scorable.
    for m in &out.molecules {
        assert!(valence::valences_ok(m));
        assert!(m.is_connected());
        let p = DrugProperties::compute(m);
        assert!(p.qed > 0.0 && p.qed <= 1.0);
        // And representable as SMILES.
        assert!(smiles::write(m).is_ok());
    }
}

#[test]
fn hybrid_gradients_are_exact_end_to_end() {
    // Finite-difference check across the quantum/classical boundary of a
    // full H-BQ-AE: the strongest cross-crate correctness statement.
    let mut rng = StdRng::seed_from_u64(8);
    let mut model = models::h_bq_ae(16, 1, &mut rng);
    let x = Matrix::from_fn(2, 16, |r, c| 0.1 + 0.05 * (r * 16 + c) as f64);

    let mut rng2 = StdRng::seed_from_u64(9);
    let out = model.forward_train(&x, &mut rng2).unwrap();
    let (base_loss, grad) = sqvae::nn::loss::mse(&out.reconstruction, &x).unwrap();
    model.backward(&grad).unwrap();
    let analytic: Vec<f64> = model
        .parameters_of(ParamGroup::Quantum)
        .iter()
        .flat_map(|p| p.grad.as_slice().to_vec())
        .collect();

    let eps = 1e-5;
    let n_check = analytic.len().min(6);
    for (k, &a) in analytic.iter().enumerate().take(n_check) {
        let mut rng = StdRng::seed_from_u64(8);
        let mut m2 = models::h_bq_ae(16, 1, &mut rng);
        {
            let mut qp = m2.parameters_of(ParamGroup::Quantum);
            // Locate the k-th scalar across tensors.
            let mut idx = k;
            for p in qp.iter_mut() {
                if idx < p.value.len() {
                    let v = p.value.as_slice()[idx];
                    p.value.as_mut_slice()[idx] = v + eps;
                    break;
                }
                idx -= p.value.len();
            }
        }
        let mut rng2 = StdRng::seed_from_u64(9);
        let out2 = m2.forward_train(&x, &mut rng2).unwrap();
        let (loss2, _) = sqvae::nn::loss::mse(&out2.reconstruction, &x).unwrap();
        let fd = (loss2 - base_loss) / eps;
        assert!(
            (a - fd).abs() < 1e-3,
            "quantum param {k}: analytic {a} vs fd {fd}"
        );
    }
}

#[test]
fn molecule_matrix_codec_is_faithful_through_the_facade() {
    let mols = sqvae::datasets::pdbbind::generate_molecules(&PdbbindConfig {
        n_samples: 10,
        seed: 10,
    });
    for mol in &mols {
        let mm = MoleculeMatrix::encode(mol, 32).unwrap();
        let back = mm.decode();
        assert_eq!(back.formula(), mol.formula());
        assert_eq!(back.n_bonds(), mol.n_bonds());
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let data = gen_qm9(&Qm9Config {
            n_samples: 16,
            seed: 11,
        });
        let mut rng = StdRng::seed_from_u64(12);
        let mut model = models::h_bq_vae(64, 1, &mut rng);
        let hist = Trainer::new(quick(2))
            .train(&mut model, &data, None)
            .unwrap();
        let mut srng = StdRng::seed_from_u64(13);
        let out = sampling::sample_molecules(&mut model, 5, 8, None, &mut srng).unwrap();
        (hist, out.molecules)
    };
    let (h1, m1) = run();
    let (h2, m2) = run();
    assert_eq!(h1, h2);
    assert_eq!(m1, m2);
}

#[test]
fn patched_latent_dims_match_the_paper_through_the_facade() {
    for (p, lsd) in [(2usize, 18usize), (4, 32), (8, 56), (16, 96)] {
        assert_eq!(sqvae::core::patched_latent_dim(1024, p), lsd);
    }
}
