//! Backend × thread-count invariance of the training pipeline.
//!
//! For a **fixed** simulator backend, training must be bit-identical across
//! every `SQVAE_THREADS` setting (extending `tests/parallel_determinism.rs`
//! to the fused and SoA backends and the parallel patch bank). **Across**
//! backends, the optimized kernels reorder floating-point arithmetic, so
//! runs agree to high precision rather than bit-for-bit; short trainings
//! stay within tight tolerances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqvae_core::{
    models, Autoencoder, BackendKind, ExecPolicy, ParamGroup, QuantumInput, QuantumLayer,
    QuantumOutput, Threads, TrainConfig, Trainer,
};
use sqvae_datasets::Dataset;
use sqvae_nn::{Matrix, Module};

fn toy_dataset(n: usize, width: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_samples(
        (0..n)
            .map(|_| (0..width).map(|_| rng.gen_range(0.0..2.0)).collect())
            .collect(),
    )
    .expect("non-empty")
}

/// Trains a small model and returns (per-epoch train MSEs, final parameter
/// values of both groups).
fn train_with(
    make: fn(&mut StdRng) -> Autoencoder,
    backend: BackendKind,
    threads: Threads,
) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = make(&mut rng);
    let data = toy_dataset(10, 16, 12);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 4,
        threads,
        backend,
        ..TrainConfig::default()
    });
    let history = trainer.train(&mut model, &data, None).unwrap();
    let params: Vec<f64> = [ParamGroup::Quantum, ParamGroup::Classical]
        .into_iter()
        .flat_map(|g| {
            model
                .parameters_of(g)
                .iter()
                .flat_map(|p| p.value.as_slice().to_vec())
                .collect::<Vec<_>>()
        })
        .collect();
    (history.train_mse_series(), params)
}

fn assert_backend_thread_matrix(make: fn(&mut StdRng) -> Autoencoder) {
    for backend in [BackendKind::Dense, BackendKind::Fused, BackendKind::Soa] {
        let baseline = train_with(make, backend, Threads::Off);
        assert_eq!(baseline.0.len(), 2);
        assert!(baseline.1.iter().all(|v| v.is_finite()));
        // Fixed backend: every thread policy reproduces the sequential run
        // bit for bit.
        for threads in [Threads::Fixed(1), Threads::Fixed(4), Threads::Auto] {
            let run = train_with(make, backend, threads);
            assert_eq!(
                run, baseline,
                "{backend:?} × {threads:?} diverged from its sequential run"
            );
        }
    }
    // Across backends: same physics, reordered arithmetic. Two short epochs
    // keep the drift many orders below anything training-relevant.
    let dense = train_with(make, BackendKind::Dense, Threads::Off);
    for backend in [BackendKind::Fused, BackendKind::Soa] {
        let other = train_with(make, backend, Threads::Off);
        for (a, b) in dense.0.iter().zip(&other.0) {
            assert!((a - b).abs() < 1e-9, "{backend:?} epoch MSE {a} vs {b}");
        }
        for (a, b) in dense.1.iter().zip(&other.1) {
            assert!((a - b).abs() < 1e-9, "{backend:?} final param {a} vs {b}");
        }
    }
}

#[test]
fn hybrid_model_is_invariant_across_the_backend_thread_matrix() {
    assert_backend_thread_matrix(|rng| models::h_bq_ae(16, 1, rng));
}

#[test]
fn patched_model_is_invariant_across_the_backend_thread_matrix() {
    // Also exercises the parallel patch bank: patches × rows are sharded
    // through one flattened work list.
    assert_backend_thread_matrix(|rng| models::sq_ae(16, 2, 1, rng));
}

#[test]
fn evaluation_is_backend_consistent() {
    let data = toy_dataset(8, 16, 31);
    let evaluate = |backend: BackendKind| {
        let mut rng = StdRng::seed_from_u64(30);
        let mut model = models::sq_vae(16, 2, 1, &mut rng);
        model.set_exec_policy(ExecPolicy::new(Threads::Fixed(3), backend));
        Trainer::evaluate_batched(&mut model, &data, 4).unwrap()
    };
    let dense = evaluate(BackendKind::Dense);
    assert!(dense.is_finite());
    for backend in [BackendKind::Fused, BackendKind::Soa] {
        let other = evaluate(backend);
        assert!(
            (dense - other).abs() < 1e-10,
            "{backend:?}: {dense} vs {other}"
        );
    }
}

#[test]
fn tape_reuse_matrix_is_deterministic() {
    // Each batch pass compiles the circuit once and replays the shared tape
    // on every row (PR 6 tentpole). Two guarantees, across the full
    // backend × thread-count matrix: (a) duplicated input rows produce
    // bitwise-identical output and gradient rows — they replay the same
    // tape — and (b) every cell with the same backend reproduces the
    // sequential pass bit for bit, tape sharing included.
    let x = Matrix::from_fn(6, 3, |i, j| 0.21 * ((i % 3) as f64) - 0.13 * (j as f64));
    let g = Matrix::from_fn(6, 3, |i, j| 0.17 * ((i % 3) as f64) + 0.05 * (j as f64));
    // Rows 0..3 repeat as rows 3..6 (both in inputs and upstream grads).
    for backend in [BackendKind::Dense, BackendKind::Fused, BackendKind::Soa] {
        let run = |threads: Threads| {
            let mut rng = StdRng::seed_from_u64(17);
            let mut layer = QuantumLayer::new(
                3,
                2,
                QuantumInput::Angle,
                QuantumOutput::ExpectationZ,
                &mut rng,
            )
            .with_exec_policy(ExecPolicy::new(threads, backend));
            let y = layer.forward(&x).unwrap();
            let gin = layer.backward(&g).unwrap();
            let grads = layer.parameters()[0].grad.clone();
            (y, gin, grads)
        };
        let baseline = run(Threads::Off);
        let (y, gin, _) = &baseline;
        for r in 0..3 {
            assert_eq!(y.row(r), y.row(r + 3), "{backend:?} duplicated row {r}");
            assert_eq!(
                gin.row(r),
                gin.row(r + 3),
                "{backend:?} duplicated grad row {r}"
            );
        }
        for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Auto] {
            assert_eq!(
                run(threads),
                baseline,
                "{backend:?} × {threads:?} diverged from the sequential tape replay"
            );
        }
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_setters_still_reach_every_stage() {
    // The pre-PR 6 per-knob API must keep steering the execution policy
    // (deprecated thin wrappers, not removals).
    let data = toy_dataset(6, 16, 61);
    let evaluate = |via_policy: bool| {
        let mut rng = StdRng::seed_from_u64(60);
        let mut model = models::sq_vae(16, 2, 1, &mut rng);
        if via_policy {
            model.set_exec_policy(ExecPolicy::new(Threads::Fixed(2), BackendKind::Fused));
        } else {
            model.set_threads(Threads::Fixed(2));
            model.set_backend(BackendKind::Fused);
        }
        Trainer::evaluate_batched(&mut model, &data, 3).unwrap()
    };
    assert_eq!(evaluate(true), evaluate(false));
}
