//! Backend × thread-count invariance of the training pipeline.
//!
//! For a **fixed** simulator backend, training must be bit-identical across
//! every `SQVAE_THREADS` setting (extending `tests/parallel_determinism.rs`
//! to the fused backend and the parallel patch bank). **Across** backends,
//! fused kernels reorder floating-point arithmetic, so runs agree to high
//! precision rather than bit-for-bit; short trainings stay within tight
//! tolerances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqvae_core::{models, Autoencoder, BackendKind, ParamGroup, Threads, TrainConfig, Trainer};
use sqvae_datasets::Dataset;

fn toy_dataset(n: usize, width: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_samples(
        (0..n)
            .map(|_| (0..width).map(|_| rng.gen_range(0.0..2.0)).collect())
            .collect(),
    )
    .expect("non-empty")
}

/// Trains a small model and returns (per-epoch train MSEs, final parameter
/// values of both groups).
fn train_with(
    make: fn(&mut StdRng) -> Autoencoder,
    backend: BackendKind,
    threads: Threads,
) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = make(&mut rng);
    let data = toy_dataset(10, 16, 12);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 4,
        threads,
        backend,
        ..TrainConfig::default()
    });
    let history = trainer.train(&mut model, &data, None).unwrap();
    let params: Vec<f64> = [ParamGroup::Quantum, ParamGroup::Classical]
        .into_iter()
        .flat_map(|g| {
            model
                .parameters_of(g)
                .iter()
                .flat_map(|p| p.value.as_slice().to_vec())
                .collect::<Vec<_>>()
        })
        .collect();
    (history.train_mse_series(), params)
}

fn assert_backend_thread_matrix(make: fn(&mut StdRng) -> Autoencoder) {
    for backend in [BackendKind::Dense, BackendKind::Fused] {
        let baseline = train_with(make, backend, Threads::Off);
        assert_eq!(baseline.0.len(), 2);
        assert!(baseline.1.iter().all(|v| v.is_finite()));
        // Fixed backend: every thread policy reproduces the sequential run
        // bit for bit.
        for threads in [Threads::Fixed(1), Threads::Fixed(4), Threads::Auto] {
            let run = train_with(make, backend, threads);
            assert_eq!(
                run, baseline,
                "{backend:?} × {threads:?} diverged from its sequential run"
            );
        }
    }
    // Across backends: same physics, reordered arithmetic. Two short epochs
    // keep the drift many orders below anything training-relevant.
    let dense = train_with(make, BackendKind::Dense, Threads::Off);
    let fused = train_with(make, BackendKind::Fused, Threads::Off);
    for (a, b) in dense.0.iter().zip(&fused.0) {
        assert!((a - b).abs() < 1e-9, "epoch MSE {a} vs {b}");
    }
    for (a, b) in dense.1.iter().zip(&fused.1) {
        assert!((a - b).abs() < 1e-9, "final param {a} vs {b}");
    }
}

#[test]
fn hybrid_model_is_invariant_across_the_backend_thread_matrix() {
    assert_backend_thread_matrix(|rng| models::h_bq_ae(16, 1, rng));
}

#[test]
fn patched_model_is_invariant_across_the_backend_thread_matrix() {
    // Also exercises the parallel patch bank: patches × rows are sharded
    // through one flattened work list.
    assert_backend_thread_matrix(|rng| models::sq_ae(16, 2, 1, rng));
}

#[test]
fn evaluation_is_backend_consistent() {
    let data = toy_dataset(8, 16, 31);
    let evaluate = |backend: BackendKind| {
        let mut rng = StdRng::seed_from_u64(30);
        let mut model = models::sq_vae(16, 2, 1, &mut rng);
        model.set_backend(backend);
        model.set_threads(Threads::Fixed(3));
        Trainer::evaluate_batched(&mut model, &data, 4).unwrap()
    };
    let dense = evaluate(BackendKind::Dense);
    let fused = evaluate(BackendKind::Fused);
    assert!(dense.is_finite());
    assert!((dense - fused).abs() < 1e-10, "{dense} vs {fused}");
}
