//! Pool determinism matrix: the multi-worker server must return bytes
//! bit-identical to direct model calls — and therefore to itself — for
//! every pool size and every routing policy.
//!
//! This is the contract that makes `SQVAE_WORKERS` a pure deployment knob:
//! results depend only on each request's payload (sample requests carry
//! their own seeds), never on batch composition, worker placement, or
//! spillover decisions, so operators can resize the pool without
//! revalidating outputs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::{models, Autoencoder};
use sqvae::nn::{Matrix, Threads};
use sqvae::serve::{publish_model, shard_index, InferenceServer, Op, Request, ServerConfig};

fn temp_path(name: &str) -> String {
    let dir = std::env::temp_dir().join("sqvae-serve-pool-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn published_model(name: &str, seed: u64) -> (String, Autoencoder) {
    let mut model = models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(seed));
    let path = temp_path(name);
    publish_model(&mut model, seed, &path).unwrap();
    (path, model)
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// A mixed schedule over `models`: encode, reconstruct, decode, and seeded
/// sample requests, interleaved across models so a multi-worker pool
/// actually exercises several shards at once.
fn schedule(models: &mut [(String, Autoencoder)]) -> Vec<Request> {
    let mut reqs = Vec::new();
    for (i, (path, model)) in models.iter_mut().enumerate() {
        let x = Matrix::from_fn(2, 16, |r, c| ((i * 32 + r * 16 + c) as f64).sin());
        let z = Matrix::from_fn(3, model.latent_dim(), |r, c| {
            (i + r + c) as f64 * 0.17 - 0.3
        });
        reqs.push(Request::new(path.clone(), Op::Encode(x.clone())));
        reqs.push(Request::new(path.clone(), Op::Reconstruct(x)));
        reqs.push(Request::new(path.clone(), Op::Decode(z)));
        for j in 0..3u64 {
            reqs.push(Request::new(
                path.clone(),
                Op::Sample {
                    n: 1 + j as usize,
                    seed: i as u64 * 100 + j,
                },
            ));
        }
    }
    reqs
}

/// Direct (serverless) reference bytes for the same schedule.
fn reference(models: &mut [(String, Autoencoder)]) -> Vec<Vec<u64>> {
    let reqs = schedule(models);
    reqs.iter()
        .map(|req| {
            let model = &mut models
                .iter_mut()
                .find(|(p, _)| *p == req.model)
                .expect("request targets a published model")
                .1;
            let out = match &req.op {
                Op::Encode(x) => model.encode(x).unwrap(),
                Op::Decode(z) => model.decode(z).unwrap(),
                Op::Reconstruct(x) => model.reconstruct(x).unwrap(),
                Op::Sample { n, seed } => {
                    model.sample(*n, &mut StdRng::seed_from_u64(*seed)).unwrap()
                }
            };
            bits(&out)
        })
        .collect()
}

/// Runs the schedule through a pool of `workers` and returns result bytes
/// in schedule order. Submission happens while paused so every queue holds
/// its full shard before any worker steals — the adversarial case for
/// batch-composition effects.
fn serve_schedule(
    models: &mut [(String, Autoencoder)],
    workers: usize,
    spill_depth: usize,
) -> Vec<Vec<u64>> {
    let server = InferenceServer::start(ServerConfig {
        workers: Threads::Fixed(workers),
        spill_depth,
        ..ServerConfig::default()
    });
    assert_eq!(server.workers(), workers);
    assert_eq!(server.health().workers, workers);
    server.pause();
    let ids: Vec<u64> = schedule(models)
        .into_iter()
        .map(|r| server.submit(r).unwrap())
        .collect();
    server.resume();
    let out: Vec<Vec<u64>> = ids
        .into_iter()
        .map(|id| bits(&server.wait(id).unwrap()))
        .collect();
    let health = server.health();
    assert!(health.worker_alive);
    assert_eq!(health.respawns, 0);
    let stats = server.shutdown();
    assert_eq!(stats.requests, out.len());
    out
}

#[test]
fn results_are_bit_identical_across_pool_sizes_one_two_and_four() {
    let mut published: Vec<(String, Autoencoder)> = (0..3)
        .map(|i| published_model(&format!("matrix-{i}.ckpt"), 50 + i))
        .collect();
    let want = reference(&mut published);
    for workers in [1usize, 2, 4] {
        let got = serve_schedule(&mut published, workers, ServerConfig::default().spill_depth);
        assert_eq!(
            got, want,
            "a {workers}-worker pool diverged from direct model calls"
        );
    }
}

#[test]
fn aggressive_spillover_matches_hard_sharding_byte_for_byte() {
    let mut published: Vec<(String, Autoencoder)> = (0..3)
        .map(|i| published_model(&format!("spillover-{i}.ckpt"), 60 + i))
        .collect();
    let want = reference(&mut published);
    // spill_depth 1: any queued request diverts newcomers to the
    // least-loaded worker. spill_depth::MAX: requests never leave their
    // home shard. Placement differs as much as it ever can; bytes may not.
    assert_eq!(serve_schedule(&mut published, 4, 1), want);
    assert_eq!(serve_schedule(&mut published, 4, usize::MAX), want);
}

#[test]
fn the_shard_map_spreads_distinct_models_and_is_stable() {
    // Placement itself (not just results) must be deterministic: the
    // dispatcher hashes with a fixed FNV-1a, not RandomState.
    let op = Op::Sample { n: 1, seed: 0 };
    for i in 0..8 {
        let path = format!("stable-{i}.ckpt");
        assert_eq!(
            shard_index(&path, &op, 4),
            shard_index(&path, &op, 4),
            "shard map is not stable"
        );
    }
    let hit: std::collections::HashSet<usize> = (0..16)
        .map(|i| shard_index(&format!("spread-{i}.ckpt"), &op, 4))
        .collect();
    assert!(
        hit.len() >= 2,
        "16 distinct models all hashed to one of 4 shards"
    );
}
