//! End-to-end checkpoint + serving pipeline, used as a CI gate:
//!
//! 1. train a scalable SQ-VAE for one epoch,
//! 2. save it as a checkpoint and reload it (asserting bit-identical
//!    reconstructions across the round trip),
//! 3. stand up a multi-worker [`sqvae::serve::InferenceServer`] (2 workers
//!    by default; `--workers auto|off|<n>` overrides) over the checkpoint
//!    and push a batched mix of encode / decode / sample / reconstruct
//!    requests,
//! 4. diff every served result against the direct in-process call.
//!
//! Exits nonzero on the first mismatch, so CI fails loudly.
//!
//! ```sh
//! cargo run --release --example serve_pipeline -- --workers 2
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::checkpoint;
use sqvae::core::{models, TrainConfig, Trainer};
use sqvae::datasets::qm9::{generate, Qm9Config};
use sqvae::nn::{Matrix, Threads};
use sqvae::serve::{InferenceServer, Op, Request, ServerConfig};

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn check(label: &str, served: &Matrix, direct: &Matrix) -> Result<(), String> {
    if bits(served) == bits(direct) {
        println!(
            "  {label}: served == direct ({} rows, bit-identical)",
            served.rows()
        );
        Ok(())
    } else {
        Err(format!("{label}: served output diverged from direct call"))
    }
}

/// `--workers <auto|off|n>` from the command line; the pipeline defaults
/// to a 2-worker pool so CI always exercises multi-worker serving.
fn workers_arg() -> Threads {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--workers" {
            if let Some(w) = args.next().and_then(|s| s.parse().ok()) {
                return w;
            }
        }
    }
    Threads::Fixed(2)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 42;

    // 1. One epoch of real training so the checkpoint holds non-initial
    //    weights.
    let data = generate(&Qm9Config {
        n_samples: 64,
        seed: 7,
    });
    let (train, test) = data.shuffle_split(0.85, 0);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut model = models::sq_vae(64, 2, 1, &mut rng);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 16,
        ..TrainConfig::default()
    });
    let history = trainer.train(&mut model, &train, Some(&test))?;
    println!(
        "trained {} for 1 epoch: train MSE {:.4}",
        model.name,
        history.final_train_mse().unwrap()
    );

    // 2. Save → reload → bit-identical reconstruction.
    let dir = std::env::temp_dir().join("sqvae-serve-pipeline");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("sq_vae.ckpt").to_string_lossy().into_owned();
    checkpoint::save_model(&mut model, SEED, &path)?;
    let mut reloaded = checkpoint::load_model(&path)?;
    let probe = Matrix::from_fn(4, 64, |r, c| (r * 64 + c) as f64 / 256.0);
    check(
        "checkpoint round trip",
        &reloaded.reconstruct(&probe)?,
        &model.reconstruct(&probe)?,
    )?;

    // 3. Serve a batched request mix against the checkpoint through a
    //    worker pool. Pausing the pool while the burst is submitted makes
    //    the coalescing deterministic (otherwise a worker may steal the
    //    first request before the rest arrive, which is correct but
    //    batches less). The two Reconstruct requests share a coalescing
    //    key, so the dispatcher shards them onto the same worker and they
    //    merge into one forward pass whatever the pool size.
    let server = InferenceServer::start(ServerConfig {
        capacity: 32,
        max_batch_rows: 64,
        workers: workers_arg(),
        ..ServerConfig::default()
    });
    println!("serving with {} worker(s)", server.workers());
    server.pause();
    let x = Matrix::from_fn(3, 64, |r, c| ((r * 64 + c) as f64).sin().abs());
    let z = Matrix::from_fn(2, model.latent_dim(), |r, c| (r + c) as f64 * 0.2);
    let ids = [
        server.submit(Request::new(path.clone(), Op::Reconstruct(x.clone())))?,
        server.submit(Request::new(path.clone(), Op::Encode(x.clone())))?,
        server.submit(Request::new(path.clone(), Op::Decode(z.clone())))?,
        server.submit(Request::new(path.clone(), Op::Sample { n: 5, seed: 11 }))?,
        server.submit(Request::new(path.clone(), Op::Reconstruct(probe.clone())))?,
    ];
    server.resume();
    let served: Vec<Matrix> = ids
        .iter()
        .map(|&id| server.wait(id))
        .collect::<Result<_, _>>()?;

    // 4. Every served answer must match the direct in-process call bitwise.
    check("reconstruct", &served[0], &model.reconstruct(&x)?)?;
    check("encode", &served[1], &model.encode(&x)?)?;
    check("decode", &served[2], &model.decode(&z)?)?;
    check(
        "sample",
        &served[3],
        &model.sample(5, &mut StdRng::seed_from_u64(11))?,
    )?;
    check("reconstruct #2", &served[4], &model.reconstruct(&probe)?)?;

    let stats = server.shutdown();
    println!(
        "server processed {} requests in {} batches ({} rows, largest batch {} requests)",
        stats.requests, stats.batches, stats.rows, stats.largest_batch_requests
    );
    assert!(
        stats.batches < stats.requests,
        "expected at least one coalesced batch"
    );
    println!("serve pipeline OK");
    Ok(())
}
