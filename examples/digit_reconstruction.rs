//! Fully quantum autoencoding of images: train the paper's F-BQ-VAE on
//! L1-normalized 8x8 digits (the regime where the quantum model shines,
//! Fig. 4(b)) and render reconstructions as ASCII art.
//!
//! ```sh
//! cargo run --release --example digit_reconstruction
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::{models, TrainConfig, Trainer};
use sqvae::datasets::digits::{generate, DigitsConfig};
use sqvae::nn::Matrix;

fn ascii(pixels: &[f64], width: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max = pixels.iter().cloned().fold(1e-12f64, f64::max);
    let mut out = String::new();
    for (i, &p) in pixels.iter().enumerate() {
        let level = ((p / max).clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
        out.push(RAMP[level] as char);
        if (i + 1) % width == 0 {
            out.push('\n');
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let digits = generate(&DigitsConfig {
        n_samples: 300,
        seed: 5,
    })
    .l1_normalized();
    let (train, test) = digits.shuffle_split(0.85, 0);

    // Fully quantum: 108 circuit parameters, zero classical weights in the
    // autoencoding path (only the VAE's Gaussian heads are classical).
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = models::f_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
    let pc = model.parameter_count();
    println!(
        "training {} ({} quantum / {} classical params) on {} digits…",
        model.name,
        pc.quantum,
        pc.classical,
        train.len()
    );
    let history = Trainer::new(TrainConfig {
        epochs: 12,
        quantum_lr: 0.01,
        classical_lr: 0.01,
        ..TrainConfig::default()
    })
    .train(&mut model, &train, None)?;
    println!(
        "train MSE: {:.6} → {:.6}",
        history
            .records
            .first()
            .map(|r| r.train_mse)
            .unwrap_or(f64::NAN),
        history.final_train_mse().unwrap_or(f64::NAN)
    );

    for i in 0..3 {
        let x = Matrix::from_rows(&[test.sample(i)])?;
        let recon = model.reconstruct(&x)?;
        println!("test digit {i}: input / reconstruction");
        let left = ascii(test.sample(i), 8);
        let right = ascii(recon.row(0), 8);
        for (l, r) in left.lines().zip(right.lines()) {
            println!("  {l}   |   {r}");
        }
    }

    // And three brand-new digits from the latent prior.
    let mut srng = StdRng::seed_from_u64(9);
    let samples = model.sample(3, &mut srng)?;
    for i in 0..3 {
        println!("sampled digit {i}:");
        print!("{}", ascii(samples.row(i), 8));
    }
    Ok(())
}
