//! Quickstart: train a hybrid quantum autoencoder on synthetic QM9-like
//! molecules and watch the reconstruction loss fall.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::{models, ParamGroup, TrainConfig, Trainer};
use sqvae::datasets::qm9::{generate, Qm9Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dataset of 8x8 molecule matrices (64 features per molecule).
    let data = generate(&Qm9Config {
        n_samples: 256,
        seed: 7,
    });
    let (train, test) = data.shuffle_split(0.85, 0);
    println!(
        "dataset: {} train / {} test molecules",
        train.len(),
        test.len()
    );

    // 2. The paper's hybrid baseline: 6-qubit encoder/decoder circuits with
    //    classical layers mapping measurements back to original scales.
    let mut rng = StdRng::seed_from_u64(42);
    let mut model = models::h_bq_vae(64, models::BASELINE_LAYERS, &mut rng);
    let pc = model.parameter_count();
    println!(
        "model: {} ({} quantum + {} classical parameters)",
        model.name, pc.quantum, pc.classical
    );

    // 3. Train with the paper's heterogeneous learning rates (Fig. 7).
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 10,
        batch_size: 32,
        quantum_lr: 0.03,
        classical_lr: 0.01,
        ..TrainConfig::default()
    });
    let history = trainer.train(&mut model, &train, Some(&test))?;
    for r in &history.records {
        println!(
            "epoch {:>2}: train MSE {:.4}  test MSE {:.4}  KL {:.4}",
            r.epoch,
            r.train_mse,
            r.test_mse.unwrap_or(f64::NAN),
            r.train_kl
        );
    }

    // 4. The quantum parameters stayed in their natural range.
    let max_angle = model
        .parameters_of(ParamGroup::Quantum)
        .iter()
        .flat_map(|p| p.value.as_slice().iter().copied())
        .fold(0.0f64, |a, v| a.max(v.abs()));
    println!("largest |quantum angle| after training: {max_angle:.3}");
    Ok(())
}
