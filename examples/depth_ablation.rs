//! Ablation: how quantum circuit depth affects SQ-AE learning (a miniature
//! of the paper's Fig. 6 sweep), plus a patched-vs-unpatched comparison
//! showing why the patched architecture exists.
//!
//! ```sh
//! cargo run --release --example depth_ablation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::core::{models, patched_latent_dim, TrainConfig, Trainer};
use sqvae::datasets::pdbbind::{generate, PdbbindConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate(&PdbbindConfig {
        n_samples: 80,
        seed: 13,
    });
    let (train, test) = data.shuffle_split(0.85, 0);

    println!(
        "-- depth sweep (SQ-AE, p=8, LSD {}) --",
        patched_latent_dim(1024, 8)
    );
    for layers in [1usize, 3, 5, 7] {
        let mut rng = StdRng::seed_from_u64(21);
        let mut model = models::sq_ae(1024, 8, layers, &mut rng);
        let hist = Trainer::new(TrainConfig {
            epochs: 5,
            quantum_lr: 0.001,
            classical_lr: 0.001,
            ..TrainConfig::default()
        })
        .train(&mut model, &train, Some(&test))?;
        println!(
            "  L={layers}: train {:.4}  test {:.4}",
            hist.final_train_mse().unwrap_or(f64::NAN),
            hist.final_test_mse().unwrap_or(f64::NAN)
        );
    }

    println!("-- latent capacity: baseline (LSD 10) vs patched (LSD 56) --");
    let mut rng = StdRng::seed_from_u64(22);
    let mut baseline = models::h_bq_ae(1024, 3, &mut rng);
    let hist = Trainer::new(TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    })
    .train(&mut baseline, &train, Some(&test))?;
    println!(
        "  H-BQ-AE  (LSD 10): train {:.4}  test {:.4}",
        hist.final_train_mse().unwrap_or(f64::NAN),
        hist.final_test_mse().unwrap_or(f64::NAN)
    );
    let mut patched = models::sq_ae(1024, 8, 3, &mut rng);
    let hist = Trainer::new(TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    })
    .train(&mut patched, &train, Some(&test))?;
    println!(
        "  SQ-AE    (LSD 56): train {:.4}  test {:.4}",
        hist.final_train_mse().unwrap_or(f64::NAN),
        hist.final_test_mse().unwrap_or(f64::NAN)
    );
    println!("expected: the patched model's larger latent space reconstructs better");
    Ok(())
}
