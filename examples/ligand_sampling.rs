//! De novo ligand generation — the paper's motivating workload: train a
//! scalable quantum VAE (patched circuits) on PDBbind-like ligands, then
//! sample new molecules from the latent prior and score their drug
//! properties (QED / logP / SA, Table II's metrics).
//!
//! ```sh
//! cargo run --release --example ligand_sampling
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae::chem::smiles;
use sqvae::core::{models, sampling, TrainConfig, Trainer};
use sqvae::datasets::pdbbind::{generate, PdbbindConfig, PDBBIND_MATRIX_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate(&PdbbindConfig {
        n_samples: 160,
        seed: 11,
    });
    let (train, _) = data.shuffle_split(0.85, 0);

    // SQ-VAE with 8 patches: latent space dimension 8·log2(1024/8) = 56,
    // the configuration with the paper's best QED (Table II).
    let mut rng = StdRng::seed_from_u64(1);
    let mut model = models::sq_vae(1024, 8, 2, &mut rng);
    println!("training {} on {} ligands…", model.name, train.len());
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    });
    let history = trainer.train(&mut model, &train, None)?;
    println!(
        "train MSE: {:.4} → {:.4}",
        history
            .records
            .first()
            .map(|r| r.train_mse)
            .unwrap_or(f64::NAN),
        history.final_train_mse().unwrap_or(f64::NAN)
    );

    // Sample new ligands from Gaussian noise (Fig. 2(a)'s red path).
    let mut srng = StdRng::seed_from_u64(2);
    let out = sampling::sample_molecules(&mut model, 100, PDBBIND_MATRIX_SIZE, None, &mut srng)?;
    println!(
        "sampled {} molecules ({} decoded non-empty, validity before repair {:.0}%)",
        out.attempted,
        out.molecules.len(),
        out.validity * 100.0
    );
    println!(
        "mean properties: QED {:.3}  logP(norm) {:.3}  SA(norm) {:.3}",
        out.properties.qed, out.properties.logp, out.properties.sa
    );
    let training_molecules = sqvae::datasets::pdbbind::generate_molecules(&PdbbindConfig {
        n_samples: 160,
        seed: 11,
    });
    let quality = sampling::generation_metrics(&out, &training_molecules);
    println!(
        "generation quality: unique {:.2}  novel {:.2}  diverse {:.2}  lipinski {:.2}",
        quality.uniqueness, quality.novelty, quality.diversity, quality.lipinski
    );

    println!("first sampled ligands:");
    for m in out.molecules.iter().take(8) {
        println!(
            "  {:<40} {}",
            smiles::write(m).unwrap_or_else(|_| "-".into()),
            m.formula()
        );
    }
    Ok(())
}
