//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no network access, so the real criterion cannot be
//! fetched. This crate implements the `harness = false` API subset the
//! workspace's benches use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with compatible signatures, so swapping in
//! the real crate later is a one-line manifest change.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and prints the per-iteration mean and
//! best sample. No statistics, plots, or baseline comparisons.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, configured per group by [`criterion_group!`].
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Runs a single parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.sample_size, |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for the remaining benchmarks in this group.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.criterion.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (report-flush hook in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function_name.into()))
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples after a short warm-up.
    /// The closure's return value is passed through [`black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..2 {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<44} (no measurement: closure never called iter)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let best = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<44} mean {:>12} best {:>12} ({} samples)",
        format_duration(mean),
        format_duration(best),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a group runner, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the given groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0usize;
        c.bench_function("unit/noop", |b| {
            b.iter(|| calls += 1);
        });
        // 2 warm-up + 3 timed.
        assert_eq!(calls, 5);
    }

    #[test]
    fn group_ids_compose() {
        assert_eq!(BenchmarkId::new("adjoint", 3).0, "adjoint/3");
        assert_eq!(BenchmarkId::from_parameter(10).0, "10");
    }

    #[test]
    fn macros_expand() {
        fn target(c: &mut Criterion) {
            c.bench_function("unit/macro", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(g1, target);
        criterion_group! {
            name = g2;
            config = Criterion::default().sample_size(2);
            targets = target
        }
        g1();
        g2();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
