//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build container has no network access, so the real proptest cannot be
//! fetched. This crate implements the subset the workspace's property tests
//! use — the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! range and tuple strategies, [`collection::vec`], [`prop_oneof!`],
//! [`prop_assert!`]/[`prop_assert_eq!`], and
//! [`test_runner::ProptestConfig`] — with compatible signatures, so swapping
//! in the real crate later is a one-line manifest change.
//!
//! Differences from the real framework: cases are sampled from a
//! deterministic per-test RNG (seeded from the test's name), and failing
//! inputs are reported but **not shrunk**.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies (sampling only; no shrink trees).

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        ///
        /// [`prop_oneof!`]: crate::prop_oneof
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut StdRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased strategies ([`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! range_strategy_impls {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy_impls!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut StdRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy_impls {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy_impls! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length specification: an exact `usize` or a `usize` range.
    pub trait IntoSizeRange {
        /// Converts to half-open `(lo, hi)` bounds.
        fn into_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn into_bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn into_bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn into_bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy generating `Vec`s of values drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// Builds a [`VecStrategy`] with the given element strategy and length.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.into_bounds();
        assert!(lo < hi, "collection::vec: empty size range");
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..self.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and failure plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs (shrinking knobs are not modeled).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG for a named test (FNV-1a hash of the name).
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "property {} failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = rng_for("unit");
        let s = (0..10usize).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = rng_for("unit-vec");
        let s = crate::collection::vec(-1.0..1.0f64, 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
        let exact = crate::collection::vec(0..5u8, 4usize);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    #[test]
    fn oneof_samples_every_branch() {
        let mut rng = rng_for("unit-oneof");
        let s = prop_oneof![0..1i32, 10..11i32];
        let mut seen = [false; 2];
        for _ in 0..64 {
            match s.generate(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns bind, asserts pass, tuples compose.
        #[test]
        fn macro_round_trip(
            (a, b) in ((0..5u8), (5..10u8)),
            v in crate::collection::vec(0.0..1.0f64, 1..4),
        ) {
            prop_assert!(a < 5 && b >= 5);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(b, a);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    #[allow(unnameable_test_items)]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn inner(x in 0..10u32) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
