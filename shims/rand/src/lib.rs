//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container for this workspace has no network access, so the real
//! `rand 0.8` cannot be fetched from a registry. This crate implements the
//! exact API subset the workspace uses — [`rngs::StdRng`], [`SeedableRng`],
//! the [`Rng`] extension trait (`gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`) — with the same signatures as rand 0.8,
//! so swapping in the real crate later is a one-line manifest change.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64: deterministic for a given seed, which is all the workspace's
//! seeded experiments and tests require. Streams are *not* bit-identical to
//! upstream rand's `StdRng` (ChaCha12); nothing in the workspace depends on
//! upstream's exact streams.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A random number generator: the single source of entropy bits.
///
/// Mirrors `rand::RngCore`, reduced to the `u64`/`u32` methods the
/// workspace's samplers are built on.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed, expanding it into the
    /// full internal state via SplitMix64 (as recommended by the xoshiro
    /// authors).
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods for sampling from an [`RngCore`].
///
/// Blanket-implemented for every [`RngCore`], mirroring rand 0.8's
/// `Rng: RngCore` relationship.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniformly distributed `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end - self.start;
                let v = self.start + (unit_f64(rng) as $t) * span;
                // Floating-point rounding can land exactly on `end`; fold it
                // back to keep the half-open contract.
                if v < self.end { v } else { self.start }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let v = start + (unit_f64(rng) as $t) * (end - start);
                if v > end { end } else { v }
            }
        }
    )*};
}

float_range_impls!(f32, f64);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Seedable generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Stands in for `rand::rngs::StdRng`. Same seed ⇒ same stream, on every
    /// platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into 256 bits of state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step (Blackman & Vigna, public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-0.04..0.04);
            assert!((-0.04..0.04).contains(&v));
            let w: f64 = rng.gen_range(0.75..=1.0);
            assert!((0.75..=1.0).contains(&w));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1_000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            lo |= v < 0.25;
            hi |= v > 0.75;
        }
        assert!(lo && hi, "samples should cover the whole range");
    }

    #[test]
    fn int_ranges_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            let v: i32 = rng.gen_range(-1..=1);
            seen[(v + 1) as usize] = true;
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
        assert!(
            seen.iter().all(|&s| s),
            "inclusive range must hit all values"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} hits for p=0.3");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not shuffle to identity");
    }
}
