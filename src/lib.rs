//! # sqvae
//!
//! Facade crate for the DATE 2022 reproduction of *Scalable Variational
//! Quantum Circuits for Autoencoder-based Drug Discovery* (Li & Ghosh).
//! Re-exports every workspace crate under one roof:
//!
//! * [`quantum`] — statevector simulator with adjoint / parameter-shift
//!   gradients (`sqvae-quantum`).
//! * [`nn`] — classical layers, losses, Adam with parameter groups
//!   (`sqvae-nn`).
//! * [`chem`] — molecular graphs, the molecule-matrix codec, QED/logP/SA
//!   (`sqvae-chem`).
//! * [`datasets`] — synthetic QM9 / PDBbind / Digits / CIFAR-gray
//!   generators (`sqvae-datasets`).
//! * [`core`] — the autoencoder model zoo, trainer, and sampling pipeline
//!   (`sqvae-core`).
//! * [`serve`] — batched inference over saved checkpoints: request
//!   coalescing, warm-model registry, bounded-queue backpressure,
//!   per-request deadlines, worker supervision, and client retries.
//! * [`faults`] — deterministic fault injection (worker panics, queue
//!   saturation, checkpoint corruption, NaN losses) for chaos testing.
//!
//! ## Quickstart
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use sqvae::core::{models, TrainConfig, Trainer};
//! use sqvae::datasets::qm9::{generate, Qm9Config};
//!
//! # fn main() -> Result<(), sqvae::nn::NnError> {
//! let data = generate(&Qm9Config { n_samples: 32, seed: 7 });
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = models::h_bq_vae(64, 3, &mut rng); // hybrid baseline
//! let mut trainer = Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::default() });
//! let history = trainer.train(&mut model, &data, None)?;
//! println!("epoch-0 MSE: {:.4}", history.final_train_mse().unwrap());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod faults;
pub mod serve;

pub use sqvae_chem as chem;
pub use sqvae_core as core;
pub use sqvae_datasets as datasets;
pub use sqvae_nn as nn;
pub use sqvae_quantum as quantum;
