//! Long-running batched inference over checkpointed models.
//!
//! The training pipeline produces checkpoints ([`sqvae_core::checkpoint`]);
//! this module serves them. Two layers:
//!
//! * [`BatchEngine`] — a synchronous core: a warm-model registry keyed by
//!   checkpoint path, a request queue, and a coalescer that merges single
//!   `encode` / `decode` / `sample` / `reconstruct` requests targeting the
//!   same model into one batched forward pass. Every model call is
//!   row-independent (the quantum layers shard batch rows via `map_rows`
//!   with a bit-identical guarantee), so a coalesced batch returns exactly
//!   the bytes the same requests would produce one at a time.
//! * [`InferenceServer`] — a worker thread wrapping the engine: bounded
//!   submission queue (typed [`ServeError::QueueFull`] backpressure when
//!   it overflows), blocking [`InferenceServer::request`] round trips, a
//!   maintenance [`InferenceServer::pause`], and a graceful
//!   [`InferenceServer::shutdown`] that drains in-flight work before the
//!   thread exits.
//!
//! Sampling stays deterministic under coalescing because each `sample`
//! request carries its own seed: the engine draws that request's latent
//! rows from a fresh `StdRng::seed_from_u64(seed)` — the same stream a
//! direct [`sqvae_core::Autoencoder::sample`] call would consume — and only
//! the decoder pass is shared.
//!
//! ## Example
//!
//! ```no_run
//! use sqvae::serve::{InferenceServer, Op, Request, ServerConfig};
//!
//! # fn main() -> Result<(), sqvae::serve::ServeError> {
//! let server = InferenceServer::start(ServerConfig::default());
//! let sampled = server.request(Request {
//!     model: "model.ckpt".into(),
//!     op: Op::Sample { n: 4, seed: 7 },
//! })?;
//! println!("sampled {} molecules-worth of features", sampled.rows());
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqvae_core::checkpoint::{self, Checkpoint};
use sqvae_core::Autoencoder;
use sqvae_nn::{Matrix, NnError};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Errors surfaced by the inference service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submission queue is at capacity; retry after in-flight work
    /// drains. This is the backpressure signal — the server never buffers
    /// unboundedly.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The worker thread is gone (panicked) before answering this request.
    WorkerGone,
    /// A request carried no rows to process (`n == 0` or an empty matrix).
    EmptyRequest,
    /// The referenced checkpoint could not be loaded (message from
    /// [`sqvae_core::checkpoint::CheckpointError`]).
    Checkpoint(String),
    /// The model rejected the payload (shape mismatch etc.).
    Model(NnError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "submission queue is full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerGone => write!(f, "worker thread exited before answering"),
            ServeError::EmptyRequest => write!(f, "request carries no rows"),
            ServeError::Checkpoint(msg) => write!(f, "checkpoint load failed: {msg}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Model(e)
    }
}

/// One inference operation on a model.
#[derive(Debug, Clone)]
pub enum Op {
    /// Map data rows to latent codes (VAEs: the posterior mean).
    Encode(Matrix),
    /// Decode latent rows into data space.
    Decode(Matrix),
    /// Evaluation-mode round trip (encode → decode).
    Reconstruct(Matrix),
    /// Draw `n` fresh samples by decoding `z ~ N(0, I)` drawn from
    /// `StdRng::seed_from_u64(seed)` — bit-identical to a direct
    /// [`sqvae_core::Autoencoder::sample`] call with that RNG.
    Sample {
        /// Number of samples to draw.
        n: usize,
        /// Seed for this request's latent draws.
        seed: u64,
    },
}

impl Op {
    /// Number of output rows this op will produce (and the coalescer's
    /// row-budget cost).
    fn rows(&self) -> usize {
        match self {
            Op::Encode(m) | Op::Decode(m) | Op::Reconstruct(m) => m.rows(),
            Op::Sample { n, .. } => *n,
        }
    }

    /// Coalescing key: ops merge into one batch only when the kind and the
    /// payload width agree (widths always agree for same-kind ops on one
    /// model, but a mis-sized payload must not poison its batchmates).
    fn kind_and_width(&self) -> (u8, usize) {
        match self {
            Op::Encode(m) => (0, m.cols()),
            Op::Decode(m) => (1, m.cols()),
            Op::Reconstruct(m) => (2, m.cols()),
            Op::Sample { .. } => (3, 0),
        }
    }
}

/// A request: which checkpoint to serve, and what to do.
#[derive(Debug, Clone)]
pub struct Request {
    /// Path of the checkpoint file; the engine loads it on first use and
    /// keeps the model warm for subsequent requests.
    pub model: String,
    /// The operation to run.
    pub op: Op,
}

/// Handle for retrieving one request's result from a [`BatchEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Counters describing what an engine did, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests completed (successfully or with an error).
    pub requests: usize,
    /// Model forward passes executed. `requests > batches` means
    /// coalescing merged work.
    pub batches: usize,
    /// Total rows pushed through model forward passes.
    pub rows: usize,
    /// Largest number of requests merged into one batch.
    pub largest_batch_requests: usize,
}

struct Job {
    ticket: Ticket,
    model: String,
    op: Op,
}

/// The synchronous batching core: queue, coalescer, and warm-model
/// registry. Single-threaded by design — [`InferenceServer`] provides the
/// concurrency wrapper — which keeps the coalescing logic deterministic and
/// directly testable.
pub struct BatchEngine {
    models: HashMap<String, Autoencoder>,
    queue: VecDeque<Job>,
    results: HashMap<Ticket, Result<Matrix, ServeError>>,
    next_ticket: u64,
    max_batch_rows: usize,
    stats: EngineStats,
}

impl std::fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("warm_models", &self.models.len())
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl BatchEngine {
    /// An empty engine whose coalesced batches hold at most
    /// `max_batch_rows` rows (sized to the `map_rows` sharding sweet spot).
    ///
    /// # Panics
    ///
    /// Panics when `max_batch_rows == 0`.
    pub fn new(max_batch_rows: usize) -> Self {
        assert!(max_batch_rows > 0, "batch row budget must be positive");
        BatchEngine {
            models: HashMap::new(),
            queue: VecDeque::new(),
            results: HashMap::new(),
            next_ticket: 0,
            max_batch_rows,
            stats: EngineStats::default(),
        }
    }

    /// Queues a request; [`BatchEngine::drain`] (or repeated
    /// [`BatchEngine::process_next_batch`]) executes it.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyRequest`] when the request carries zero rows.
    pub fn submit(&mut self, req: Request) -> Result<Ticket, ServeError> {
        if req.op.rows() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.queue.push_back(Job {
            ticket,
            model: req.model,
            op: req.op,
        });
        Ok(ticket)
    }

    /// Number of queued, not-yet-processed requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Removes and returns the result for `ticket`, if its batch has run.
    pub fn take_result(&mut self, ticket: Ticket) -> Option<Result<Matrix, ServeError>> {
        self.results.remove(&ticket)
    }

    /// Processes every queued request.
    pub fn drain(&mut self) {
        while !self.queue.is_empty() {
            self.process_next_batch();
        }
    }

    /// Coalesces the front request with every queued request sharing its
    /// (model, op kind, width) key — up to the row budget — and runs them
    /// as one batched forward pass. Returns the number of requests
    /// completed (0 when the queue is empty).
    pub fn process_next_batch(&mut self) -> usize {
        let Some(first) = self.queue.pop_front() else {
            return 0;
        };
        let key = (first.model.clone(), first.op.kind_and_width());
        let mut batch = vec![first];
        let mut rows = batch[0].op.rows();
        // Pull every same-key job that still fits the row budget; different
        // keys stay queued in order for later batches.
        let mut kept = VecDeque::with_capacity(self.queue.len());
        while let Some(job) = self.queue.pop_front() {
            let fits = rows + job.op.rows() <= self.max_batch_rows;
            if fits && job.model == key.0 && job.op.kind_and_width() == key.1 {
                rows += job.op.rows();
                batch.push(job);
            } else {
                kept.push_back(job);
            }
        }
        self.queue = kept;

        let completed = batch.len();
        self.stats.requests += completed;
        self.stats.largest_batch_requests = self.stats.largest_batch_requests.max(completed);
        match self.run_batch(&batch) {
            Ok(outputs) => {
                self.stats.batches += 1;
                self.stats.rows += rows;
                for (job, out) in batch.iter().zip(outputs) {
                    self.results.insert(job.ticket, Ok(out));
                }
            }
            Err(e) => {
                for job in &batch {
                    self.results.insert(job.ticket, Err(e.clone()));
                }
            }
        }
        completed
    }

    /// Runs one coalesced batch: stacks every job's rows, executes a single
    /// model pass, and splits the output back per job.
    fn run_batch(&mut self, batch: &[Job]) -> Result<Vec<Matrix>, ServeError> {
        let path = &batch[0].model;
        if !self.models.contains_key(path) {
            let model =
                checkpoint::load_model(path).map_err(|e| ServeError::Checkpoint(e.to_string()))?;
            self.models.insert(path.clone(), model);
        }
        let model = self.models.get_mut(path).expect("just inserted");

        // Per-request latent draws for Sample jobs: each consumes exactly
        // the RNG stream its direct `sample` call would, so only the decode
        // is shared.
        let inputs: Vec<Matrix> = batch
            .iter()
            .map(|job| match &job.op {
                Op::Encode(m) | Op::Decode(m) | Op::Reconstruct(m) => m.clone(),
                Op::Sample { n, seed } => {
                    model.sample_latent(*n, &mut StdRng::seed_from_u64(*seed))
                }
            })
            .collect();
        let stacked = Matrix::vstack(&inputs)?;
        let output = match &batch[0].op {
            Op::Encode(_) => model.encode(&stacked)?,
            Op::Decode(_) | Op::Sample { .. } => model.decode(&stacked)?,
            Op::Reconstruct(_) => model.reconstruct(&stacked)?,
        };

        let mut outputs = Vec::with_capacity(batch.len());
        let mut start = 0usize;
        for job in batch {
            let n = job.op.rows();
            outputs.push(Matrix::from_fn(n, output.cols(), |r, c| {
                output.get(start + r, c)
            }));
            start += n;
        }
        Ok(outputs)
    }

    /// Number of models currently held warm.
    pub fn warm_models(&self) -> usize {
        self.models.len()
    }
}

/// Configuration for [`InferenceServer::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum queued (accepted, unprocessed) requests before
    /// [`ServeError::QueueFull`] backpressure kicks in.
    pub capacity: usize,
    /// Row budget per coalesced batch (see [`BatchEngine::new`]).
    pub max_batch_rows: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            capacity: 256,
            max_batch_rows: 64,
        }
    }
}

#[derive(Default)]
struct ServerState {
    queue: VecDeque<(u64, Request)>,
    results: HashMap<u64, Result<Matrix, ServeError>>,
    next_id: u64,
    paused: bool,
    shutting_down: bool,
    worker_done: bool,
    final_stats: Option<EngineStats>,
}

struct Shared {
    state: Mutex<ServerState>,
    /// Wakes the worker (new work, resume, shutdown).
    work_cv: Condvar,
    /// Wakes clients blocked on results.
    done_cv: Condvar,
}

/// A worker thread serving batched inference over a [`BatchEngine`].
///
/// Submissions are bounded by [`ServerConfig::capacity`]; the worker steals
/// the whole queue at once, coalesces it, runs it, and publishes results.
/// [`InferenceServer::shutdown`] drains everything already accepted before
/// the thread exits.
pub struct InferenceServer {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    capacity: usize,
}

impl std::fmt::Debug for InferenceServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceServer")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl InferenceServer {
    /// Spawns the worker thread and returns the handle clients submit to.
    pub fn start(config: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(ServerState::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let max_batch_rows = config.max_batch_rows;
        let worker = std::thread::spawn(move || {
            let mut engine = BatchEngine::new(max_batch_rows);
            let mut guard = worker_shared.state.lock().expect("server lock");
            loop {
                if (guard.queue.is_empty() || guard.paused) && !guard.shutting_down {
                    guard = worker_shared.work_cv.wait(guard).expect("server lock");
                    continue;
                }
                if guard.queue.is_empty() && guard.shutting_down {
                    break;
                }
                // Steal the accepted queue and run it without the lock, so
                // clients keep submitting (and hitting backpressure) while
                // the batch executes.
                let stolen: Vec<(u64, Request)> = guard.queue.drain(..).collect();
                drop(guard);
                let mut tickets = Vec::with_capacity(stolen.len());
                let mut rejected = Vec::new();
                for (id, req) in stolen {
                    match engine.submit(req) {
                        Ok(t) => tickets.push((id, t)),
                        Err(e) => rejected.push((id, e)),
                    }
                }
                engine.drain();
                guard = worker_shared.state.lock().expect("server lock");
                for (id, t) in tickets {
                    let result = engine
                        .take_result(t)
                        .expect("drained engine has every result");
                    guard.results.insert(id, result);
                }
                for (id, e) in rejected {
                    guard.results.insert(id, Err(e));
                }
                worker_shared.done_cv.notify_all();
            }
            guard.worker_done = true;
            guard.final_stats = Some(engine.stats());
            worker_shared.done_cv.notify_all();
        });
        InferenceServer {
            shared,
            worker: Some(worker),
            capacity: config.capacity,
        }
    }

    /// Queues a request, returning an id for [`InferenceServer::wait`].
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (backpressure — retry later), [`ServeError::ShuttingDown`] after
    /// [`InferenceServer::shutdown`] began, [`ServeError::EmptyRequest`]
    /// for zero-row payloads (rejected eagerly, not worth a queue slot).
    pub fn submit(&self, req: Request) -> Result<u64, ServeError> {
        if req.op.rows() == 0 {
            return Err(ServeError::EmptyRequest);
        }
        let mut state = self.shared.state.lock().expect("server lock");
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.queue.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = state.next_id;
        state.next_id += 1;
        state.queue.push_back((id, req));
        self.shared.work_cv.notify_one();
        Ok(id)
    }

    /// Blocks until the request behind `id` completes and returns its
    /// result.
    ///
    /// # Errors
    ///
    /// The request's own failure, or [`ServeError::WorkerGone`] when the
    /// worker died before answering.
    pub fn wait(&self, id: u64) -> Result<Matrix, ServeError> {
        let mut state = self.shared.state.lock().expect("server lock");
        loop {
            if let Some(result) = state.results.remove(&id) {
                return result;
            }
            if state.worker_done {
                return Err(ServeError::WorkerGone);
            }
            state = self.shared.done_cv.wait(state).expect("server lock");
        }
    }

    /// Submit + wait in one blocking call.
    ///
    /// # Errors
    ///
    /// See [`InferenceServer::submit`] and [`InferenceServer::wait`].
    pub fn request(&self, req: Request) -> Result<Matrix, ServeError> {
        let id = self.submit(req)?;
        self.wait(id)
    }

    /// Stops the worker from picking up new batches (already-running work
    /// finishes). Accepted requests keep queuing until the bounded queue
    /// fills, at which point submissions see [`ServeError::QueueFull`] —
    /// the maintenance lever for load-shedding upstream.
    pub fn pause(&self) {
        self.shared.state.lock().expect("server lock").paused = true;
    }

    /// Resumes batch processing after [`InferenceServer::pause`].
    pub fn resume(&self) {
        self.shared.state.lock().expect("server lock").paused = false;
        self.shared.work_cv.notify_one();
    }

    /// Graceful shutdown: stops accepting new work, drains every accepted
    /// request (pause is lifted), joins the worker, and returns its final
    /// counters.
    pub fn shutdown(mut self) -> EngineStats {
        self.begin_shutdown();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
        self.shared
            .state
            .lock()
            .expect("server lock")
            .final_stats
            .unwrap_or_default()
    }

    fn begin_shutdown(&self) {
        let mut state = self.shared.state.lock().expect("server lock");
        state.shutting_down = true;
        state.paused = false;
        self.shared.work_cv.notify_all();
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        if let Some(handle) = self.worker.take() {
            self.begin_shutdown();
            let _ = handle.join();
        }
    }
}

/// Saves `model` as a checkpoint at `path` so a server can load it.
/// Re-exported convenience over [`sqvae_core::checkpoint::save_model`].
///
/// # Errors
///
/// See [`sqvae_core::checkpoint::save_model`].
pub fn publish_model(model: &mut Autoencoder, seed: u64, path: &str) -> Result<(), ServeError> {
    checkpoint::save_model(model, seed, path).map_err(|e| ServeError::Checkpoint(e.to_string()))
}

/// Loads a checkpoint header without building the model — a cheap
/// existence/compatibility probe for request routing.
///
/// # Errors
///
/// See [`Checkpoint::load`].
pub fn probe_checkpoint(path: &str) -> Result<Checkpoint, ServeError> {
    Checkpoint::load(path).map_err(|e| ServeError::Checkpoint(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqvae_core::models;

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("sqvae-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn published_model(name: &str, seed: u64) -> (String, Autoencoder) {
        let mut model = models::sq_vae(16, 2, 1, &mut StdRng::seed_from_u64(seed));
        let path = temp_path(name);
        publish_model(&mut model, seed, &path).unwrap();
        (path, model)
    }

    fn rows_bits(m: &Matrix) -> Vec<u64> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn coalesced_batch_matches_direct_single_row_calls() {
        let (path, mut direct) = published_model("coalesce.ckpt", 1);
        let mut engine = BatchEngine::new(64);
        let xs: Vec<Matrix> = (0..5)
            .map(|i| Matrix::from_fn(1, 16, |_, c| (i * 16 + c) as f64 / 80.0))
            .collect();
        let tickets: Vec<Ticket> = xs
            .iter()
            .map(|x| {
                engine
                    .submit(Request {
                        model: path.clone(),
                        op: Op::Reconstruct(x.clone()),
                    })
                    .unwrap()
            })
            .collect();
        assert_eq!(engine.pending(), 5);
        // All five coalesce into ONE forward pass...
        assert_eq!(engine.process_next_batch(), 5);
        let stats = engine.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.rows, 5);
        assert_eq!(stats.largest_batch_requests, 5);
        // ...and each result is bit-identical to the direct call.
        for (x, t) in xs.iter().zip(tickets) {
            let served = engine.take_result(t).unwrap().unwrap();
            let want = direct.reconstruct(x).unwrap();
            assert_eq!(rows_bits(&served), rows_bits(&want));
        }
    }

    #[test]
    fn encode_decode_and_sample_round_trip_bit_identically() {
        let (path, mut direct) = published_model("ops.ckpt", 2);
        let mut engine = BatchEngine::new(64);
        let x = Matrix::from_fn(3, 16, |r, c| ((r * 16 + c) as f64).sin());
        let t_enc = engine
            .submit(Request {
                model: path.clone(),
                op: Op::Encode(x.clone()),
            })
            .unwrap();
        let z = Matrix::from_fn(2, direct.latent_dim(), |r, c| (r + c) as f64 * 0.1);
        let t_dec = engine
            .submit(Request {
                model: path.clone(),
                op: Op::Decode(z.clone()),
            })
            .unwrap();
        let t_s1 = engine
            .submit(Request {
                model: path.clone(),
                op: Op::Sample { n: 2, seed: 11 },
            })
            .unwrap();
        let t_s2 = engine
            .submit(Request {
                model: path,
                op: Op::Sample { n: 3, seed: 12 },
            })
            .unwrap();
        engine.drain();
        // Mixed kinds cannot share a batch; the two samples can.
        assert_eq!(engine.stats().batches, 3);

        let want_enc = direct.encode(&x).unwrap();
        assert_eq!(
            rows_bits(&engine.take_result(t_enc).unwrap().unwrap()),
            rows_bits(&want_enc)
        );
        let want_dec = direct.decode(&z).unwrap();
        assert_eq!(
            rows_bits(&engine.take_result(t_dec).unwrap().unwrap()),
            rows_bits(&want_dec)
        );
        // Coalesced samples equal direct per-seed sample() calls.
        let want_s1 = direct.sample(2, &mut StdRng::seed_from_u64(11)).unwrap();
        let want_s2 = direct.sample(3, &mut StdRng::seed_from_u64(12)).unwrap();
        assert_eq!(
            rows_bits(&engine.take_result(t_s1).unwrap().unwrap()),
            rows_bits(&want_s1)
        );
        assert_eq!(
            rows_bits(&engine.take_result(t_s2).unwrap().unwrap()),
            rows_bits(&want_s2)
        );
    }

    #[test]
    fn row_budget_splits_oversized_batches() {
        let (path, _) = published_model("budget.ckpt", 3);
        let mut engine = BatchEngine::new(4);
        for _ in 0..3 {
            engine
                .submit(Request {
                    model: path.clone(),
                    op: Op::Reconstruct(Matrix::filled(3, 16, 0.2)),
                })
                .unwrap();
        }
        engine.drain();
        // 3 rows each, budget 4: no two requests fit together.
        assert_eq!(engine.stats().batches, 3);
        assert_eq!(engine.stats().largest_batch_requests, 1);
    }

    #[test]
    fn models_stay_warm_across_batches() {
        let (path, _) = published_model("warm.ckpt", 4);
        let mut engine = BatchEngine::new(8);
        for _ in 0..3 {
            engine
                .submit(Request {
                    model: path.clone(),
                    op: Op::Sample { n: 1, seed: 0 },
                })
                .unwrap();
            engine.drain();
        }
        assert_eq!(engine.warm_models(), 1);
    }

    #[test]
    fn engine_surfaces_checkpoint_and_empty_errors() {
        let mut engine = BatchEngine::new(8);
        let t = engine
            .submit(Request {
                model: temp_path("does-not-exist.ckpt"),
                op: Op::Sample { n: 1, seed: 0 },
            })
            .unwrap();
        engine.drain();
        assert!(matches!(
            engine.take_result(t),
            Some(Err(ServeError::Checkpoint(_)))
        ));
        let err = engine
            .submit(Request {
                model: "x".into(),
                op: Op::Sample { n: 0, seed: 0 },
            })
            .unwrap_err();
        assert_eq!(err, ServeError::EmptyRequest);
    }

    #[test]
    fn bad_payload_fails_its_batch_without_poisoning_other_keys() {
        let (path, mut direct) = published_model("width.ckpt", 5);
        let mut engine = BatchEngine::new(64);
        // Wrong width: 16-feature model fed 8-wide rows.
        let bad = engine
            .submit(Request {
                model: path.clone(),
                op: Op::Reconstruct(Matrix::filled(1, 8, 0.1)),
            })
            .unwrap();
        let x = Matrix::filled(1, 16, 0.3);
        let good = engine
            .submit(Request {
                model: path,
                op: Op::Reconstruct(x.clone()),
            })
            .unwrap();
        engine.drain();
        // Different widths → different batch keys → independent fates.
        assert!(matches!(
            engine.take_result(bad),
            Some(Err(ServeError::Model(_)))
        ));
        let served = engine.take_result(good).unwrap().unwrap();
        assert_eq!(
            rows_bits(&served),
            rows_bits(&direct.reconstruct(&x).unwrap())
        );
    }

    #[test]
    fn server_round_trip_matches_direct_calls() {
        let (path, mut direct) = published_model("server.ckpt", 6);
        let server = InferenceServer::start(ServerConfig {
            capacity: 16,
            max_batch_rows: 32,
        });
        let x = Matrix::from_fn(2, 16, |r, c| (r * 16 + c) as f64 / 32.0);
        let served = server
            .request(Request {
                model: path.clone(),
                op: Op::Reconstruct(x.clone()),
            })
            .unwrap();
        assert_eq!(
            rows_bits(&served),
            rows_bits(&direct.reconstruct(&x).unwrap())
        );
        let sampled = server
            .request(Request {
                model: path,
                op: Op::Sample { n: 3, seed: 9 },
            })
            .unwrap();
        let want = direct.sample(3, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(rows_bits(&sampled), rows_bits(&want));
        let stats = server.shutdown();
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn bounded_queue_backpressure_and_graceful_drain() {
        let (path, _) = published_model("backpressure.ckpt", 7);
        let server = InferenceServer::start(ServerConfig {
            capacity: 3,
            max_batch_rows: 64,
        });
        // Paused worker: accepted requests pile up deterministically.
        server.pause();
        let req = |seed: u64| Request {
            model: path.clone(),
            op: Op::Sample { n: 1, seed },
        };
        let ids: Vec<u64> = (0..3).map(|s| server.submit(req(s)).unwrap()).collect();
        assert_eq!(
            server.submit(req(99)).unwrap_err(),
            ServeError::QueueFull { capacity: 3 }
        );
        // Graceful shutdown lifts the pause and drains all three accepted
        // requests before the worker exits.
        let results: Vec<_> = {
            let server = &server;
            std::thread::scope(|scope| {
                let handles: Vec<_> = ids
                    .iter()
                    .map(|&id| scope.spawn(move || server.wait(id)))
                    .collect();
                // Submissions racing shutdown see a typed refusal, never a hang.
                server.resume();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        for r in results {
            assert_eq!(r.unwrap().shape(), (1, 16));
        }
        let stats = server.shutdown();
        assert_eq!(stats.requests, 3);
    }

    #[test]
    fn shutdown_refuses_new_work_but_drains_accepted_work() {
        let (path, _) = published_model("drain.ckpt", 8);
        let server = InferenceServer::start(ServerConfig {
            capacity: 8,
            max_batch_rows: 64,
        });
        server.pause();
        let id = server
            .submit(Request {
                model: path.clone(),
                op: Op::Sample { n: 2, seed: 1 },
            })
            .unwrap();
        server.begin_shutdown();
        assert_eq!(
            server
                .submit(Request {
                    model: path,
                    op: Op::Sample { n: 1, seed: 2 },
                })
                .unwrap_err(),
            ServeError::ShuttingDown
        );
        // The accepted request still completes.
        assert_eq!(server.wait(id).unwrap().shape(), (2, 16));
        server.shutdown();
    }

    #[test]
    fn probe_reads_checkpoint_metadata() {
        let (path, direct) = published_model("probe.ckpt", 10);
        let ckpt = probe_checkpoint(&path).unwrap();
        assert_eq!(ckpt.name, direct.name);
        assert_eq!(ckpt.seed, 10);
        assert!(probe_checkpoint(&temp_path("missing.ckpt")).is_err());
    }
}
